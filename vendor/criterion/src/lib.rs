//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! keeps the workspace's benches compiling and runnable: it implements the
//! `Criterion` / group / `Bencher` call surface the benches use, timing each
//! closure over a fixed number of iterations and printing a mean per
//! iteration. There is no statistical analysis, warm-up modelling, or HTML
//! report — for real measurements, build against upstream criterion.

use std::time::{Duration, Instant};

/// Re-implementation of criterion's `black_box` (defers to `std::hint`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the total time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            measurement_time,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Caps the measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Declares the group's throughput basis (recorded, not analysed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.measurement_time, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.sample_size, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// A `function/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Throughput basis for a group.
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
    deadline: Instant,
}

impl Bencher {
    /// Times `f`, amortized over enough iterations to dominate clock noise.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: aim for samples of at least ~1ms each.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        self.iters_per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos())
            .max(1)
            .min(1_000_000) as u64;

        for _ in 0..self.sample_size {
            if Instant::now() > self.deadline && !self.samples.is_empty() {
                break;
            }
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
        sample_size,
        deadline: Instant::now() + measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let iters = b.iters_per_sample * b.samples.len() as u64;
    let mean_ns = total.as_nanos() as f64 / iters as f64;
    println!(
        "{name:<50} {:>12.1} ns/iter ({} samples)",
        mean_ns,
        b.samples.len()
    );
}

/// Declares a benchmark group: plain list form or `name/config/targets` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &vec![1u64, 2, 3, 4], |b, v| {
            b.iter(|| v.iter().sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs_to_completion() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        tiny_bench(&mut c);
    }
}
