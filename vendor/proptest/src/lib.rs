//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest this workspace's property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * range strategies (`0u64..500`, `1u8..=8`, `-1.0f32..1.0`, …),
//! * tuple strategies, [`collection::vec`], [`bool::ANY`], and [`any`],
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assume!`.
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports its
//! case number and seed so it can be replayed, which is enough for the CI
//! role these tests play here. Each test function derives its RNG stream
//! from a hash of the test name, so runs are deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Runner configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of randomized cases per test function.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` randomized cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values — the sampling core of proptest's trait.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: rand::SampleUniform + PartialOrd + Copy> Strategy for RangeInclusive<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (
            self.0.sample(rng),
            self.1.sample(rng),
            self.2.sample(rng),
            self.3.sample(rng),
        )
    }
}

/// Strategy yielding any value of `T`'s standard distribution ([`any`]).
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: rand::Standard> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// `any::<T>()` — the full standard distribution of `T`.
pub fn any<T: rand::Standard>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

pub mod bool {
    //! Boolean strategies.
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for a fair coin.
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    /// Either boolean with equal probability.
    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    //! Collection strategies.
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specifications accepted by [`vec`]: a fixed `usize` or a
    /// `Range<usize>`.
    pub trait IntoLen {
        /// Draws a concrete length.
        fn draw(&self, rng: &mut StdRng) -> usize;
    }

    impl IntoLen for usize {
        fn draw(&self, _rng: &mut StdRng) -> usize {
            *self
        }
    }

    impl IntoLen for Range<usize> {
        fn draw(&self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: IntoLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `vec(element, len)` — a vector of `len` draws from `element`.
    pub fn vec<S: Strategy, L: IntoLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Derives a per-test seed from the test's module path and name, so each
/// test function owns a deterministic stream independent of the others.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a — stable across runs and platforms.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Builds the RNG for one case of one test.
pub fn rng_for(name: &str, case: u32) -> StdRng {
    StdRng::seed_from_u64(seed_for(name) ^ ((case as u64) << 32 | 0x9E37))
}

pub mod prelude {
    //! Everything a property test file needs in scope.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Skips the current case when its precondition does not hold.
///
/// Expands to `continue` targeting the case loop generated by
/// [`proptest!`], so it must appear at the top level of the test body
/// (which is how this workspace uses it).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Declares property tests: each function runs `cases` times with inputs
/// drawn from the strategies on the left of each `in`.
#[macro_export]
macro_rules! proptest {
    // Internal expansion arm — must precede the catch-all below.
    (@with_config ($cfg:expr) $(
        $(#[doc = $doc:expr])*
        #[test]
        fn $name:ident ( $( $arg:pat_param in $strategy:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[doc = $doc])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let case_name = concat!(module_path!(), "::", stringify!($name));
                for case in 0..config.cases {
                    let mut __proptest_rng = $crate::rng_for(case_name, case);
                    $(
                        let $arg = $crate::Strategy::sample(&$strategy, &mut __proptest_rng);
                    )*
                    $body
                }
            }
        )*
    };
    // Entry arm: explicit config via the inner-attribute syntax of the
    // real proptest crate.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    // Entry arm: default config.
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5f32..2.0, b in crate::bool::ANY) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
            prop_assert!(b || !b);
        }

        #[test]
        fn tuples_and_vecs((n, s) in (1usize..5, 0u64..9), v in crate::collection::vec(0u32..7, 2..6)) {
            prop_assert!(n < 5 && s < 9);
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 7));
        }

        #[test]
        fn assume_skips_cases(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn dependent_strategies(v in crate::collection::vec(0u32..100, 9..20), i in 0usize..9) {
            prop_assert!(i < v.len());
        }
    }
}
