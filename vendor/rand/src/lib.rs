//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (small) subset of `rand`'s API that the workspace actually
//! uses: the [`Rng`] / [`SeedableRng`] traits, `gen` / `gen_range` /
//! `gen_bool`, and a deterministic [`rngs::StdRng`]. The generator is
//! xoshiro256** seeded through SplitMix64 — statistically strong enough for
//! the randomized rotations, k-means++ seeding, and property tests in this
//! workspace, and fully reproducible from a `u64` seed.
//!
//! It is **not** a cryptographic RNG and makes no attempt to match upstream
//! `rand`'s stream bit-for-bit; everything in this workspace only relies on
//! determinism per seed, not on specific values.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its "standard" distribution
    /// (uniform over all values for integers, `[0, 1)` for floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seed-constructible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a "standard" uniform distribution.
pub trait Standard: Sized {
    /// Samples one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Range types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable over an interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive` widens to `[lo, hi]`).
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Span as u128 so `u64::MAX` inclusive ranges cannot overflow.
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) as u128 + if inclusive { 1 } else { 0 };
                if span == 0 {
                    // Inclusive full-width range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                // Modulo draw: bias is ≤ span/2⁶⁴, irrelevant for the
                // statistical uses in this workspace.
                let draw = rng.next_u64() as u128 % span;
                (lo_w + draw as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let unit = f64::sample_standard(rng);
                let v = (lo as f64 + (hi as f64 - lo as f64) * unit) as $t;
                // f32 rounding can land exactly on `hi`; fold that one
                // pattern back to `lo` to preserve the `[lo, hi)` contract.
                if !inclusive && v >= hi {
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expands the seed into the four state words,
            // guaranteeing a non-zero state for any input.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut w = z;
                w = (w ^ (w >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                w = (w ^ (w >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                w ^ (w >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[1].wrapping_mul(5), 7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let f: f32 = rng.gen_range(-2.5f32..4.0);
            assert!((-2.5..4.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn float_unit_samples_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            if v < 0.1 {
                lo = true;
            }
            if v > 0.9 {
                hi = true;
            }
        }
        assert!(lo && hi, "samples should spread over [0, 1)");
    }

    #[test]
    fn works_through_unsized_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0u64..100)
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 100);
    }

    #[test]
    fn rng_next_u64_via_rng_core_for_mut_ref() {
        let mut rng = StdRng::seed_from_u64(4);
        let r = &mut rng;
        let a = super::RngCore::next_u64(&mut &mut *r);
        let b = r.next_u64();
        assert_ne!(a, b);
    }
}
