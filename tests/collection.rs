//! End-to-end collection engine tests through the facade: the full
//! open → write → crash → replay → compact → search lifecycle, and the
//! contract equivalence between [`Collection::search`] and
//! [`IvfRabitq::search`].

use rabitq::data::{exact_knn, generate, DatasetSpec, Profile};
use rabitq::ivf::{IvfConfig, IvfRabitq};
use rabitq::metrics::recall_at_k;
use rabitq::store::{Collection, CollectionConfig, ParallelOptions, WAL_FILE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rabitq-coll-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn dataset(n: usize, dim: usize, seed: u64) -> rabitq::data::Dataset {
    generate(&DatasetSpec {
        name: "collection-test".into(),
        dim,
        n,
        n_queries: 10,
        profile: Profile::Clustered {
            clusters: 10,
            cluster_std: 0.8,
            center_scale: 3.0,
        },
        seed,
    })
}

/// Acceptance: vectors written to the WAL but never sealed survive a
/// simulated crash — including a truncated final record — and post-replay
/// search returns them.
#[test]
fn crash_recovery_returns_unsealed_vectors() {
    let dir = tmp_dir("crash");
    let ds = dataset(700, 24, 21);
    let mut config = CollectionConfig::new(ds.dim);
    config.memtable_capacity = 256; // 700 rows ⇒ 2 seals + 188 unsealed
    {
        let mut c = Collection::open(&dir, config.clone()).unwrap();
        for i in 0..ds.data.len() / ds.dim {
            c.insert(ds.vector(i)).unwrap();
        }
        assert_eq!(c.n_segments(), 2);
        assert_eq!(c.memtable_len(), 188);
        // Crash: no shutdown, memtable only in the WAL.
    }
    // The final record is torn mid-write.
    let wal = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

    let c = Collection::open(&dir, config).unwrap();
    assert_eq!(c.len(), 699, "all but the torn record replayed");
    let mut rng = StdRng::seed_from_u64(1);
    // Unsealed rows (sealed at id 512) are searchable again.
    for id in [512u32, 600, 698] {
        let res = c.search(ds.vector(id as usize), 1, 32, &mut rng);
        assert_eq!(res.neighbors[0].0, id);
        assert!(res.neighbors[0].1 < 1e-6);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: multi-segment search is contract-identical to
/// `IvfRabitq::search` — same `SearchResult` shape, exact squared
/// distances, ascending order — and, probing everything, it agrees with
/// the brute-force answer exactly as a single index does.
#[test]
fn multi_segment_search_matches_single_index_contract() {
    let dir = tmp_dir("contract");
    let ds = dataset(1200, 32, 22);
    let n = ds.data.len() / ds.dim;
    let mut config = CollectionConfig::new(ds.dim);
    config.memtable_capacity = 300;
    config.auto_compact = false;
    let mut c = Collection::open(&dir, config).unwrap();
    for i in 0..n {
        c.insert(ds.vector(i)).unwrap();
    }
    assert_eq!(c.n_segments(), 4);

    let single = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(IvfConfig::clusters_for(n)),
        rabitq::core::RabitqConfig::default(),
    );
    let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);

    let mut rng_a = StdRng::seed_from_u64(3);
    let mut rng_b = StdRng::seed_from_u64(3);
    let (mut recall_multi, mut recall_single) = (0.0f64, 0.0f64);
    for qi in 0..ds.n_queries() {
        let a = c.search(ds.query(qi), 10, 1024, &mut rng_a);
        let b = single.search(ds.query(qi), 10, 1024, &mut rng_b);
        // Same shape and invariants...
        assert_eq!(a.neighbors.len(), b.neighbors.len());
        assert!(a.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(a.n_estimated > 0 && a.n_reranked > 0);
        // ...exact distances...
        for &(id, d) in &a.neighbors {
            let exact = rabitq::math::vecs::l2_sq(ds.vector(id as usize), ds.query(qi));
            assert!((d - exact).abs() < 1e-4, "id {id}: {d} vs {exact}");
        }
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        let got_a: Vec<u32> = a.neighbors.iter().map(|&(id, _)| id).collect();
        let got_b: Vec<u32> = b.neighbors.iter().map(|&(id, _)| id).collect();
        recall_multi += recall_at_k(&want, &got_a);
        recall_single += recall_at_k(&want, &got_b);
    }
    // At full probe both searches recover essentially the whole exact
    // ground truth; per-query results can differ by the (≪1%) randomized
    // bound failures, so compare averages, not individual answers.
    let nq = ds.n_queries() as f64;
    let (recall_multi, recall_single) = (recall_multi / nq, recall_single / nq);
    assert!(recall_multi > 0.99, "multi-segment recall {recall_multi}");
    assert!(
        (recall_multi - recall_single).abs() < 0.02,
        "multi {recall_multi} vs single {recall_single}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The README's concurrent-read example, end to end through the facade:
/// a detached reader searches from another thread while the writer keeps
/// mutating, and `search_many` is deterministic across thread counts.
#[test]
fn reader_handles_and_search_many_work_through_the_facade() {
    let dir = tmp_dir("facade-concurrent");
    let ds = dataset(400, 16, 44);
    let mut config = CollectionConfig::new(ds.dim);
    config.memtable_capacity = 100;
    let mut c = Collection::open(&dir, config).unwrap();
    for i in 0..400 {
        c.insert(ds.vector(i)).unwrap();
    }

    let reader = c.reader();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let hit = reader.search(ds.vector(0), 3, 64, &mut rng);
            assert_eq!(hit.neighbors[0].0, 0);
            assert!(hit.neighbors[0].1 < 1e-6);
        });
        c.insert(ds.vector(0)).unwrap(); // writer stays live
    });

    let queries = ds.queries.clone();
    let serial = c.search_many(&queries, 5, 64, ParallelOptions::threaded(1));
    let threaded = c.search_many(&queries, 5, 64, ParallelOptions::threaded(4));
    assert_eq!(serial.len(), ds.n_queries());
    for (a, b) in serial.iter().zip(threaded.iter()) {
        assert_eq!(a.neighbors, b.neighbors);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: after deleting >50% of a segment's vectors and compacting,
/// tombstoned ids never appear, and recall@10 over the survivors matches a
/// fresh-built index within noise.
#[test]
fn compaction_preserves_survivor_recall() {
    let dir = tmp_dir("compact-recall");
    let ds = dataset(2000, 32, 23);
    let n = ds.data.len() / ds.dim;
    let mut config = CollectionConfig::new(ds.dim);
    config.memtable_capacity = 500;
    config.auto_compact = false;
    let mut c = Collection::open(&dir, config).unwrap();
    for i in 0..n {
        c.insert(ds.vector(i)).unwrap();
    }
    assert_eq!(c.n_segments(), 4);

    // Delete 60% of the first segment (ids 0..500 sealed together).
    let dead: Vec<u32> = (0..300u32).collect();
    for &id in &dead {
        assert!(c.delete(id).unwrap());
    }
    assert!(c.compact().unwrap());
    assert_eq!(c.n_segments(), 1);
    assert_eq!(c.len(), n - dead.len());

    // Fresh index over the survivors only, with survivor ground truth.
    let survivors: Vec<f32> = (300..n)
        .flat_map(|i| ds.vector(i).iter().copied())
        .collect();
    let fresh = IvfRabitq::build(
        &survivors,
        ds.dim,
        &IvfConfig::new(IvfConfig::clusters_for(n - dead.len())),
        rabitq::core::RabitqConfig::default(),
    );
    let gt = exact_knn(&survivors, ds.dim, &ds.queries, 10, 1);

    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_b = StdRng::seed_from_u64(5);
    let (mut recall_c, mut recall_f) = (0.0f64, 0.0f64);
    for qi in 0..ds.n_queries() {
        // Ground truth over `survivors` is 0-based; collection ids are
        // offset by the 300 deleted rows.
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id + 300).collect();
        let a = c.search(ds.query(qi), 10, 64, &mut rng_a);
        let got: Vec<u32> = a.neighbors.iter().map(|&(id, _)| id).collect();
        assert!(
            got.iter().all(|&id| id >= 300),
            "tombstoned id resurfaced: {got:?}"
        );
        recall_c += recall_at_k(&want, &got);

        let want_f: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        let b = fresh.search(ds.query(qi), 10, 64, &mut rng_b);
        let got_f: Vec<u32> = b.neighbors.iter().map(|&(id, _)| id).collect();
        recall_f += recall_at_k(&want_f, &got_f);
    }
    let nq = ds.n_queries() as f64;
    let (recall_c, recall_f) = (recall_c / nq, recall_f / nq);
    assert!(recall_c > 0.95, "compacted recall {recall_c}");
    assert!(
        (recall_c - recall_f).abs() < 0.05,
        "compacted {recall_c} vs fresh {recall_f}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The whole lifecycle in one breath, exercising reopen between phases.
#[test]
fn full_lifecycle_open_write_crash_replay_compact_search() {
    let dir = tmp_dir("lifecycle");
    let ds = dataset(900, 16, 24);
    let n = ds.data.len() / ds.dim;
    let mut config = CollectionConfig::new(ds.dim);
    config.memtable_capacity = 200;

    // Phase 1: write, then "crash".
    {
        let mut c = Collection::open(&dir, config.clone()).unwrap();
        for i in 0..n {
            c.insert(ds.vector(i)).unwrap();
        }
    }
    // Phase 2: replay, delete, compact.
    {
        let mut c = Collection::open(&dir, config.clone()).unwrap();
        assert_eq!(c.len(), n);
        for id in 0..150u32 {
            assert!(c.delete(id).unwrap());
        }
        c.seal().unwrap();
        assert!(c.compact().unwrap());
    }
    // Phase 3: reopen and search.
    let c = Collection::open(&dir, config).unwrap();
    assert_eq!(c.len(), n - 150);
    assert_eq!(c.n_segments(), 1);
    let mut rng = StdRng::seed_from_u64(6);
    let res = c.search(ds.vector(400), 5, 64, &mut rng);
    assert_eq!(res.neighbors[0].0, 400);
    assert!(res.neighbors.iter().all(|&(id, _)| id >= 150));
    std::fs::remove_dir_all(&dir).ok();
}
