//! Cross-crate integration tests for the extension features: graph-based
//! search over RaBitQ codes (Section 7 future work) and MIPS/cosine
//! estimation (footnote 8), exercised through the `rabitq` facade the way
//! a downstream user would.

use rabitq::core::{similarity, RabitqConfig};
use rabitq::data::{exact_knn, generate, DatasetSpec, Profile};
use rabitq::graph::{GraphRabitq, GraphRabitqConfig};
use rabitq::ivf::{FlatMips, FlatRabitq};
use rabitq::math::vecs;
use rabitq::metrics::recall_at_k;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sift_like(n: usize, n_queries: usize, dim: usize, seed: u64) -> rabitq::data::Dataset {
    generate(&DatasetSpec {
        name: "ext-test".into(),
        dim,
        n,
        n_queries,
        profile: Profile::Clustered {
            clusters: 20,
            cluster_std: 1.0,
            center_scale: 4.0,
        },
        seed,
    })
}

/// Graph traversal over 1-bit codes plus bound-gated re-ranking matches
/// the recall of exact-distance traversal of the same graph (within a few
/// points), and touches far fewer raw vectors than it visits.
#[test]
fn graph_rabitq_tracks_exact_traversal() {
    let (n, dim, k, nq) = (4_000, 64, 10, 15);
    let ds = sift_like(n, nq, dim, 11);
    let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);
    // Per-cluster normalization (Section 3.1.1): clustered data with a
    // single global centroid would leave residual norms — and therefore
    // confidence intervals — too wide for the bound to prune much.
    let index = GraphRabitq::build(
        &ds.data,
        dim,
        GraphRabitqConfig {
            centroids: 32,
            ..GraphRabitqConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(12);

    let (mut r_exact, mut r_quant) = (0.0, 0.0);
    let (mut est, mut rer) = (0usize, 0usize);
    let ef = 96;
    for qi in 0..nq {
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        let exact: Vec<u32> = index
            .search_exact(ds.query(qi), k, ef)
            .iter()
            .map(|&(id, _)| id)
            .collect();
        r_exact += recall_at_k(&want, &exact);
        let res = index.search(ds.query(qi), k, ef, &mut rng);
        est += res.n_estimated;
        rer += res.n_reranked;
        let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        r_quant += recall_at_k(&want, &got);
    }
    let (r_exact, r_quant) = (r_exact / nq as f64, r_quant / nq as f64);
    assert!(r_exact >= 0.9, "exact traversal recall {r_exact}");
    assert!(
        r_quant >= r_exact - 0.08,
        "quantized {r_quant} vs exact {r_exact}"
    );
    assert!(
        rer < est / 2,
        "bound should gate most raw-vector touches: reranked {rer} of {est} estimated"
    );
}

/// The graph index and the flat index agree on easy queries (both find
/// the true nearest neighbor of a stored vector: itself).
#[test]
fn graph_and_flat_agree_on_self_queries() {
    let (n, dim) = (2_000, 48);
    let ds = sift_like(n, 1, dim, 13);
    let graph = GraphRabitq::build(&ds.data, dim, GraphRabitqConfig::default());
    let flat = FlatRabitq::build(&ds.data, dim, RabitqConfig::default());
    let mut rng = StdRng::seed_from_u64(14);
    for probe in [3usize, 500, 1999] {
        let query = ds.vector(probe);
        let g = graph.search(query, 1, 64, &mut rng);
        let f = flat.search(query, 1, &mut rng);
        assert_eq!(g.neighbors[0].0 as usize, probe);
        assert_eq!(f.neighbors[0].0 as usize, probe);
    }
}

/// MIPS results through the facade: FlatMips recall against brute force,
/// on clustered (non-centered) data where the centroid terms matter.
#[test]
fn flat_mips_recall_on_clustered_data() {
    let (n, dim, k, nq) = (3_000, 64, 10, 10);
    let ds = sift_like(n, nq, dim, 15);
    let index = FlatMips::build(&ds.data, dim, RabitqConfig::default());
    let mut rng = StdRng::seed_from_u64(16);
    let mut recall = 0.0;
    for qi in 0..nq {
        let query = ds.query(qi);
        let mut truth: Vec<(u32, f32)> = (0..n)
            .map(|i| (i as u32, vecs::dot(ds.vector(i), query)))
            .collect();
        truth.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
        let want: Vec<u32> = truth[..k].iter().map(|&(id, _)| id).collect();
        let got: Vec<u32> = index
            .search_ip(query, k, &mut rng)
            .neighbors
            .iter()
            .map(|&(id, _)| id)
            .collect();
        recall += recall_at_k(&want, &got);
    }
    recall /= nq as f64;
    assert!(recall >= 0.9, "MIPS recall@{k} = {recall}");
}

/// The similarity lift is consistent with the distance estimate it came
/// from: `‖o−q‖² = ‖o‖² + ‖q‖² − 2⟨o,q⟩` must hold between the two
/// estimates of the same (query, code) pair, exactly (same randomness).
#[test]
fn distance_and_ip_estimates_satisfy_the_polarization_identity() {
    let (n, dim) = (200, 96);
    let ds = sift_like(n, 1, dim, 17);
    let quantizer = rabitq::core::Rabitq::new(dim, RabitqConfig::default());
    let mut centroid = vec![0.0f32; dim];
    for i in 0..n {
        vecs::add_assign(&mut centroid, ds.vector(i));
    }
    vecs::scale(&mut centroid, 1.0 / n as f32);
    let codes = quantizer.encode_set((0..n).map(|i| ds.vector(i)), &centroid);
    let mut rng = StdRng::seed_from_u64(18);
    let query = ds.query(0);
    let prepared = quantizer.prepare_query(query, &centroid, &mut rng);
    let terms = similarity::IpQueryTerms::new(query, &centroid);
    let norm_q_sq = vecs::dot(query, query);
    for i in 0..n {
        let de = quantizer.estimate(&prepared, &codes, i);
        let f = codes.factors(i);
        let ip_oc = vecs::dot(ds.vector(i), &centroid);
        let ip = similarity::inner_product(&de, f.norm, prepared.q_dist, ip_oc, terms);
        let norm_o_sq = vecs::dot(ds.vector(i), ds.vector(i));
        let dist_from_ip = norm_o_sq + norm_q_sq - 2.0 * ip.ip;
        let rel = (dist_from_ip - de.dist_sq).abs() / de.dist_sq.max(1e-3);
        assert!(
            rel < 1e-3,
            "vector {i}: distance estimate {} vs polarization {dist_from_ip}",
            de.dist_sq
        );
    }
}

/// Graph index persistence through the facade: save, load, equal answers.
#[test]
fn graph_persistence_through_facade() {
    let (n, dim) = (800, 32);
    let ds = sift_like(n, 1, dim, 19);
    let index = GraphRabitq::build(&ds.data, dim, GraphRabitqConfig::default());
    let mut buf = Vec::new();
    index.write(&mut buf).unwrap();
    let loaded = GraphRabitq::read(&mut buf.as_slice()).unwrap();
    let mut r1 = StdRng::seed_from_u64(20);
    let mut r2 = StdRng::seed_from_u64(20);
    assert_eq!(
        index.search(ds.query(0), 10, 64, &mut r1).neighbors,
        loaded.search(ds.query(0), 10, 64, &mut r2).neighbors
    );
}
