//! Cross-crate integration tests: the full pipeline from synthetic data
//! through quantization, indexing and search, checking the paper's
//! headline claims end to end.

use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::data::exact_knn;
use rabitq::data::registry::PaperDataset;
use rabitq::ivf::{IvfConfig, IvfPq, IvfRabitq, ScanMode};
use rabitq::math::vecs;
use rabitq::metrics::{recall_at_k, RelativeErrorStats};
use rabitq::pq::PqConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn avg_recall_rabitq(
    index: &IvfRabitq,
    ds: &rabitq::data::Dataset,
    gt: &[rabitq::data::Neighbors],
    k: usize,
    nprobe: usize,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(1);
    let mut total = 0.0;
    for qi in 0..ds.n_queries() {
        let res = index.search(ds.query(qi), k, nprobe, &mut rng);
        let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        total += recall_at_k(&want, &got);
    }
    total / ds.n_queries() as f64
}

fn avg_recall_pq(
    index: &IvfPq,
    ds: &rabitq::data::Dataset,
    gt: &[rabitq::data::Neighbors],
    k: usize,
    nprobe: usize,
    rerank: usize,
) -> f64 {
    let mut total = 0.0;
    for qi in 0..ds.n_queries() {
        let res = index.search(ds.query(qi), k, nprobe, rerank, ScanMode::FastScanBatch);
        let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        total += recall_at_k(&want, &got);
    }
    total / ds.n_queries() as f64
}

#[test]
fn ivf_rabitq_reaches_high_recall_on_every_dataset_family() {
    for dataset in [
        PaperDataset::Sift,
        PaperDataset::Msong,
        PaperDataset::Deep,
        PaperDataset::Word2Vec,
        PaperDataset::Image,
    ] {
        let ds = dataset.generate(4_000, 8, 3);
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
        let index = IvfRabitq::build(
            &ds.data,
            ds.dim,
            &IvfConfig::new(20),
            RabitqConfig::default(),
        );
        let recall = avg_recall_rabitq(&index, &ds, &gt, 10, 20);
        assert!(
            recall > 0.97,
            "{}: IVF-RaBitQ full-probe recall {recall}",
            ds.name
        );
    }
}

#[test]
fn rabitq_beats_pq_fastscan_on_outlier_data() {
    // The MSong headline: same buckets, same probes — PQx4fs without a
    // huge rerank budget collapses, RaBitQ does not.
    let ds = PaperDataset::Msong.generate(5_000, 10, 7);
    let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
    let ivf = IvfConfig::new(20);
    let rabitq = IvfRabitq::build(&ds.data, ds.dim, &ivf, RabitqConfig::default());
    let pq_cfg = PqConfig {
        m: ds.dim / 2,
        k_bits: 4,
        train_iters: 8,
        training_sample: Some(5_000),
        seed: 7,
    };
    let pq = IvfPq::build(&ds.data, ds.dim, &ivf, &pq_cfg, false);
    let r_rabitq = avg_recall_rabitq(&rabitq, &ds, &gt, 10, 20);
    let r_pq = avg_recall_pq(&pq, &ds, &gt, 10, 20, 50);
    assert!(
        r_rabitq > r_pq + 0.2,
        "RaBitQ {r_rabitq} should dominate PQx4fs {r_pq} on outlier data"
    );
    assert!(r_rabitq > 0.95, "RaBitQ recall {r_rabitq}");
}

#[test]
fn estimation_error_shrinks_with_code_length_across_the_pipeline() {
    // Theorem 3.2 end-to-end: doubling the code length should cut the
    // average relative error by roughly √2 (O(1/√B)).
    let ds = PaperDataset::Deep.generate(2_000, 5, 9);
    let centroid = vec![0.0f32; ds.dim];
    let mut errors = Vec::new();
    for pad in [1usize, 4] {
        let cfg = RabitqConfig {
            padded_dim: Some((ds.dim * pad).div_ceil(64) * 64),
            ..RabitqConfig::default()
        };
        let q = Rabitq::new(ds.dim, cfg);
        let codes = q.encode_set((0..ds.n()).map(|i| ds.vector(i)), &centroid);
        let mut rng = StdRng::seed_from_u64(2);
        let mut err = RelativeErrorStats::new();
        for qi in 0..ds.n_queries() {
            let prepared = q.prepare_query(ds.query(qi), &centroid, &mut rng);
            for i in 0..ds.n() {
                let est = q.estimate(&prepared, &codes, i);
                err.record(est.dist_sq, vecs::l2_sq(ds.vector(i), ds.query(qi)));
            }
        }
        errors.push(err.average());
    }
    // 4× the bits → expect close to half the error; accept 0.65 slack.
    assert!(
        errors[1] < errors[0] * 0.65,
        "1x: {:.4}, 4x: {:.4}",
        errors[0],
        errors[1]
    );
}

#[test]
fn error_bound_coverage_matches_theory_at_scale() {
    // One-sided violations at ε₀ = 1.9 occur with probability ≈
    // P(N(0,1) > 1.9) ≈ 2.9% per pair. Over ~40k pairs the empirical rate
    // must be within a factor ~2 of that.
    let ds = PaperDataset::Sift.generate(4_000, 10, 13);
    let centroid = vec![0.0f32; ds.dim];
    let q = Rabitq::new(ds.dim, RabitqConfig::default());
    let codes = q.encode_set((0..ds.n()).map(|i| ds.vector(i)), &centroid);
    let mut rng = StdRng::seed_from_u64(4);
    let mut violations = 0u64;
    let mut total = 0u64;
    for qi in 0..ds.n_queries() {
        let prepared = q.prepare_query(ds.query(qi), &centroid, &mut rng);
        for i in 0..ds.n() {
            let est = q.estimate(&prepared, &codes, i);
            let exact = vecs::l2_sq(ds.vector(i), ds.query(qi));
            total += 1;
            if est.lower_bound > exact {
                violations += 1;
            }
        }
    }
    let rate = violations as f64 / total as f64;
    assert!(rate < 0.06, "violation rate {rate} too high");
    assert!(
        rate > 0.002,
        "violation rate {rate} suspiciously low — bound may be slack"
    );
}

#[test]
fn hnsw_and_ivf_agree_on_easy_queries() {
    let ds = PaperDataset::Sift.generate(3_000, 6, 17);
    let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 5, 1);
    let ivf = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(12),
        RabitqConfig::default(),
    );
    let hnsw = rabitq::hnsw::Hnsw::build(
        &ds.data,
        ds.dim,
        rabitq::hnsw::HnswConfig {
            m: 16,
            ef_construction: 200,
            seed: 1,
        },
    );
    let mut rng = StdRng::seed_from_u64(6);
    for qi in 0..ds.n_queries() {
        let ivf_ids: Vec<u32> = ivf
            .search(ds.query(qi), 5, 12, &mut rng)
            .neighbors
            .iter()
            .map(|&(id, _)| id)
            .collect();
        let hnsw_ids: Vec<u32> = hnsw
            .search(ds.query(qi), 5, 100)
            .iter()
            .map(|&(id, _)| id)
            .collect();
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        assert!(recall_at_k(&want, &ivf_ids) >= 0.8, "query {qi} (ivf)");
        assert!(recall_at_k(&want, &hnsw_ids) >= 0.8, "query {qi} (hnsw)");
    }
}
