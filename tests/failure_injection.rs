//! Failure injection for every persisted artifact: corrupted, truncated
//! and cross-format streams must surface `Err`, never panics, hangs,
//! unbounded allocations or silently wrong indexes.

use rabitq::core::{CodeSet, Rabitq, RabitqConfig};
use rabitq::data::registry::PaperDataset;
use rabitq::graph::{GraphRabitq, GraphRabitqConfig};
use rabitq::ivf::{IvfConfig, IvfRabitq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rabitq-inject-{name}-{}", std::process::id()))
}

fn small_ivf_bytes() -> Vec<u8> {
    let ds = PaperDataset::Sift.generate(300, 2, 7);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(4),
        RabitqConfig::default(),
    );
    let path = tmp_path("ivf-src");
    index.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

fn load_ivf(bytes: &[u8]) -> std::io::Result<IvfRabitq> {
    let path = tmp_path("ivf-load");
    std::fs::write(&path, bytes).unwrap();
    let r = IvfRabitq::load(&path);
    std::fs::remove_file(&path).ok();
    r
}

/// Every strict prefix of a valid index file fails to load.
#[test]
fn ivf_truncations_error_cleanly() {
    let bytes = small_ivf_bytes();
    for frac in [0usize, 1, 2, 4, 8] {
        let cut = bytes.len() * frac / 10;
        assert!(
            load_ivf(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes must not load",
            bytes.len()
        );
    }
    assert!(
        load_ivf(&bytes[..bytes.len() - 1]).is_err(),
        "one byte short"
    );
    assert!(load_ivf(&bytes).is_ok(), "the intact file must still load");
}

/// Flipping bytes early in the stream (headers, counts, dims) is either
/// detected or still yields a structurally consistent index — it must
/// never panic. Length fields are the dangerous ones: a flipped count
/// must not trigger a multi-gigabyte allocation.
#[test]
fn ivf_header_corruption_is_detected_or_harmless() {
    let bytes = small_ivf_bytes();
    for pos in [0usize, 5, 9, 17, 33, 65] {
        let mut bad = bytes.clone();
        bad[pos] ^= 0xFF;
        match load_ivf(&bad) {
            Err(_) => {}
            Ok(index) => {
                // Not detected at this offset — the index must still be
                // usable without panicking.
                let mut rng = StdRng::seed_from_u64(1);
                let q = vec![0.0f32; index.dim()];
                let _ = index.search(&q, 3, 2, &mut rng);
            }
        }
    }
}

/// Appending trailing garbage after a valid stream is ignored by readers
/// that consume exact byte counts (the file may live in a larger
/// container), and the loaded index behaves identically.
#[test]
fn ivf_trailing_garbage_is_tolerated() {
    let mut bytes = small_ivf_bytes();
    let ds = PaperDataset::Sift.generate(300, 2, 7);
    let reference = load_ivf(&bytes).unwrap();
    bytes.extend_from_slice(&[0xAB; 64]);
    let loaded = load_ivf(&bytes).unwrap();
    let mut rng_a = StdRng::seed_from_u64(2);
    let mut rng_b = StdRng::seed_from_u64(2);
    assert_eq!(
        reference.search(ds.query(0), 5, 4, &mut rng_a).neighbors,
        loaded.search(ds.query(0), 5, 4, &mut rng_b).neighbors
    );
}

/// A graph index file does not load as an IVF index and vice versa: the
/// section headers reject cross-format confusion.
#[test]
fn cross_format_files_are_rejected() {
    let ds = PaperDataset::Sift.generate(200, 1, 8);
    let graph = GraphRabitq::build(&ds.data, ds.dim, GraphRabitqConfig::default());
    let mut graph_bytes = Vec::new();
    graph.write(&mut graph_bytes).unwrap();
    assert!(load_ivf(&graph_bytes).is_err(), "graph file loaded as IVF");

    let ivf_bytes = small_ivf_bytes();
    assert!(
        GraphRabitq::read(&mut ivf_bytes.as_slice()).is_err(),
        "IVF file loaded as graph"
    );
}

/// The bare quantizer and code-set readers reject corruption too (they
/// are the building blocks every composite format relies on).
#[test]
fn quantizer_and_codeset_streams_reject_corruption() {
    let dim = 48;
    let quantizer = Rabitq::new(dim, RabitqConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let data: Vec<Vec<f32>> = (0..20)
        .map(|_| rabitq::math::rng::standard_normal_vec(&mut rng, dim))
        .collect();
    let centroid = vec![0.0f32; dim];
    let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);

    let mut qbytes = Vec::new();
    quantizer.write(&mut qbytes).unwrap();
    let mut cbytes = Vec::new();
    codes.write(&mut cbytes).unwrap();

    assert!(Rabitq::read(&mut qbytes[..qbytes.len() / 2].to_vec().as_slice()).is_err());
    assert!(CodeSet::read(&mut cbytes[..cbytes.len() / 3].to_vec().as_slice()).is_err());

    let mut bad = qbytes.clone();
    bad[3] ^= 0x55; // damage the section header
    assert!(Rabitq::read(&mut bad.as_slice()).is_err());

    // Intact streams round-trip.
    let q2 = Rabitq::read(&mut qbytes.as_slice()).unwrap();
    let c2 = CodeSet::read(&mut cbytes.as_slice()).unwrap();
    assert_eq!(q2.padded_dim(), quantizer.padded_dim());
    assert_eq!(c2.len(), codes.len());
}

/// Absurd length prefixes must not cause capacity blow-ups: a stream
/// claiming 2⁶⁰ vectors fails fast (bounded read), it does not OOM.
#[test]
fn absurd_length_fields_fail_fast() {
    let mut bytes = small_ivf_bytes();
    // Find a plausible little-endian length field and inflate it: flip
    // several high bytes across the stream; none of these may OOM/panic.
    for pos in (8..bytes.len().min(256)).step_by(13) {
        let mut bad = bytes.clone();
        bad[pos] = 0xFF;
        if pos + 1 < bad.len() {
            bad[pos + 1] = 0xFF;
        }
        let _ = load_ivf(&bad); // Err or Ok both fine; no panic, no OOM.
    }
    // Hard truncation to just a header plus a huge count.
    bytes.truncate(24);
    bytes.extend_from_slice(&u64::MAX.to_le_bytes());
    assert!(load_ivf(&bytes).is_err());
}
