//! Edge-case and failure-injection tests across the public API surface.

use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::data::registry::PaperDataset;
use rabitq::ivf::{FlatRabitq, IvfConfig, IvfRabitq, RerankStrategy};
use rabitq::math::rng::standard_normal_vec;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn single_vector_index_answers_every_query() {
    let dim = 32;
    let data = vec![0.5f32; dim];
    let index = IvfRabitq::build(&data, dim, &IvfConfig::new(4), RabitqConfig::default());
    assert_eq!(index.len(), 1);
    let mut rng = StdRng::seed_from_u64(1);
    let query = standard_normal_vec(&mut rng, dim);
    let res = index.search(&query, 10, 4, &mut rng);
    assert_eq!(res.neighbors.len(), 1);
    assert_eq!(res.neighbors[0].0, 0);
}

#[test]
fn duplicate_vectors_all_surface_in_topk() {
    let dim = 16;
    let mut rng = StdRng::seed_from_u64(2);
    let proto = standard_normal_vec(&mut rng, dim);
    // 20 identical copies plus 80 random vectors far away.
    let mut data = Vec::new();
    for _ in 0..20 {
        data.extend_from_slice(&proto);
    }
    for _ in 0..80 {
        let mut v = standard_normal_vec(&mut rng, dim);
        for x in v.iter_mut() {
            *x += 50.0;
        }
        data.extend_from_slice(&v);
    }
    let index = FlatRabitq::build(&data, dim, RabitqConfig::default());
    let res = index.search(&proto, 20, &mut rng);
    assert_eq!(res.neighbors.len(), 20);
    assert!(res.neighbors.iter().all(|&(id, d)| id < 20 && d < 1e-6));
}

#[test]
fn query_identical_to_centroid_is_handled() {
    // A query that coincides with a bucket centroid produces a zero
    // residual (Δ = 0 in the scalar quantization); estimates must stay
    // finite and correct.
    let dim = 24;
    let mut rng = StdRng::seed_from_u64(3);
    let data = standard_normal_vec(&mut rng, 200 * dim);
    let q = Rabitq::new(dim, RabitqConfig::default());
    let centroid = vec![0.0f32; dim]; // exactly the normalization point
    let codes = q.encode_set(data.chunks_exact(dim), &centroid);
    let prepared = q.prepare_query(&centroid.clone(), &centroid, &mut rng);
    for i in 0..200 {
        let est = q.estimate(&prepared, &codes, i);
        let exact = rabitq::math::vecs::l2_sq(&data[i * dim..(i + 1) * dim], &centroid);
        assert!(est.dist_sq.is_finite());
        // With q at the centroid the estimate is exact: dist² = ‖o − c‖².
        assert!(
            (est.dist_sq - exact).abs() / exact < 1e-3,
            "{} vs {exact}",
            est.dist_sq
        );
    }
}

#[test]
fn all_points_identical_is_degenerate_but_stable() {
    let dim = 16;
    let data = vec![1.0f32; 50 * dim];
    let index = IvfRabitq::build(&data, dim, &IvfConfig::new(4), RabitqConfig::default());
    let mut rng = StdRng::seed_from_u64(4);
    let query = vec![1.0f32; dim];
    let res = index.search(&query, 5, 4, &mut rng);
    assert_eq!(res.neighbors.len(), 5);
    assert!(res.neighbors.iter().all(|&(_, d)| d < 1e-10));
}

#[test]
fn high_dimensional_smoke_near_fastscan_u16_limit() {
    // padded_dim 3008 → 752 segments; max u16 accumulation 752·60 = 45120,
    // still within the SIMD kernel's overflow budget.
    let dim = 3000;
    let mut rng = StdRng::seed_from_u64(5);
    let data = standard_normal_vec(&mut rng, 40 * dim);
    let cfg = RabitqConfig {
        rotator: rabitq::core::RotatorKind::RandomizedHadamard, // O(D log D) keeps this fast
        ..RabitqConfig::default()
    };
    let q = Rabitq::new(dim, cfg);
    let centroid = vec![0.0f32; dim];
    let codes = q.encode_set(data.chunks_exact(dim), &centroid);
    let packed = q.pack(&codes);
    let prepared = q.prepare_query(&data[..dim].to_vec(), &centroid, &mut rng);
    let mut batch = Vec::new();
    q.estimate_batch(&prepared, &packed, &codes, &mut batch);
    for i in 0..40 {
        assert_eq!(q.estimate(&prepared, &codes, i), batch[i], "code {i}");
    }
    // Self-distance estimate should be near zero relative to typical
    // distances (~2·D).
    assert!(batch[0].dist_sq.abs() < 0.2 * 2.0 * dim as f32);
}

#[test]
fn nprobe_one_still_returns_results() {
    let ds = PaperDataset::Sift.generate(1_000, 4, 6);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(8),
        RabitqConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(7);
    let res = index.search(ds.query(0), 5, 1, &mut rng);
    assert!(!res.neighbors.is_empty());
}

#[test]
fn rerank_zero_candidates_strategy_is_safe_on_tiny_buckets() {
    let ds = PaperDataset::Image.generate(60, 3, 8);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(16),
        RabitqConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(9);
    for strategy in [
        RerankStrategy::ErrorBound,
        RerankStrategy::TopCandidates(1),
        RerankStrategy::None,
    ] {
        let res = index.search_with(ds.query(0), 10, 16, strategy, &mut rng);
        assert!(res.neighbors.len() <= 10);
        assert!(!res.neighbors.is_empty());
    }
}

#[test]
fn extreme_magnitude_vectors_do_not_overflow_estimates() {
    let dim = 32;
    let mut rng = StdRng::seed_from_u64(10);
    let mut data = standard_normal_vec(&mut rng, 100 * dim);
    for x in data.iter_mut().take(10 * dim) {
        *x *= 1e4;
    }
    let index = FlatRabitq::build(&data, dim, RabitqConfig::default());
    let query = standard_normal_vec(&mut rng, dim);
    let res = index.search(&query, 10, &mut rng);
    assert_eq!(res.neighbors.len(), 10);
    assert!(res.neighbors.iter().all(|&(_, d)| d.is_finite()));
    // The huge-magnitude vectors must rank far away, not corrupt the top.
    assert!(res.neighbors.iter().all(|&(id, _)| id >= 10));
}
