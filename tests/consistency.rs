//! Cross-crate consistency tests: every computation path that claims to be
//! equivalent must be *exactly* equivalent.

use rabitq::core::{Rabitq, RabitqConfig, RotatorKind};
use rabitq::data::registry::PaperDataset;
use rabitq::ivf::{IvfConfig, IvfRabitq, RerankStrategy};
use rabitq::math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn batch_and_single_estimates_are_bit_identical_on_real_workloads() {
    for dataset in [PaperDataset::Sift, PaperDataset::Msong, PaperDataset::Gist] {
        let ds = dataset.generate(600, 3, 5);
        let centroid = vec![0.25f32; ds.dim];
        let q = Rabitq::new(ds.dim, RabitqConfig::default());
        let codes = q.encode_set((0..ds.n()).map(|i| ds.vector(i)), &centroid);
        let packed = q.pack(&codes);
        let mut rng = StdRng::seed_from_u64(8);
        for qi in 0..ds.n_queries() {
            let prepared = q.prepare_query(ds.query(qi), &centroid, &mut rng);
            let mut batch = Vec::new();
            q.estimate_batch(&prepared, &packed, &codes, &mut batch);
            for i in 0..ds.n() {
                let single = q.estimate(&prepared, &codes, i);
                assert_eq!(single, batch[i], "{}: query {qi}, code {i}", ds.name);
            }
        }
    }
}

#[test]
fn all_rotator_kinds_give_valid_estimators() {
    let ds = PaperDataset::Deep.generate(800, 4, 11);
    let centroid = vec![0.0f32; ds.dim];
    for kind in [
        RotatorKind::DenseOrthogonal,
        RotatorKind::RandomizedHadamard,
    ] {
        let cfg = RabitqConfig {
            rotator: kind,
            ..RabitqConfig::default()
        };
        let q = Rabitq::new(ds.dim, cfg);
        let codes = q.encode_set((0..ds.n()).map(|i| ds.vector(i)), &centroid);
        let mut rng = StdRng::seed_from_u64(2);
        let mut total = 0.0f64;
        let mut count = 0u64;
        for qi in 0..ds.n_queries() {
            let prepared = q.prepare_query(ds.query(qi), &centroid, &mut rng);
            for i in 0..ds.n() {
                let est = q.estimate(&prepared, &codes, i);
                let exact = vecs::l2_sq(ds.vector(i), ds.query(qi));
                if exact > 0.0 {
                    total += ((est.dist_sq - exact).abs() / exact) as f64;
                    count += 1;
                }
            }
        }
        let avg = total / count as f64;
        assert!(avg < 0.12, "{kind:?}: avg rel err {avg}");
    }
}

#[test]
fn ivf_error_bound_search_is_consistent_with_exhaustive_topk() {
    // With every bucket probed and generous candidates, the index's answer
    // must equal the true exact top-k except for rare bound misses.
    let ds = PaperDataset::Image.generate(2_000, 10, 23);
    let gt = rabitq::data::exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(10),
        RabitqConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(3);
    let mut mismatches = 0usize;
    let mut total = 0usize;
    for qi in 0..ds.n_queries() {
        let res = index.search(ds.query(qi), 10, 10, &mut rng);
        for (got, want) in res.neighbors.iter().zip(gt[qi].iter()) {
            total += 1;
            if got.0 != want.0 {
                mismatches += 1;
            }
        }
    }
    assert!(
        mismatches as f64 / total as f64 <= 0.02,
        "{mismatches}/{total} exhaustive-probe mismatches"
    );
}

#[test]
fn rerank_strategies_rank_identically_under_full_information() {
    let ds = PaperDataset::Sift.generate(1_000, 6, 31);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(8),
        RabitqConfig::default(),
    );
    let mut rng = StdRng::seed_from_u64(5);
    for qi in 0..ds.n_queries() {
        let a = index.search_with(ds.query(qi), 7, 8, RerankStrategy::ErrorBound, &mut rng);
        let b = index.search_with(
            ds.query(qi),
            7,
            8,
            RerankStrategy::TopCandidates(ds.n()),
            &mut rng,
        );
        let ids_a: Vec<u32> = a.neighbors.iter().map(|&(id, _)| id).collect();
        let ids_b: Vec<u32> = b.neighbors.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids_a, ids_b, "query {qi}");
        // And the fixed-candidate path must re-rank far more.
        assert!(a.n_reranked <= b.n_reranked);
    }
}

#[test]
fn epsilon_zero_and_large_epsilon_bracket_the_default() {
    // Monotonicity: recall(ε=0) ≤ recall(ε=1.9) ≤ recall(ε=4).
    let ds = PaperDataset::Word2Vec.generate(2_000, 10, 37);
    let gt = rabitq::data::exact_knn(&ds.data, ds.dim, &ds.queries, 20, 1);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(10),
        RabitqConfig::default(),
    );
    let recall_at = |eps: f32| -> f64 {
        let mut rng = StdRng::seed_from_u64(6);
        let mut total = 0.0;
        for qi in 0..ds.n_queries() {
            let res = index.search_with(
                ds.query(qi),
                20,
                10,
                RerankStrategy::ErrorBoundWithEpsilon(eps),
                &mut rng,
            );
            let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
            let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            total += rabitq::metrics::recall_at_k(&want, &got);
        }
        total / ds.n_queries() as f64
    };
    let r0 = recall_at(0.0);
    let r_default = recall_at(1.9);
    let r4 = recall_at(4.0);
    assert!(r0 <= r_default + 1e-9, "{r0} vs {r_default}");
    assert!(r_default <= r4 + 1e-9, "{r_default} vs {r4}");
    assert!(r4 > 0.99, "recall at eps=4: {r4}");
}

#[test]
fn facade_reexports_compose() {
    // The facade's paths must interoperate: math → core → ivf → metrics.
    let data = rabitq::math::rng::standard_normal_vec(&mut StdRng::seed_from_u64(1), 64 * 200);
    let index = IvfRabitq::build(&data, 64, &IvfConfig::new(4), RabitqConfig::default());
    assert_eq!(index.len(), 200);
    assert!(index.normalized_code_entropy() > 0.9);
}
