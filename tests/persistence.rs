//! Index persistence: save/load round-trips must preserve search behaviour
//! exactly (same rotation, same codes, same factors ⇒ same estimates).

use rabitq::core::{Rabitq, RabitqConfig, RotatorKind};
use rabitq::data::registry::PaperDataset;
use rabitq::ivf::{IvfConfig, IvfRabitq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmp_path(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rabitq-persist-{name}-{}", std::process::id()))
}

#[test]
fn ivf_index_round_trips_with_identical_search_results() {
    let ds = PaperDataset::Sift.generate(1_500, 8, 3);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(10),
        RabitqConfig::default(),
    );
    let path = tmp_path("ivf");
    index.save(&path).unwrap();
    let loaded = IvfRabitq::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(loaded.len(), index.len());
    assert_eq!(loaded.n_buckets(), index.n_buckets());
    for qi in 0..ds.n_queries() {
        // Identical RNG stream ⇒ identical randomized rounding ⇒ results
        // must match exactly.
        let mut rng_a = StdRng::seed_from_u64(qi as u64);
        let mut rng_b = StdRng::seed_from_u64(qi as u64);
        let a = index.search(ds.query(qi), 10, 10, &mut rng_a);
        let b = loaded.search(ds.query(qi), 10, 10, &mut rng_b);
        assert_eq!(a.neighbors, b.neighbors, "query {qi}");
        assert_eq!(a.n_reranked, b.n_reranked);
    }
}

#[test]
fn quantizer_round_trips_for_every_rotator_kind() {
    let dim = 100;
    let mut rng = StdRng::seed_from_u64(5);
    let v = rabitq::math::rng::standard_normal_vec(&mut rng, dim);
    for kind in [
        RotatorKind::DenseOrthogonal,
        RotatorKind::RandomizedHadamard,
        RotatorKind::Identity,
    ] {
        let q = Rabitq::new(
            dim,
            RabitqConfig {
                rotator: kind,
                ..RabitqConfig::default()
            },
        );
        let mut buf = Vec::new();
        q.write(&mut buf).unwrap();
        let q2 = Rabitq::read(&mut buf.as_slice()).unwrap();
        assert_eq!(q2.dim(), q.dim());
        assert_eq!(q2.padded_dim(), q.padded_dim());
        assert_eq!(q2.config().rotator, kind);
        // The restored rotation must be numerically identical.
        assert_eq!(q.rotate(&v), q2.rotate(&v), "{kind:?}");
    }
}

#[test]
fn code_sets_round_trip_bit_for_bit() {
    let dim = 64;
    let q = Rabitq::new(dim, RabitqConfig::default());
    let mut rng = StdRng::seed_from_u64(9);
    let data: Vec<Vec<f32>> = (0..50)
        .map(|_| rabitq::math::rng::standard_normal_vec(&mut rng, dim))
        .collect();
    let centroid = vec![0.0f32; dim];
    let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
    let mut buf = Vec::new();
    codes.write(&mut buf).unwrap();
    let restored = rabitq::core::CodeSet::read(&mut buf.as_slice()).unwrap();
    assert_eq!(restored.len(), codes.len());
    for i in 0..codes.len() {
        assert_eq!(restored.code_bits(i), codes.code_bits(i));
        assert_eq!(restored.factors(i), codes.factors(i));
    }
}

#[test]
fn corrupted_files_are_rejected_not_misread() {
    let ds = PaperDataset::Image.generate(300, 2, 7);
    let index = IvfRabitq::build(
        &ds.data,
        ds.dim,
        &IvfConfig::new(4),
        RabitqConfig::default(),
    );
    let path = tmp_path("corrupt");
    index.save(&path).unwrap();

    // Truncation.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
    assert!(IvfRabitq::load(&path).is_err());

    // Wrong magic.
    let mut wrong = bytes.clone();
    wrong[0] = b'X';
    std::fs::write(&path, &wrong).unwrap();
    assert!(IvfRabitq::load(&path).is_err());

    std::fs::remove_file(&path).ok();
}
