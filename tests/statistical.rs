//! Statistical verification tests: seeded, tolerance-banded checks that
//! the implementation matches the paper's *quantitative* theory, not just
//! its API contracts. These are the test-suite counterparts of the
//! verification experiments (Figures 1, 5–8).

use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::math::rng::standard_normal_vec;
use rabitq::math::special::expected_code_alignment;
use rabitq::math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Encodes `n` unit Gaussian vectors and returns the mean ⟨ō,o⟩.
fn mean_alignment(dim: usize, n: usize, seed: u64) -> f64 {
    let q = Rabitq::new(
        dim,
        RabitqConfig {
            seed,
            padded_dim: Some(dim.div_ceil(64) * 64),
            ..RabitqConfig::default()
        },
    );
    let centroid = vec![0.0f32; dim];
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA11);
    let data: Vec<Vec<f32>> = (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect();
    let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
    (0..n).map(|i| codes.factors(i).ip_oo as f64).sum::<f64>() / n as f64
}

#[test]
fn alignment_matches_closed_form_across_dimensions() {
    // E[⟨ō,o⟩] = √(D/π)·2Γ(D/2)/((D−1)Γ((D−1)/2)) — Appendix B.1, Eq. 36.
    for dim in [128usize, 256, 512] {
        let measured = mean_alignment(dim, 400, 7);
        let theory = expected_code_alignment(dim);
        assert!(
            (measured - theory).abs() < 0.01,
            "D={dim}: measured {measured:.4} vs theory {theory:.4}"
        );
    }
}

#[test]
fn ip_estimation_error_decays_as_inverse_sqrt_dimension() {
    // Theorem 3.2: |est − ⟨o,q⟩| = O(1/√D). Fit the measured RMS error at
    // three dimensions against C/√D; the fitted exponent must be ≈ −0.5.
    let mut points: Vec<(f64, f64)> = Vec::new();
    for dim in [128usize, 512, 2048] {
        let q = Rabitq::new(
            dim,
            RabitqConfig {
                seed: 3,
                ..RabitqConfig::default()
            },
        );
        let centroid = vec![0.0f32; dim];
        let mut rng = StdRng::seed_from_u64(11);
        let n = 150;
        let data: Vec<Vec<f32>> = (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect();
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let query = standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query, &centroid, &mut rng);
        let mut q_unit = query.clone();
        let q_norm = vecs::normalize(&mut q_unit);
        assert!(q_norm > 0.0);
        let mut sq_err = 0.0f64;
        for (i, v) in data.iter().enumerate() {
            let mut o_unit = v.clone();
            vecs::normalize(&mut o_unit);
            let true_ip = vecs::dot(&o_unit, &q_unit) as f64;
            let est = q.estimate(&prepared, &codes, i).ip_est as f64;
            sq_err += (est - true_ip).powi(2);
        }
        let rms = (sq_err / n as f64).sqrt();
        points.push(((dim as f64).ln(), rms.ln()));
    }
    // Least-squares slope of ln(rms) vs ln(D).
    let n = points.len() as f64;
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let slope = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum::<f64>()
        / points.iter().map(|p| (p.0 - mx).powi(2)).sum::<f64>();
    assert!(
        (-0.65..=-0.35).contains(&slope),
        "error-decay exponent {slope:.3}, expected ≈ −0.5"
    );
}

#[test]
fn estimator_is_unbiased_over_many_rotations() {
    // Fix one (o, q) pair; re-sample the rotation many times. The mean of
    // the estimates must approach the true inner product (Theorem 3.2's
    // unbiasedness is over the rotation randomness).
    let dim = 64;
    let mut rng = StdRng::seed_from_u64(5);
    let o = {
        let mut v = standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut v);
        v
    };
    let q_vec = {
        let mut v = standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut v);
        v
    };
    let true_ip = vecs::dot(&o, &q_vec) as f64;
    let centroid = vec![0.0f32; dim];
    let trials = 600;
    let mut sum = 0.0f64;
    for t in 0..trials {
        let quantizer = Rabitq::new(
            dim,
            RabitqConfig {
                seed: 1000 + t,
                padded_dim: Some(dim),
                ..RabitqConfig::default()
            },
        );
        let codes = quantizer.encode_set(std::iter::once(o.as_slice()), &centroid);
        let prepared = quantizer.prepare_query(&q_vec, &centroid, &mut rng);
        sum += quantizer.estimate(&prepared, &codes, 0).ip_est as f64;
    }
    let mean = sum / trials as f64;
    // Per-trial std ≈ 0.75/√63 ≈ 0.095 ⇒ SEM ≈ 0.0039; allow 4 SEM.
    assert!(
        (mean - true_ip).abs() < 0.016,
        "mean estimate {mean:.4} vs true {true_ip:.4}"
    );
}

#[test]
fn bound_failure_rate_scales_with_epsilon() {
    // P(miss) ≈ P(|N(0,1)| > ε₀)/1-sided: halving ε₀ must raise the
    // violation rate substantially; ε₀ = 4 must make it vanish.
    let dim = 128;
    let quantizer = Rabitq::new(dim, RabitqConfig::default());
    let centroid = vec![0.0f32; dim];
    let mut rng = StdRng::seed_from_u64(13);
    let n = 2_000;
    let data: Vec<Vec<f32>> = (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect();
    let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
    let query = standard_normal_vec(&mut rng, dim);
    let prepared = quantizer.prepare_query(&query, &centroid, &mut rng);
    let violations = |eps: f32| -> usize {
        (0..n)
            .filter(|&i| {
                let est = quantizer.estimate_with_epsilon(&prepared, &codes, i, eps);
                est.lower_bound > vecs::l2_sq(&data[i], &query)
            })
            .count()
    };
    let v_half = violations(0.95);
    let v_default = violations(1.9);
    let v_wide = violations(4.0);
    assert!(v_half > v_default * 2, "{v_half} vs {v_default}");
    assert_eq!(v_wide, 0, "ε₀ = 4 should never miss at this scale");
}

#[test]
fn query_quantization_noise_is_negligible_at_bq4() {
    // Theorem 3.3: B_q = 4 suffices — the scalar-quantization error is a
    // small fraction (measured ≈ 0.26, stable across seeds once averaged)
    // of the estimator's own error, so it cannot move recall.
    let dim = 256;
    let quantizer = Rabitq::new(dim, RabitqConfig::default());
    let centroid = vec![0.0f32; dim];
    let mut rng = StdRng::seed_from_u64(17);
    let n = 300;
    let data: Vec<Vec<f32>> = (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect();
    let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);

    // Same query quantized at B_q = 4 and B_q = 8; the estimate difference
    // is (almost) purely scalar-quantization noise. Averaged over several
    // queries so the ratio is stable rather than seed-sensitive.
    let mut quant_noise = 0.0f64;
    let mut est_error = 0.0f64;
    for _ in 0..5 {
        let query = standard_normal_vec(&mut rng, dim);
        let prep4 = quantizer.prepare_query_bq(&query, &centroid, 4, &mut rng);
        let prep8 = quantizer.prepare_query_bq(&query, &centroid, 8, &mut rng);
        for (i, v) in data.iter().enumerate() {
            let e4 = quantizer.estimate(&prep4, &codes, i).dist_sq as f64;
            let e8 = quantizer.estimate(&prep8, &codes, i).dist_sq as f64;
            let exact = vecs::l2_sq(v, &query) as f64;
            quant_noise += (e4 - e8).abs();
            est_error += (e8 - exact).abs();
        }
    }
    assert!(
        quant_noise < est_error / 3.0,
        "B_q-4 noise {quant_noise:.1} vs estimator error {est_error:.1}"
    );
}
