//! Streaming ingest: build an IVF-RaBitQ index over an initial batch, then
//! keep inserting live vectors while serving queries — and persist the
//! index to disk between sessions.
//!
//! ```text
//! cargo run --release --example streaming_ingest
//! ```

use rabitq::core::RabitqConfig;
use rabitq::data::registry::PaperDataset;
use rabitq::ivf::{IvfConfig, IvfRabitq};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = PaperDataset::Deep.generate(12_000, 20, 13);
    let (initial, live) = ds.data.split_at(10_000 * ds.dim);

    // ---- Session 1: bootstrap over the initial batch. ----
    let mut index = IvfRabitq::build(
        initial,
        ds.dim,
        &IvfConfig::new(IvfConfig::clusters_for(10_000)),
        RabitqConfig::default(),
    );
    println!(
        "bootstrapped: {} vectors, {} buckets",
        index.len(),
        index.n_buckets()
    );

    // ---- Live phase: interleave inserts and searches. ----
    let mut rng = StdRng::seed_from_u64(2);
    let mut last_hit = 0u32;
    for (step, vector) in live.chunks_exact(ds.dim).enumerate() {
        let id = index.insert(vector);
        if step % 500 == 0 {
            // The vector just inserted must be findable immediately.
            let res = index.search(vector, 1, 8, &mut rng);
            assert_eq!(res.neighbors[0].0, id, "self-lookup after insert");
            last_hit = id;
        }
    }
    println!(
        "ingested {} live vectors (self-lookup verified through id {last_hit})",
        live.len() / ds.dim
    );

    // ---- Persist and reload. ----
    let path = std::env::temp_dir().join("streaming_ingest.rbq");
    index.save(&path).expect("save index");
    let size_mb = std::fs::metadata(&path)
        .map(|m| m.len() as f64 / 1e6)
        .unwrap_or(0.0);
    let restored = IvfRabitq::load(&path).expect("load index");
    std::fs::remove_file(&path).ok();
    println!(
        "persisted + reloaded: {} vectors, {:.1} MB on disk",
        restored.len(),
        size_mb
    );

    // The restored index serves the same queries.
    let mut rng_a = StdRng::seed_from_u64(3);
    let mut rng_b = StdRng::seed_from_u64(3);
    let a = index.search(ds.query(0), 10, 16, &mut rng_a);
    let b = restored.search(ds.query(0), 10, 16, &mut rng_b);
    assert_eq!(a.neighbors, b.neighbors);
    println!("restored index returns identical results — done.");
}
