//! The collection engine end to end: open a durable collection, stream
//! vectors in (sealing IVF-RaBitQ segments along the way), delete, crash,
//! recover from the WAL, compact, and search throughout.
//!
//! ```text
//! cargo run --release --example collection_lifecycle
//! ```

use rabitq::data::registry::PaperDataset;
use rabitq::store::{Collection, CollectionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let ds = PaperDataset::Sift.generate(6_000, 10, 41);
    let dir = std::env::temp_dir().join(format!("collection-lifecycle-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let mut config = CollectionConfig::new(ds.dim);
    config.memtable_capacity = 1_000; // small, so sealing is visible

    // ---- Session 1: ingest with live queries. ----
    {
        let mut collection = Collection::open(&dir, config.clone()).expect("open collection");
        let mut rng = StdRng::seed_from_u64(1);
        for (i, vector) in ds.data.chunks_exact(ds.dim).enumerate() {
            let id = collection.insert(vector).expect("insert");
            if i % 1_500 == 0 {
                // Just-written vectors are immediately searchable: they sit
                // in the exact-scan memtable until a seal moves them into a
                // quantized segment.
                let res = collection.search(vector, 1, 32, &mut rng);
                assert_eq!(res.neighbors[0].0, id);
            }
        }
        println!(
            "ingested {} vectors -> {} segments + {} in the memtable",
            collection.len(),
            collection.n_segments(),
            collection.memtable_len()
        );

        for id in 0..500u32 {
            collection.delete(id).expect("delete");
        }
        println!("tombstoned 500 ids; {} live", collection.len());
        // No clean shutdown: the memtable rows and the deletes exist only
        // in the write-ahead log when this scope "crashes".
    }

    // ---- Session 2: crash recovery. ----
    let mut collection = Collection::open(&dir, config.clone()).expect("replay WAL");
    println!(
        "recovered: {} live vectors, {} segments, {} replayed into the memtable",
        collection.len(),
        collection.n_segments(),
        collection.memtable_len()
    );
    assert_eq!(collection.len(), 5_500);

    // ---- Compaction: fold every segment, reclaim the tombstones. ----
    collection.seal().expect("seal");
    let before = collection.n_segments();
    collection.compact().expect("compact");
    println!("compacted {before} segments -> {}", collection.n_segments());

    // ---- Search: exact distances, ascending, tombstones gone. ----
    let mut rng = StdRng::seed_from_u64(2);
    let res = collection.search(ds.query(0), 10, 64, &mut rng);
    assert!(res.neighbors.iter().all(|&(id, _)| id >= 500));
    assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
    println!(
        "top-10 for query 0: ids {:?} ({} estimated, {} re-ranked)",
        res.neighbors.iter().map(|&(id, _)| id).collect::<Vec<_>>(),
        res.n_estimated,
        res.n_reranked
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("lifecycle complete — collection cleaned up.");
}
