//! End-to-end ANN search with the IVF-RaBitQ index of Section 4:
//! build over a clustered synthetic dataset, search with the
//! error-bound-based re-ranking rule, and report recall and scan
//! statistics across `nprobe` settings.
//!
//! ```text
//! cargo run --release --example ivf_ann_search
//! ```

use rabitq::core::RabitqConfig;
use rabitq::data::exact_knn;
use rabitq::data::registry::PaperDataset;
use rabitq::ivf::{IvfConfig, IvfRabitq};
use rabitq::metrics::{recall_at_k, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 20_000;
    let n_queries = 30;
    let k = 10;

    // A SIFT-like workload: clustered 128-dim descriptors.
    let ds = PaperDataset::Sift.generate(n, n_queries, 7);
    println!(
        "dataset: {} ({n} x {}D, {} queries)",
        ds.name, ds.dim, n_queries
    );

    // Exact ground truth for scoring.
    let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);

    // Build the index: KMeans buckets + RaBitQ codes per bucket.
    let ivf_cfg = IvfConfig::new(IvfConfig::clusters_for(n));
    let index = IvfRabitq::build(&ds.data, ds.dim, &ivf_cfg, RabitqConfig::default());
    println!(
        "index: {} buckets, {}-bit codes, error-bound re-ranking (no tuning parameter)\n",
        index.n_buckets(),
        index.quantizer().padded_dim()
    );

    println!("nprobe  recall@{k}  QPS     candidates-scanned  exact-dists-computed");
    for nprobe in [2usize, 4, 8, 16, 32, 64] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sw = Stopwatch::new();
        let mut recall = 0.0;
        let mut scanned = 0usize;
        let mut reranked = 0usize;
        for qi in 0..n_queries {
            sw.start();
            let res = index.search(ds.query(qi), k, nprobe, &mut rng);
            sw.stop();
            let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
            let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            recall += recall_at_k(&want, &got);
            scanned += res.n_estimated;
            reranked += res.n_reranked;
        }
        println!(
            "{nprobe:>6}  {:>9.4}  {:>6.0}  {:>18}  {:>20}",
            recall / n_queries as f64,
            sw.per_second(n_queries as u64),
            scanned / n_queries,
            reranked / n_queries,
        );
    }
    println!(
        "\nThe bound-based rule re-ranks only the candidates whose distance lower \
         bound\nbeats the current top-{k} — typically a few percent of everything scanned."
    );
}
