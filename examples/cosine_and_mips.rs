//! Cosine similarity and maximum-inner-product search with RaBitQ —
//! footnote 8 of the paper: both reduce to the unit-vector inner product
//! the estimator already targets.
//!
//! * cosine(o, q) = ⟨o/‖o‖, q/‖q‖⟩ — estimate directly on unit vectors;
//! * ⟨o, q⟩ = ‖o−c‖·‖q−c‖·⟨ô, q̂⟩ + ⟨o,c⟩ + ⟨q,c⟩ − ‖c‖², with ⟨o,c⟩
//!   precomputable per vector — so one code set serves distance, cosine
//!   and inner-product queries.
//!
//! ```text
//! cargo run --release --example cosine_and_mips
//! ```

use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::math::rng::standard_normal_vec;
use rabitq::math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 256;
    let n = 4_000;
    let mut rng = StdRng::seed_from_u64(21);

    // Embedding-style data: unit-normalized vectors.
    let mut data: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            let mut v = standard_normal_vec(&mut rng, dim);
            vecs::normalize(&mut v);
            v
        })
        .collect();
    // Give a handful of vectors high cosine with the future query
    // direction, so MIPS has planted winners.
    let mut direction = standard_normal_vec(&mut rng, dim);
    vecs::normalize(&mut direction);
    for (j, v) in data.iter_mut().enumerate().take(5) {
        for (x, &d) in v.iter_mut().zip(direction.iter()) {
            *x = 0.2 * *x + 0.8 * d * (1.0 + j as f32 * 0.01);
        }
        vecs::normalize(v);
    }

    let centroid = vec![0.0f32; dim]; // unit sphere: origin is the natural center
    let quantizer = Rabitq::new(dim, RabitqConfig::default());
    let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);

    let mut query = direction.clone();
    for x in query.iter_mut() {
        *x += 0.05;
    }
    vecs::normalize(&mut query);
    let prepared = quantizer.prepare_query(&query, &centroid, &mut rng);

    // cosine(o, q) = est ⟨o, q⟩ directly (all unit vectors, centroid 0):
    // the estimator's ip_est *is* the cosine estimate.
    let mut scored: Vec<(usize, f32, f32)> = (0..n)
        .map(|i| {
            let est = quantizer.estimate(&prepared, &codes, i);
            let exact = vecs::dot(&data[i], &query);
            (i, est.ip_est, exact)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top-8 by estimated cosine (D = {dim}, {n} unit vectors, 1 bit/dim):");
    println!("  id    est-cos  true-cos");
    for &(id, est, exact) in scored.iter().take(8) {
        println!("  {id:>4}  {est:>7.4}  {exact:>8.4}");
    }

    // Verify the planted winners are found.
    let top_ids: Vec<usize> = scored.iter().take(5).map(|&(id, _, _)| id).collect();
    let found = (0..5).filter(|i| top_ids.contains(i)).count();
    println!("\nplanted high-similarity vectors found in top-5: {found}/5");

    // For raw (non-unit) MIPS, decompose around the data centroid:
    // ⟨o, q⟩ = ‖o−c‖·‖q−c‖·⟨ô,q̂⟩ + ⟨o,c⟩ + ⟨q,c⟩ − ‖c‖².
    // With c = 0 this collapses to ‖o‖·‖q‖·cos — demonstrate on scaled data.
    let scales: Vec<f32> = (0..n).map(|i| 1.0 + (i % 7) as f32 * 0.3).collect();
    let mut best_est = (0usize, f32::MIN);
    let mut best_true = (0usize, f32::MIN);
    for i in 0..n {
        let est = quantizer.estimate(&prepared, &codes, i);
        // ‖o_r‖ = scale (unit vector scaled), ‖q‖ = 1.
        let ip_est = scales[i] * est.ip_est;
        let ip_true = scales[i] * vecs::dot(&data[i], &query);
        if ip_est > best_est.1 {
            best_est = (i, ip_est);
        }
        if ip_true > best_true.1 {
            best_true = (i, ip_true);
        }
    }
    println!(
        "\nMIPS over scaled vectors: argmax(est) = {} ({:.3}), argmax(true) = {} ({:.3})",
        best_est.0, best_est.1, best_true.0, best_true.1
    );

    // Everything above by hand is what `FlatMips` packages: the footnote-8
    // identity with per-vector ⟨o,c⟩ factors, the confidence bounds lifted
    // to raw inner products, and bound-gated exact re-scoring.
    let scaled: Vec<f32> = data
        .iter()
        .zip(&scales)
        .flat_map(|(v, &s)| v.iter().map(move |&x| x * s))
        .collect();
    let index = rabitq::ivf::FlatMips::build(&scaled, dim, RabitqConfig::default());
    let res = index.search_ip(&query, 5, &mut rng);
    println!("\nFlatMips top-5 by exact inner product (bound-gated rerank):");
    println!("  id    inner-product");
    for &(id, score) in &res.neighbors {
        println!("  {id:>4}  {score:>12.4}");
    }
    println!(
        "  scanned {} codes, re-scored {} exactly ({:.1}%)",
        res.n_estimated,
        res.n_reranked,
        100.0 * res.n_reranked as f64 / res.n_estimated as f64
    );
    assert_eq!(
        res.neighbors[0].0 as usize, best_true.0,
        "FlatMips agrees with brute force"
    );
}
