//! Graph-based ANN search over RaBitQ codes — the Section 7 future-work
//! combination (what NGT-QG, Lucene and Milvus pair the codes with).
//!
//! Builds an HNSW graph, traverses it with the single-code bitwise
//! estimator, and re-ranks only the candidates the error bound cannot
//! exclude. Compares recall and raw-vector touches against the exact
//! traversal of the same graph.
//!
//! ```text
//! cargo run --release --example graph_search
//! ```

use rabitq::data::{exact_knn, generate, DatasetSpec, Profile};
use rabitq::graph::{GraphRabitq, GraphRabitqConfig};
use rabitq::metrics::recall_at_k;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (n, dim, k, n_queries) = (20_000, 128, 10, 30);
    let ds = generate(&DatasetSpec {
        name: "sift-like".into(),
        dim,
        n,
        n_queries,
        profile: Profile::Clustered {
            clusters: 50,
            cluster_std: 1.0,
            center_scale: 4.0,
        },
        seed: 7,
    });
    let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);

    println!("building HNSW graph + RaBitQ codes over {n} x {dim} vectors ...");
    let index = GraphRabitq::build(&ds.data, dim, GraphRabitqConfig::default());
    let (layers, avg_degree) = index.graph().graph_stats();
    println!("graph: {layers} layers, avg base-layer degree {avg_degree:.1}\n");

    println!(
        "{:<10} {:>16} {:>16} {:>14} {:>14}",
        "efSearch", "recall (exact)", "recall (RaBitQ)", "est/query", "rerank/query"
    );
    let mut rng = StdRng::seed_from_u64(99);
    for ef in [20usize, 40, 80, 160] {
        let mut recall_exact = 0.0;
        let mut recall_quantized = 0.0;
        let (mut est, mut rer) = (0usize, 0usize);
        for qi in 0..n_queries {
            let query = ds.query(qi);
            let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();

            let exact: Vec<u32> = index
                .search_exact(query, k, ef)
                .iter()
                .map(|&(id, _)| id)
                .collect();
            recall_exact += recall_at_k(&want, &exact);

            let res = index.search(query, k, ef, &mut rng);
            est += res.n_estimated;
            rer += res.n_reranked;
            let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
            recall_quantized += recall_at_k(&want, &got);
        }
        println!(
            "{:<10} {:>16.4} {:>16.4} {:>14} {:>14}",
            ef,
            recall_exact / n_queries as f64,
            recall_quantized / n_queries as f64,
            est / n_queries,
            rer / n_queries,
        );
    }

    println!(
        "\nThe quantized traversal estimates distances from 1-bit codes (est/query \
         vertices visited)\nand touches raw vectors only where the error bound demands \
         it (rerank/query) — the\naccess pattern that makes RaBitQ + graphs practical \
         where PQ's batched fast-scan is not."
    );
}
