//! Quickstart: quantize vectors to 1 bit per dimension and estimate
//! distances from the bits.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::math::rng::standard_normal_vec;
use rabitq::math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 256;
    let n = 1_000;
    let mut rng = StdRng::seed_from_u64(1);

    // Some data and a centroid to normalize against (Section 3.1.1 of the
    // paper; inside an IVF index this is the bucket centroid).
    let data: Vec<Vec<f32>> = (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect();
    let centroid = vec![0.0f32; dim];

    // ---- Index phase (Algorithm 1). ----
    let quantizer = Rabitq::new(dim, RabitqConfig::default());
    let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
    println!(
        "encoded {n} vectors of D = {dim} into {}-bit codes ({} bytes each)",
        quantizer.padded_dim(),
        quantizer.padded_dim() / 8
    );

    // ---- Query phase (Algorithm 2). ----
    let query = standard_normal_vec(&mut rng, dim);
    let prepared = quantizer.prepare_query(&query, &centroid, &mut rng);

    println!("\n  id  estimated-dist^2  true-dist^2  rel-err   CI covers truth?");
    for i in 0..8 {
        let est = quantizer.estimate(&prepared, &codes, i);
        let exact = vecs::l2_sq(&data[i], &query);
        let rel = (est.dist_sq - exact).abs() / exact;
        let covered = est.lower_bound <= exact;
        println!(
            "  {i:>2}  {:>16.2}  {:>11.2}  {:>6.2}%   {}",
            est.dist_sq,
            exact,
            rel * 100.0,
            if covered { "yes" } else { "NO" }
        );
    }

    // The estimator is unbiased with error O(1/sqrt(D)) — check the average
    // error over the whole set.
    let mut total = 0.0f64;
    for (i, v) in data.iter().enumerate() {
        let est = quantizer.estimate(&prepared, &codes, i);
        let exact = vecs::l2_sq(v, &query);
        total += ((est.dist_sq - exact).abs() / exact) as f64;
    }
    println!(
        "\naverage relative error over {n} vectors: {:.2}% (32x compression)",
        total / n as f64 * 100.0
    );
}
