//! The error bound as a *filter*: RaBitQ's confidence interval
//! (Theorem 3.2) lets a scan discard most candidates without touching the
//! raw vectors, while guaranteeing (w.h.p.) that no true neighbor is lost.
//!
//! This example runs a threshold query — "find every vector within
//! distance `r` of the query" — using only the codes plus bound, then
//! verifies against the exact answer.
//!
//! ```text
//! cargo run --release --example error_bound_filtering
//! ```

use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::math::rng::standard_normal_vec;
use rabitq::math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 384;
    let n = 20_000;
    let mut rng = StdRng::seed_from_u64(3);

    let data: Vec<Vec<f32>> = (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect();
    let centroid = vec![0.0f32; dim];

    let quantizer = Rabitq::new(dim, RabitqConfig::default());
    let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
    let packed = quantizer.pack(&codes);

    let query = standard_normal_vec(&mut rng, dim);
    let prepared = quantizer.prepare_query(&query, &centroid, &mut rng);

    // Radius chosen to accept roughly the nearest ~1% of vectors.
    let mut exact: Vec<f32> = data.iter().map(|v| vecs::l2_sq(v, &query)).collect();
    let mut sorted = exact.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let radius_sq = sorted[n / 100];

    // ---- Filter with codes only. ----
    let mut estimates = Vec::new();
    quantizer.estimate_batch(&prepared, &packed, &codes, &mut estimates);
    let mut survivors = Vec::new();
    let mut certified_in = 0usize;
    for (i, est) in estimates.iter().enumerate() {
        // Candidate may be within the radius unless its lower bound says no.
        if est.lower_bound <= radius_sq {
            survivors.push(i);
            // Dual use of the interval: if even the UPPER bound is inside
            // the radius, membership is certified without the raw vector.
            if est.upper_bound <= radius_sq {
                certified_in += 1;
            }
        }
    }

    // ---- Verify: every true in-radius vector must have survived. ----
    let truly_inside: Vec<usize> = (0..n).filter(|&i| exact[i] <= radius_sq).collect();
    let survivor_set: std::collections::HashSet<usize> = survivors.iter().copied().collect();
    let missed = truly_inside
        .iter()
        .filter(|i| !survivor_set.contains(i))
        .count();

    println!("threshold query: dist^2 <= {radius_sq:.1} over {n} vectors (D = {dim})");
    println!("  true matches        : {}", truly_inside.len());
    println!(
        "  candidates surviving the bound filter: {} ({:.1}% of the dataset)",
        survivors.len(),
        survivors.len() as f64 / n as f64 * 100.0
    );
    println!(
        "  of those, certified inside by the upper bound (no exact check needed): {certified_in}"
    );
    println!(
        "  true matches missed by the filter    : {missed} (bound holds w.p. ~1-2e^(-c*eps0^2))"
    );
    println!(
        "  raw-vector distance computations saved: {:.1}%",
        (1.0 - survivors.len() as f64 / n as f64) * 100.0
    );

    // Final answer = exact check on survivors only.
    exact.truncate(n);
    let answer: Vec<usize> = survivors
        .into_iter()
        .filter(|&i| exact[i] <= radius_sq)
        .collect();
    println!(
        "  exact answer after re-check          : {} vectors",
        answer.len()
    );
}
