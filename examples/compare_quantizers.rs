//! Head-to-head distance-estimation comparison of every quantizer in the
//! workspace — RaBitQ (D bits) against PQ and OPQ (2D bits) and the
//! LSQ-style additive quantizer — on a dataset with MSong-like magnitude
//! outliers, the regime where the paper shows PQ's fast-scan collapsing.
//!
//! ```text
//! cargo run --release --example compare_quantizers
//! ```

use rabitq::aq::{AdditiveQuantizer, AqConfig};
use rabitq::core::{Rabitq, RabitqConfig};
use rabitq::data::registry::PaperDataset;
use rabitq::math::vecs;
use rabitq::metrics::RelativeErrorStats;
use rabitq::pq::{PqConfig, PqPacked, ProductQuantizer, QuantizedLuts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 5_000;
    let n_queries = 10;
    let ds = PaperDataset::Msong.generate(n, n_queries, 11);
    let dim = ds.dim;
    println!(
        "dataset: {} ({n} x {dim}D) — heterogeneous scales + magnitude outliers\n",
        ds.name
    );
    let centroid = {
        // Global mean as the single normalization centroid.
        let mut c = vec![0.0f32; dim];
        for i in 0..n {
            vecs::add_assign(&mut c, ds.vector(i));
        }
        vecs::scale(&mut c, 1.0 / n as f32);
        c
    };
    let mut rng = StdRng::seed_from_u64(5);

    // Exact distances for scoring.
    let exact: Vec<Vec<f32>> = (0..n_queries)
        .map(|qi| {
            (0..n)
                .map(|i| vecs::l2_sq(ds.vector(i), ds.query(qi)))
                .collect()
        })
        .collect();

    println!("method                bits/vec  avg-rel-err  max-rel-err");
    println!("----------------------------------------------------------");

    // ---- RaBitQ, D bits. ----
    let rabitq = Rabitq::new(dim, RabitqConfig::default());
    let codes = rabitq.encode_set((0..n).map(|i| ds.vector(i)), &centroid);
    let mut err = RelativeErrorStats::new();
    for qi in 0..n_queries {
        let prepared = rabitq.prepare_query(ds.query(qi), &centroid, &mut rng);
        for i in 0..n {
            err.record(rabitq.estimate(&prepared, &codes, i).dist_sq, exact[qi][i]);
        }
    }
    report("RaBitQ", rabitq.padded_dim(), &err);

    // ---- Residuals for the PQ-family (same normalization). ----
    let residuals: Vec<f32> = (0..n)
        .flat_map(|i| {
            let mut r = ds.vector(i).to_vec();
            vecs::sub_assign(&mut r, &centroid);
            r
        })
        .collect();

    // ---- PQ x4 fast scan, 2D bits. ----
    let pq_cfg = PqConfig {
        m: dim / 2,
        k_bits: 4,
        train_iters: 10,
        training_sample: Some(5_000),
        seed: 5,
    };
    let pq = ProductQuantizer::train(&residuals, dim, &pq_cfg);
    let pq_codes = pq.encode_set(residuals.chunks_exact(dim));
    let packed = PqPacked::pack(&pq_codes);
    let mut err = RelativeErrorStats::new();
    let mut est = Vec::new();
    for qi in 0..n_queries {
        let mut rq = ds.query(qi).to_vec();
        vecs::sub_assign(&mut rq, &centroid);
        let qluts = QuantizedLuts::build(&pq, &rq);
        packed.scan_all(&qluts, &mut est);
        for i in 0..n {
            err.record(est[i], exact[qi][i]);
        }
    }
    report("PQx4fs (u8 LUTs)", 4 * pq.m(), &err);

    // ---- Same PQ, exact f32 LUTs (the x8-style read-out). ----
    let mut err = RelativeErrorStats::new();
    for qi in 0..n_queries {
        let mut rq = ds.query(qi).to_vec();
        vecs::sub_assign(&mut rq, &centroid);
        let luts = pq.build_luts(&rq);
        for i in 0..n {
            err.record(pq.adc_distance(&luts, pq_codes.code(i)), exact[qi][i]);
        }
    }
    report("PQx4 (f32 LUTs)", 4 * pq.m(), &err);

    // ---- LSQ-style AQ on raw vectors, ~D bits. ----
    let aq_cfg = AqConfig {
        m: dim / 4,
        k_bits: 4,
        refine_iters: 1,
        icm_passes: 1,
        kmeans_iters: 8,
        training_sample: Some(2_000),
        seed: 5,
    };
    let aq = AdditiveQuantizer::train(&ds.data, dim, &aq_cfg);
    let aq_codes = aq.encode_set((0..n).map(|i| ds.vector(i)));
    let aq_packed = PqPacked::pack(&aq_codes.codes);
    let mut err = RelativeErrorStats::new();
    for qi in 0..n_queries {
        aq.fastscan_distances(ds.query(qi), &aq_packed, &aq_codes, &mut est);
        for i in 0..n {
            err.record(est[i], exact[qi][i]);
        }
    }
    report("LSQ(AQ)x4fs", 4 * aq.m(), &err);

    println!(
        "\nRaBitQ holds single-digit error with HALF the bits; the u8-LUT fast scan\n\
         collapses on outlier data exactly as Section 5.2.1 of the paper reports."
    );
}

fn report(name: &str, bits: usize, err: &RelativeErrorStats) {
    println!(
        "{name:<20}  {bits:<8}  {:>10.2}%  {:>10.2}%",
        err.average() * 100.0,
        err.maximum() * 100.0
    );
}
