//! # rabitq — a faithful Rust reproduction of RaBitQ (SIGMOD 2024)
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`core`] — the RaBitQ quantizer: random-rotation codebook, `D`-bit
//!   codes, the unbiased estimator with its `O(1/√D)` error bound, and the
//!   bitwise / fast-scan kernels.
//! * [`ivf`] — the IVF index with error-bound-based re-ranking (Section 4).
//! * [`graph`] — HNSW traversal over RaBitQ codes (the Section 7
//!   future-work combination, in the style of NGT-QG).
//! * [`store`] — the WAL-backed segmented collection engine: live ingest,
//!   tombstone deletes, crash recovery, and compaction over sealed
//!   IVF-RaBitQ segments.
//! * [`pq`] / [`aq`] — the PQ, OPQ and LSQ-style baselines.
//! * [`hnsw`] — the graph baseline.
//! * [`kmeans`], [`math`], [`data`], [`metrics`] — substrates.
//!
//! See `examples/quickstart.rs` for the five-minute tour, `README.md` for
//! the crate map, and `DESIGN.md` for the full system inventory.
//!
//! ```
//! use rabitq::core::RabitqConfig;
//! use rabitq::ivf::{IvfConfig, IvfRabitq};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // 500 Gaussian vectors in 64 dimensions.
//! let mut rng = StdRng::seed_from_u64(0);
//! let data = rabitq::math::rng::standard_normal_vec(&mut rng, 500 * 64);
//!
//! // Build an IVF-RaBitQ index and search with error-bound re-ranking.
//! let index = IvfRabitq::build(&data, 64, &IvfConfig::new(8), RabitqConfig::default());
//! let query = rabitq::math::rng::standard_normal_vec(&mut rng, 64);
//! let result = index.search(&query, 10, 8, &mut rng);
//! assert_eq!(result.neighbors.len(), 10);
//! // Neighbors are exact distances, ascending.
//! assert!(result.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
//! ```

pub use rabitq_aq as aq;
pub use rabitq_core as core;
pub use rabitq_data as data;
pub use rabitq_graph as graph;
pub use rabitq_hnsw as hnsw;
pub use rabitq_ivf as ivf;
pub use rabitq_kmeans as kmeans;
pub use rabitq_math as math;
pub use rabitq_metrics as metrics;
pub use rabitq_pq as pq;
pub use rabitq_store as store;
