//! `rabitq` binary entry point; all logic lives in the library so the
//! integration tests can drive it in-process.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(msg) = rabitq_cli::run(&args) {
        eprintln!("error: {msg}");
        std::process::exit(1);
    }
}
