//! # rabitq-cli — command-line front end
//!
//! End-to-end workflows over `.fvecs`/`.ivecs` files (the interchange
//! format of the public ANN benchmarks):
//!
//! ```text
//! rabitq generate      --dataset sift --n 100000 --queries 1000 \
//!                      --out-data base.fvecs --out-queries q.fvecs
//! rabitq ground-truth  --data base.fvecs --queries q.fvecs --k 100 --out gt.ivecs
//! rabitq build         --data base.fvecs --clusters 1024 --out index.rbq
//! rabitq search        --index index.rbq --queries q.fvecs --k 100 \
//!                      --nprobe 64 --gt gt.ivecs --out results.ivecs
//! rabitq info          --index index.rbq
//! rabitq graph-build   --data base.fvecs --centroids 64 --out index.gph
//! rabitq graph-search  --index index.gph --queries q.fvecs --k 100 \
//!                      --ef-search 400 --gt gt.ivecs --out results.ivecs
//! ```
//!
//! And the live-collection workflows backed by `rabitq-store` (WAL +
//! sealed segments + compaction):
//!
//! ```text
//! rabitq ingest             --dir ./coll --data base.fvecs --memtable 4096
//! rabitq delete             --dir ./coll --ids 17,42,99
//! rabitq compact            --dir ./coll
//! rabitq verify             --dir ./coll
//! rabitq collection-search  --dir ./coll --queries q.fvecs --k 100 \
//!                           --nprobe 64 --gt gt.ivecs --out results.ivecs
//! rabitq serve              --dir ./coll --addr 127.0.0.1:7878 \
//!                           --workers 8 --max-batch 64 --linger-us 100 \
//!                           --slow-query-ms 50 --events-capacity 256
//! rabitq events             --dir ./coll
//! ```
//!
//! `serve` runs the `rabitq-serve` HTTP front end over a collection
//! until interrupted (or for `--duration-ms` if given): searches are
//! coalesced through the batching queue, mutations go through the WAL.
//! `--slow-query-ms N` journals every search slower than `N` ms with
//! its stage breakdown (default 0 = disabled); `--events-capacity`
//! bounds each collection's event journal (default 256 events).
//!
//! `events` opens a collection read-only and dumps its bounded event
//! journal — on a fresh open that is the `open` record plus any
//! quarantines; under `serve` the live journal (seals, compactions,
//! slow queries, read-only flips) is served by `/stats` instead.
//!
//! `collection-search` also exposes the parallel read path:
//! `--threads N` fans each query's segment scans over `N` workers, and
//! `--batch` switches to the batch engine (`search_many`), which
//! distributes whole queries over the workers with per-(query, segment)
//! seeded RNGs — results are bit-identical for every `--threads` value.
//!
//! The library surface (`run`) is process-free so the whole pipeline is
//! exercised by integration tests.

use rabitq_core::{RabitqConfig, RotatorKind};
use rabitq_data::io;
use rabitq_data::registry::PaperDataset;
use rabitq_graph::{GraphRabitq, GraphRabitqConfig, GraphRerank};
use rabitq_hnsw::HnswConfig;
use rabitq_ivf::{IvfConfig, IvfRabitq};
use rabitq_metrics::{recall_at_k, Stopwatch};
use rabitq_store::{
    Collection, CollectionConfig, DiskIo, Manifest, ParallelOptions, Segment, Wal, MANIFEST_FILE,
    QUARANTINE_SUFFIX, WAL_FILE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Runs one CLI invocation. `args` excludes the program name.
pub fn run(args: &[String]) -> Result<(), String> {
    let (command, rest) = args.split_first().ok_or_else(usage)?;
    let flags = Flags::parse(rest)?;
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "ground-truth" => cmd_ground_truth(&flags),
        "build" => cmd_build(&flags),
        "search" => cmd_search(&flags),
        "info" => cmd_info(&flags),
        "graph-build" => cmd_graph_build(&flags),
        "graph-search" => cmd_graph_search(&flags),
        "ingest" => cmd_ingest(&flags),
        "delete" => cmd_delete(&flags),
        "compact" => cmd_compact(&flags),
        "verify" => cmd_verify(&flags),
        "collection-search" => cmd_collection_search(&flags),
        "serve" => cmd_serve(&flags),
        "events" => cmd_events(&flags),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// Every subcommand `run` accepts, in usage order.
pub const COMMANDS: &[&str] = &[
    "generate",
    "ground-truth",
    "build",
    "search",
    "info",
    "graph-build",
    "graph-search",
    "ingest",
    "delete",
    "compact",
    "verify",
    "collection-search",
    "serve",
    "events",
    "help",
];

/// The usage banner (public so tooling and tests can assert on it).
pub fn usage() -> String {
    String::from(
        "usage: rabitq <command> [--flag value]...\n\
         \n\
         one-shot index workflows:\n\
         \x20 generate           synthesize an .fvecs dataset + queries\n\
         \x20 ground-truth       exact top-k for a query file\n\
         \x20 build              build an IVF-RaBitQ index from .fvecs\n\
         \x20 search             query an IVF-RaBitQ index file\n\
         \x20 info               print an index file's parameters\n\
         \x20 graph-build        build a Graph-RaBitQ (HNSW) index\n\
         \x20 graph-search       query a Graph-RaBitQ index file\n\
         \n\
         live collection workflows (rabitq-store):\n\
         \x20 ingest             append .fvecs vectors to a collection dir\n\
         \x20 delete             tombstone ids in a collection\n\
         \x20 compact            force-merge all segments, reclaim tombstones\n\
         \x20 verify             read-only scrub: checksum every segment,\n\
         \x20                    scan the WAL, list quarantined/orphan files\n\
         \x20 collection-search  query a collection (memtable + segments);\n\
         \x20                    --threads N / --batch for parallel reads\n\
         \x20 serve              HTTP front end over a collection (JSON API,\n\
         \x20                    batched searches, admission control);\n\
         \x20                    --slow-query-ms N journals searches >= N ms\n\
         \x20                    (default 0 = off), --events-capacity bounds\n\
         \x20                    the event journal (default 256),\n\
         \x20                    --timeout-ms N default search deadline\n\
         \x20                    (default 0 = none), --max-timeout-ms N caps\n\
         \x20                    client timeouts (default 60000, 0 = no cap)\n\
         \x20 events             dump a collection's event journal (seals,\n\
         \x20                    compactions, quarantines, slow queries)\n\
         \n\
         \x20 help               this text\n\
         see crate docs for per-command flags",
    )
}

/// Flags that are switches: present or absent, no value token.
const BOOLEAN_FLAGS: &[&str] = &["hadamard", "seal", "batch"];

/// Parsed `--key value` flags.
struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    fn parse(tokens: &[String]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut iter = tokens.iter();
        while let Some(tok) = iter.next() {
            let key = tok
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {tok:?}"))?;
            if BOOLEAN_FLAGS.contains(&key) {
                values.insert(key.to_string(), "true".to_string());
                continue;
            }
            let val = iter
                .next()
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            values.insert(key.to_string(), val.clone());
        }
        Ok(Self { values })
    }

    fn path(&self, key: &str) -> Result<PathBuf, String> {
        self.values
            .get(key)
            .map(PathBuf::from)
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    fn str_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.values.get(key).map(String::as_str).unwrap_or(default)
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be an integer, got {v:?}")),
        }
    }

    fn f32_or(&self, key: &str, default: f32) -> Result<f32, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be a number, got {v:?}")),
        }
    }

    fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} must be an integer, got {v:?}")),
        }
    }

    fn flag_present(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }
}

fn io_err(context: &str, e: impl std::fmt::Display) -> String {
    format!("{context}: {e}")
}

fn cmd_generate(flags: &Flags) -> Result<(), String> {
    let name = flags.str_or("dataset", "sift");
    let dataset = PaperDataset::parse(name).ok_or_else(|| format!("unknown dataset {name:?}"))?;
    let n = flags.usize_or("n", 10_000)?;
    let queries = flags.usize_or("queries", 100)?;
    let seed = flags.u64_or("seed", 42)?;
    let out_data = flags.path("out-data")?;
    let out_queries = flags.path("out-queries")?;
    let ds = dataset.generate(n, queries, seed);
    io::write_fvecs(&out_data, &ds.data, ds.dim).map_err(|e| io_err("writing data", e))?;
    io::write_fvecs(&out_queries, &ds.queries, ds.dim).map_err(|e| io_err("writing queries", e))?;
    println!(
        "wrote {} base vectors -> {} and {} queries -> {} (D = {})",
        n,
        out_data.display(),
        queries,
        out_queries.display(),
        ds.dim
    );
    Ok(())
}

fn cmd_ground_truth(flags: &Flags) -> Result<(), String> {
    let (data, dim) = read_fvecs_checked(&flags.path("data")?)?;
    let (queries, qdim) = read_fvecs_checked(&flags.path("queries")?)?;
    if dim != qdim {
        return Err(format!("data D = {dim} but queries D = {qdim}"));
    }
    let k = flags.usize_or("k", 100)?;
    let out = flags.path("out")?;
    let gt = rabitq_data::exact_knn(&data, dim, &queries, k, 1);
    let flat: Vec<i32> = gt
        .iter()
        .flat_map(|nbrs| nbrs.iter().map(|&(id, _)| id as i32))
        .collect();
    io::write_ivecs(&out, &flat, k).map_err(|e| io_err("writing ground truth", e))?;
    println!(
        "wrote exact top-{k} for {} queries -> {}",
        gt.len(),
        out.display()
    );
    Ok(())
}

fn cmd_build(flags: &Flags) -> Result<(), String> {
    let (data, dim) = read_fvecs_checked(&flags.path("data")?)?;
    let n = data.len() / dim;
    let clusters = flags.usize_or("clusters", IvfConfig::clusters_for(n))?;
    let out = flags.path("out")?;
    let config = RabitqConfig {
        bq: flags.usize_or("bq", 4)? as u8,
        epsilon0: flags.f32_or("epsilon0", 1.9)?,
        seed: flags.u64_or("seed", 0x5EED_AB17)?,
        rotator: if flags.flag_present("hadamard") {
            RotatorKind::RandomizedHadamard
        } else {
            RotatorKind::DenseOrthogonal
        },
        padded_dim: None,
    };
    let mut sw = Stopwatch::new();
    sw.start();
    let index = IvfRabitq::build(&data, dim, &IvfConfig::new(clusters), config);
    sw.stop();
    index.save(&out).map_err(|e| io_err("saving index", e))?;
    println!(
        "built IVF-RaBitQ over {n} x {dim}D in {:.1}s ({} buckets, {}-bit codes) -> {}",
        sw.elapsed().as_secs_f64(),
        index.n_buckets(),
        index.quantizer().padded_dim(),
        out.display()
    );
    Ok(())
}

fn cmd_search(flags: &Flags) -> Result<(), String> {
    let index = IvfRabitq::load(&flags.path("index")?).map_err(|e| io_err("loading index", e))?;
    let (queries, qdim) = read_fvecs_checked(&flags.path("queries")?)?;
    if qdim != index.dim() {
        return Err(format!("index D = {} but queries D = {qdim}", index.dim()));
    }
    let k = flags.usize_or("k", 100)?;
    let nprobe = flags.usize_or("nprobe", 64)?;
    let seed = flags.u64_or("seed", 1)?;
    let nq = queries.len() / qdim;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = Stopwatch::new();
    let mut all_ids: Vec<i32> = Vec::with_capacity(nq * k);
    let mut per_query_ids: Vec<Vec<u32>> = Vec::with_capacity(nq);
    for q in queries.chunks_exact(qdim) {
        sw.start();
        let res = index.search(q, k, nprobe, &mut rng);
        sw.stop();
        let mut ids: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        ids.resize(k, u32::MAX); // pad short answers deterministically
        all_ids.extend(ids.iter().map(|&id| id as i32));
        per_query_ids.push(ids);
    }
    println!(
        "searched {nq} queries: k = {k}, nprobe = {nprobe}, {:.0} QPS",
        sw.per_second(nq as u64)
    );

    if let Ok(gt_path) = flags.path("gt") {
        let (gt_flat, gt_k) = io::read_ivecs(&gt_path).map_err(|e| io_err("reading gt", e))?;
        let mut recall = 0.0;
        for (qi, ids) in per_query_ids.iter().enumerate() {
            let want: Vec<u32> = gt_flat[qi * gt_k..qi * gt_k + gt_k.min(k)]
                .iter()
                .map(|&v| v as u32)
                .collect();
            recall += recall_at_k(&want, ids);
        }
        println!("recall@{k}: {:.4}", recall / nq as f64);
    }

    if let Ok(out) = flags.path("out") {
        io::write_ivecs(&out, &all_ids, k).map_err(|e| io_err("writing results", e))?;
        println!("wrote neighbor ids -> {}", out.display());
    }
    Ok(())
}

fn cmd_info(flags: &Flags) -> Result<(), String> {
    let path = flags.path("index")?;
    let index = IvfRabitq::load(&path).map_err(|e| io_err("loading index", e))?;
    let cfg = index.quantizer().config();
    println!("index file : {}", path.display());
    println!("vectors    : {}", index.len());
    println!("dimension  : {}", index.dim());
    println!("code bits  : {}", index.quantizer().padded_dim());
    println!("buckets    : {}", index.n_buckets());
    println!("B_q        : {}", cfg.bq);
    println!("epsilon0   : {}", cfg.epsilon0);
    println!("rotator    : {:?}", cfg.rotator);
    println!(
        "bit entropy: {:.2}%",
        index.normalized_code_entropy() * 100.0
    );
    Ok(())
}

fn cmd_graph_build(flags: &Flags) -> Result<(), String> {
    let (data, dim) = read_fvecs_checked(&flags.path("data")?)?;
    let n = data.len() / dim;
    let out = flags.path("out")?;
    let config = GraphRabitqConfig {
        hnsw: HnswConfig {
            m: flags.usize_or("m", 16)?,
            ef_construction: flags.usize_or("ef-construction", 500)?,
            seed: flags.u64_or("seed", 0x4452)?,
        },
        rabitq: RabitqConfig {
            bq: flags.usize_or("bq", 4)? as u8,
            epsilon0: flags.f32_or("epsilon0", 1.9)?,
            seed: flags.u64_or("seed", 0x5EED_AB17)?,
            rotator: if flags.flag_present("hadamard") {
                RotatorKind::RandomizedHadamard
            } else {
                RotatorKind::DenseOrthogonal
            },
            padded_dim: None,
        },
        rerank: GraphRerank::ErrorBound,
        centroids: flags.usize_or("centroids", 1)?,
    };
    let mut sw = Stopwatch::new();
    sw.start();
    let index = GraphRabitq::build(&data, dim, config);
    sw.stop();
    let file = std::fs::File::create(&out).map_err(|e| io_err("creating index file", e))?;
    let mut w = std::io::BufWriter::new(file);
    index.write(&mut w).map_err(|e| io_err("saving index", e))?;
    let (layers, degree) = index.graph().graph_stats();
    println!(
        "built Graph-RaBitQ over {n} x {dim}D in {:.1}s ({layers} layers, avg degree \
         {degree:.1}, {} centroid(s), {}-bit codes) -> {}",
        sw.elapsed().as_secs_f64(),
        index.n_centroids(),
        index.quantizer().padded_dim(),
        out.display()
    );
    Ok(())
}

fn cmd_graph_search(flags: &Flags) -> Result<(), String> {
    let file = std::fs::File::open(flags.path("index")?).map_err(|e| io_err("opening index", e))?;
    let mut r = std::io::BufReader::new(file);
    let index = GraphRabitq::read(&mut r).map_err(|e| io_err("loading index", e))?;
    let (queries, qdim) = read_fvecs_checked(&flags.path("queries")?)?;
    if qdim != index.dim() {
        return Err(format!("index D = {} but queries D = {qdim}", index.dim()));
    }
    let k = flags.usize_or("k", 100)?;
    let ef = flags.usize_or("ef-search", 4 * k)?;
    let seed = flags.u64_or("seed", 1)?;
    let nq = queries.len() / qdim;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut sw = Stopwatch::new();
    let mut all_ids: Vec<i32> = Vec::with_capacity(nq * k);
    let mut per_query_ids: Vec<Vec<u32>> = Vec::with_capacity(nq);
    let (mut est, mut rer) = (0usize, 0usize);
    for q in queries.chunks_exact(qdim) {
        sw.start();
        let res = index.search(q, k, ef, &mut rng);
        sw.stop();
        est += res.n_estimated;
        rer += res.n_reranked;
        let mut ids: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        ids.resize(k, u32::MAX);
        all_ids.extend(ids.iter().map(|&id| id as i32));
        per_query_ids.push(ids);
    }
    println!(
        "searched {nq} queries: k = {k}, efSearch = {ef}, {:.0} QPS, \
         {:.0} estimated / {:.0} re-ranked per query",
        sw.per_second(nq as u64),
        est as f64 / nq as f64,
        rer as f64 / nq as f64
    );

    if let Ok(gt_path) = flags.path("gt") {
        let (gt_flat, gt_k) = io::read_ivecs(&gt_path).map_err(|e| io_err("reading gt", e))?;
        let mut recall = 0.0;
        for (qi, ids) in per_query_ids.iter().enumerate() {
            let want: Vec<u32> = gt_flat[qi * gt_k..qi * gt_k + gt_k.min(k)]
                .iter()
                .map(|&v| v as u32)
                .collect();
            recall += recall_at_k(&want, ids);
        }
        println!("recall@{k}: {:.4}", recall / nq as f64);
    }

    if let Ok(out) = flags.path("out") {
        io::write_ivecs(&out, &all_ids, k).map_err(|e| io_err("writing results", e))?;
        println!("wrote neighbor ids -> {}", out.display());
    }
    Ok(())
}

fn cmd_ingest(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let (data, dim) = read_fvecs_checked(&flags.path("data")?)?;
    let mut config = CollectionConfig::new(dim);
    config.memtable_capacity = flags.usize_or("memtable", 4096)?;
    config.rabitq.bq = flags.usize_or("bq", 4)? as u8;
    config.rabitq.epsilon0 = flags.f32_or("epsilon0", 1.9)?;
    config.rabitq.seed = flags.u64_or("seed", 0x5EED_AB17)?;
    let mut collection =
        Collection::open(&dir, config).map_err(|e| io_err("opening collection", e))?;
    let n = data.len() / dim;
    let mut sw = Stopwatch::new();
    sw.start();
    let mut first = u32::MAX;
    let mut last = 0u32;
    for row in data.chunks_exact(dim) {
        let id = collection
            .insert(row)
            .map_err(|e| io_err("inserting vector", e))?;
        first = first.min(id);
        last = last.max(id);
    }
    if flags.flag_present("seal") {
        collection
            .seal()
            .map_err(|e| io_err("sealing memtable", e))?;
    }
    sw.stop();
    println!(
        "ingested {n} x {dim}D vectors (ids {first}..={last}) in {:.1}s -> {} \
         ({} live, {} segments, {} in memtable)",
        sw.elapsed().as_secs_f64(),
        dir.display(),
        collection.len(),
        collection.n_segments(),
        collection.memtable_len()
    );
    Ok(())
}

fn cmd_delete(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let spec = flags
        .values
        .get("ids")
        .ok_or("missing required flag --ids (comma-separated)")?;
    let ids = parse_id_list(spec)?;
    let mut collection =
        Collection::open_existing(&dir).map_err(|e| io_err("opening collection", e))?;
    let mut removed = 0usize;
    for id in &ids {
        if collection
            .delete(*id)
            .map_err(|e| io_err("deleting vector", e))?
        {
            removed += 1;
        }
    }
    println!(
        "tombstoned {removed} of {} ids ({} live remain)",
        ids.len(),
        collection.len()
    );
    Ok(())
}

fn cmd_compact(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let mut collection =
        Collection::open_existing(&dir).map_err(|e| io_err("opening collection", e))?;
    let before = collection.n_segments();
    let mut sw = Stopwatch::new();
    sw.start();
    collection
        .seal()
        .map_err(|e| io_err("sealing memtable", e))?;
    let merged = collection.compact().map_err(|e| io_err("compacting", e))?;
    sw.stop();
    if merged || collection.n_segments() != before {
        println!(
            "compacted {before} segments -> {} in {:.1}s ({} live vectors)",
            collection.n_segments(),
            sw.elapsed().as_secs_f64(),
            collection.len()
        );
    } else {
        println!("nothing to compact ({before} segments, no tombstones)");
    }
    Ok(())
}

fn cmd_verify(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let manifest =
        Manifest::load(&dir.join(MANIFEST_FILE)).map_err(|e| io_err("loading manifest", e))?;
    println!(
        "verifying {} : D = {}, {} segment(s), wal floor {}",
        dir.display(),
        manifest.dim,
        manifest.segments.len(),
        manifest.wal_floor
    );

    // Checksum-verify every segment the manifest references, without
    // opening the collection (a corrupt one would get quarantined by
    // `open`; a scrub must only observe).
    let mut problems: Vec<String> = Vec::new();
    for meta in &manifest.segments {
        match Segment::load(&dir.join(&meta.file)) {
            Ok(seg) => println!(
                "  segment {:<24} ok       {} rows, {} live",
                meta.file,
                seg.len(),
                seg.n_live()
            ),
            Err(e) => {
                println!("  segment {:<24} CORRUPT  {e}", meta.file);
                problems.push(format!("segment {} is unreadable: {e}", meta.file));
            }
        }
    }

    match Wal::scan(&dir.join(WAL_FILE), manifest.dim, &DiskIo) {
        Ok(replay) if replay.recovered_torn_tail => {
            println!(
                "  wal     {:<24} TORN     {} intact record(s), trailing garbage \
                 (the next open truncates it)",
                WAL_FILE,
                replay.records.len()
            );
            problems.push("wal has a torn tail".to_string());
        }
        Ok(replay) => println!(
            "  wal     {:<24} ok       {} record(s)",
            WAL_FILE,
            replay.records.len()
        ),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            println!("  wal     {WAL_FILE:<24} absent");
        }
        Err(e) => {
            println!("  wal     {WAL_FILE:<24} CORRUPT  {e}");
            problems.push(format!("wal is unreadable: {e}"));
        }
    }

    // Files the manifest does not account for: quarantined segments from
    // an earlier degraded open, or orphans a crash left behind.
    let referenced: std::collections::HashSet<&str> =
        manifest.segments.iter().map(|m| m.file.as_str()).collect();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .map_err(|e| io_err("listing collection dir", e))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().to_str().map(String::from))
        .collect();
    names.sort();
    for name in &names {
        if name == MANIFEST_FILE || name == WAL_FILE || referenced.contains(name.as_str()) {
            continue;
        }
        if name.ends_with(QUARANTINE_SUFFIX) {
            println!("  extra   {name:<24} quarantined (kept for forensics)");
        } else if name.ends_with(".tmp") || (name.starts_with("seg-") && name.ends_with(".rbq")) {
            println!("  extra   {name:<24} orphan (the next open removes it)");
        }
    }

    if problems.is_empty() {
        println!("verify: clean");
        Ok(())
    } else {
        Err(format!(
            "verify found {} problem(s): {}",
            problems.len(),
            problems.join("; ")
        ))
    }
}

fn cmd_collection_search(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let collection =
        Collection::open_existing(&dir).map_err(|e| io_err("opening collection", e))?;
    let (queries, qdim) = read_fvecs_checked(&flags.path("queries")?)?;
    if qdim != collection.dim() {
        return Err(format!(
            "collection D = {} but queries D = {qdim}",
            collection.dim()
        ));
    }
    let k = flags.usize_or("k", 100)?;
    let nprobe = flags.usize_or("nprobe", 64)?;
    let seed = flags.u64_or("seed", 1)?;
    let threads = flags.usize_or("threads", 1)?;
    let batch = flags.flag_present("batch");
    let nq = queries.len() / qdim;

    let opts = ParallelOptions { threads, seed };
    let mut sw = Stopwatch::new();
    let mut all_ids: Vec<i32> = Vec::with_capacity(nq * k);
    let mut per_query_ids: Vec<Vec<u32>> = Vec::with_capacity(nq);
    // One place turns a result into the padded id row, so the three
    // execution modes can never diverge in output format.
    let mut record = |res: rabitq_ivf::SearchResult| {
        let mut ids: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        ids.resize(k, u32::MAX);
        all_ids.extend(ids.iter().map(|&id| id as i32));
        per_query_ids.push(ids);
    };
    let mode;
    if batch {
        // Batch engine: one search_many call over the whole query file,
        // queries distributed across the worker pool.
        mode = format!("batch x{threads}");
        sw.start();
        let results = collection.search_many(&queries, k, nprobe, opts);
        sw.stop();
        results.into_iter().for_each(&mut record);
    } else if threads > 1 {
        // Per-query latency mode: segments scanned in parallel.
        mode = format!("segment-parallel x{threads}");
        let snapshot = collection.snapshot();
        for q in queries.chunks_exact(qdim) {
            sw.start();
            let res = snapshot.search_parallel(q, k, nprobe, opts);
            sw.stop();
            record(res);
        }
    } else {
        mode = "serial".to_string();
        let mut rng = StdRng::seed_from_u64(seed);
        for q in queries.chunks_exact(qdim) {
            sw.start();
            let res = collection.search(q, k, nprobe, &mut rng);
            sw.stop();
            record(res);
        }
    }
    println!(
        "searched {nq} queries over {} segments + memtable ({} live): \
         k = {k}, nprobe = {nprobe}, {mode}, {:.0} QPS",
        collection.n_segments(),
        collection.len(),
        sw.per_second(nq as u64)
    );

    if let Ok(gt_path) = flags.path("gt") {
        let (gt_flat, gt_k) = io::read_ivecs(&gt_path).map_err(|e| io_err("reading gt", e))?;
        let mut recall = 0.0;
        for (qi, ids) in per_query_ids.iter().enumerate() {
            let want: Vec<u32> = gt_flat[qi * gt_k..qi * gt_k + gt_k.min(k)]
                .iter()
                .map(|&v| v as u32)
                .collect();
            recall += recall_at_k(&want, ids);
        }
        println!("recall@{k}: {:.4}", recall / nq as f64);
    }

    if let Ok(out) = flags.path("out") {
        io::write_ivecs(&out, &all_ids, k).map_err(|e| io_err("writing results", e))?;
        println!("wrote neighbor ids -> {}", out.display());
    }
    Ok(())
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let collection =
        Collection::open_existing(&dir).map_err(|e| io_err("opening collection", e))?;
    let name = flags.str_or("name", "default").to_string();
    let mut config = rabitq_serve::ServeConfig {
        addr: flags.str_or("addr", "127.0.0.1:7878").to_string(),
        workers: flags.usize_or("workers", 8)?,
        default_k: flags.usize_or("k", 10)?,
        default_nprobe: flags.usize_or("nprobe", 32)?,
        max_k: flags.usize_or("max-k", 4096)?,
        max_nprobe: flags.usize_or("max-nprobe", 65536)?,
        ..rabitq_serve::ServeConfig::default()
    };
    config.batch.max_batch = flags.usize_or("max-batch", 64)?;
    config.batch.linger = std::time::Duration::from_micros(flags.u64_or("linger-us", 100)?);
    config.batch.queue_depth = flags.usize_or("queue-depth", 256)?;
    config.slow_query_ms = flags.u64_or("slow-query-ms", config.slow_query_ms)?;
    config.events_capacity = flags.usize_or("events-capacity", config.events_capacity)?;
    config.default_timeout_ms = flags.u64_or("timeout-ms", config.default_timeout_ms)?;
    config.max_timeout_ms = flags.u64_or("max-timeout-ms", config.max_timeout_ms)?;
    let duration_ms = flags.u64_or("duration-ms", 0)?;

    let (live, segments) = (collection.len(), collection.n_segments());
    let server = rabitq_serve::Server::start(config, vec![(name.clone(), collection)])
        .map_err(|e| io_err("starting server", e))?;
    println!(
        "serving collection {name:?} ({live} live vectors, {segments} segments) \
         on http://{}",
        server.addr()
    );
    if duration_ms == 0 {
        // Run until the process is killed; the collection's WAL makes
        // an abrupt exit safe.
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    server.shutdown();
    println!("shut down after {duration_ms} ms");
    Ok(())
}

fn cmd_events(flags: &Flags) -> Result<(), String> {
    let dir = flags.path("dir")?;
    let collection =
        Collection::open_existing(&dir).map_err(|e| io_err("opening collection", e))?;
    let journal = &collection.metrics().journal;
    let events = journal.recent();
    println!(
        "{}: {} event(s) retained ({} recorded, {} evicted)",
        dir.display(),
        events.len(),
        journal.total_recorded(),
        journal.dropped()
    );
    for e in &events {
        println!(
            "  #{:<5} ts_ms={:<14} {:<12} {}",
            e.seq, e.ts_ms, e.kind, e.detail
        );
    }
    Ok(())
}

/// Parses a comma-separated id list, with `a..b` ranges (`b` exclusive).
fn parse_id_list(spec: &str) -> Result<Vec<u32>, String> {
    let mut ids = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        match part.split_once("..") {
            Some((a, b)) => {
                let a: u32 = a.trim().parse().map_err(|_| format!("bad id {part:?}"))?;
                let b: u32 = b.trim().parse().map_err(|_| format!("bad id {part:?}"))?;
                ids.extend(a..b);
            }
            None => ids.push(
                part.trim()
                    .parse()
                    .map_err(|_| format!("bad id {part:?}"))?,
            ),
        }
    }
    Ok(ids)
}

fn read_fvecs_checked(path: &Path) -> Result<(Vec<f32>, usize), String> {
    let (data, dim) = io::read_fvecs(path).map_err(|e| io_err("reading fvecs", e))?;
    if dim == 0 || data.is_empty() {
        return Err(format!("{} holds no vectors", path.display()));
    }
    Ok((data, dim))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rabitq-cli-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|t| t.to_string()).collect()
    }

    #[test]
    fn full_pipeline_generate_build_search() {
        let dir = tmp_dir("pipeline");
        let data = dir.join("base.fvecs");
        let queries = dir.join("q.fvecs");
        let gt = dir.join("gt.ivecs");
        let index = dir.join("index.rbq");
        let results = dir.join("res.ivecs");

        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "800",
            "--queries",
            "5",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ground-truth",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "10",
            "--out",
            gt.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--clusters",
            "8",
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "search",
            "--index",
            index.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "10",
            "--nprobe",
            "8",
            "--gt",
            gt.to_str().unwrap(),
            "--out",
            results.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&["info", "--index", index.to_str().unwrap()])).unwrap();

        // The results file holds 5 queries × 10 ids.
        let (ids, k) = io::read_ivecs(&results).unwrap();
        assert_eq!(k, 10);
        assert_eq!(ids.len(), 50);
        // High-recall regime (everything probed): answers should mostly
        // match the exact ground truth.
        let (gt_ids, gk) = io::read_ivecs(&gt).unwrap();
        assert_eq!(gk, 10);
        let matches = ids
            .chunks_exact(10)
            .zip(gt_ids.chunks_exact(10))
            .map(|(a, b)| a.iter().filter(|x| b.contains(x)).count())
            .sum::<usize>();
        assert!(matches >= 45, "only {matches}/50 ids matched ground truth");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_pipeline_build_and_search() {
        let dir = tmp_dir("graph-pipeline");
        let data = dir.join("base.fvecs");
        let queries = dir.join("q.fvecs");
        let gt = dir.join("gt.ivecs");
        let index = dir.join("index.gph");
        let results = dir.join("res.ivecs");

        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "600",
            "--queries",
            "5",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ground-truth",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "5",
            "--out",
            gt.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "graph-build",
            "--data",
            data.to_str().unwrap(),
            "--centroids",
            "4",
            "--ef-construction",
            "100",
            "--out",
            index.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "graph-search",
            "--index",
            index.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "5",
            "--ef-search",
            "100",
            "--gt",
            gt.to_str().unwrap(),
            "--out",
            results.to_str().unwrap(),
        ]))
        .unwrap();

        let (ids, k) = io::read_ivecs(&results).unwrap();
        assert_eq!(k, 5);
        assert_eq!(ids.len(), 25);
        let (gt_ids, _) = io::read_ivecs(&gt).unwrap();
        let matches = ids
            .chunks_exact(5)
            .zip(gt_ids.chunks_exact(5))
            .map(|(a, b)| a.iter().filter(|x| b.contains(x)).count())
            .sum::<usize>();
        assert!(matches >= 20, "only {matches}/25 ids matched ground truth");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn graph_search_rejects_wrong_index_format() {
        let dir = tmp_dir("graph-wrong-format");
        let data = dir.join("base.fvecs");
        let ivf_index = dir.join("index.rbq");
        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "300",
            "--queries",
            "2",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            dir.join("q.fvecs").to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "build",
            "--data",
            data.to_str().unwrap(),
            "--clusters",
            "4",
            "--out",
            ivf_index.to_str().unwrap(),
        ]))
        .unwrap();
        // Loading an IVF index as a graph index must fail with a clear
        // error, not a panic or garbage results.
        let err = run(&args(&[
            "graph-search",
            "--index",
            ivf_index.to_str().unwrap(),
            "--queries",
            dir.join("q.fvecs").to_str().unwrap(),
            "--k",
            "3",
        ]))
        .unwrap_err();
        assert!(err.contains("loading index"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collection_pipeline_ingest_delete_compact_search() {
        let dir = tmp_dir("collection-pipeline");
        let data = dir.join("base.fvecs");
        let queries = dir.join("q.fvecs");
        let gt = dir.join("gt.ivecs");
        let coll = dir.join("coll");
        let results = dir.join("res.ivecs");

        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "600",
            "--queries",
            "5",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ground-truth",
            "--data",
            data.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "10",
            "--out",
            gt.to_str().unwrap(),
        ]))
        .unwrap();
        // Tiny memtable so several segments seal during ingest; bare
        // `--seal` (a boolean switch, no value token) flushes the rest.
        run(&args(&[
            "ingest",
            "--dir",
            coll.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--memtable",
            "150",
            "--seal",
        ]))
        .unwrap();
        run(&args(&[
            "delete",
            "--dir",
            coll.to_str().unwrap(),
            "--ids",
            "990..1000,5",
        ]))
        .unwrap();
        run(&args(&["compact", "--dir", coll.to_str().unwrap()])).unwrap();
        run(&args(&[
            "collection-search",
            "--dir",
            coll.to_str().unwrap(),
            "--queries",
            queries.to_str().unwrap(),
            "--k",
            "10",
            "--nprobe",
            "64",
            "--gt",
            gt.to_str().unwrap(),
            "--out",
            results.to_str().unwrap(),
        ]))
        .unwrap();

        let (ids, k) = io::read_ivecs(&results).unwrap();
        assert_eq!(k, 10);
        assert_eq!(ids.len(), 50);
        // id 5 was tombstoned; it must never appear in any answer.
        assert!(ids.iter().all(|&id| id != 5));
        // High-recall regime: answers should mostly match ground truth
        // (modulo the one deleted id, which gt may still contain).
        let (gt_ids, _) = io::read_ivecs(&gt).unwrap();
        let matches = ids
            .chunks_exact(10)
            .zip(gt_ids.chunks_exact(10))
            .map(|(a, b)| a.iter().filter(|x| b.contains(x)).count())
            .sum::<usize>();
        assert!(matches >= 44, "only {matches}/50 ids matched ground truth");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn collection_batch_search_is_thread_count_invariant() {
        let dir = tmp_dir("collection-batch");
        let data = dir.join("base.fvecs");
        let queries = dir.join("q.fvecs");
        let coll = dir.join("coll");

        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "500",
            "--queries",
            "8",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            queries.to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ingest",
            "--dir",
            coll.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--memtable",
            "125",
            "--seal",
        ]))
        .unwrap();

        // Same seed, different worker counts: the batch engine must emit
        // bit-identical neighbor files.
        let mut outputs = Vec::new();
        for threads in ["1", "4"] {
            let out = dir.join(format!("res-{threads}.ivecs"));
            run(&args(&[
                "collection-search",
                "--dir",
                coll.to_str().unwrap(),
                "--queries",
                queries.to_str().unwrap(),
                "--k",
                "10",
                "--nprobe",
                "32",
                "--batch",
                "--threads",
                threads,
                "--out",
                out.to_str().unwrap(),
            ]))
            .unwrap();
            outputs.push(io::read_ivecs(&out).unwrap());
        }
        assert_eq!(outputs[0], outputs[1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_runs_for_duration_and_exits() {
        let dir = tmp_dir("serve-smoke");
        let data = dir.join("base.fvecs");
        let coll = dir.join("coll");
        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "300",
            "--queries",
            "2",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            dir.join("q.fvecs").to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ingest",
            "--dir",
            coll.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--memtable",
            "100",
            "--seal",
        ]))
        .unwrap();
        // Ephemeral port, bounded run: starts, serves, shuts down clean.
        // The observability flags parse and are accepted.
        run(&args(&[
            "serve",
            "--dir",
            coll.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--slow-query-ms",
            "25",
            "--events-capacity",
            "64",
            "--timeout-ms",
            "250",
            "--max-timeout-ms",
            "30000",
            "--duration-ms",
            "50",
        ]))
        .unwrap();
        // A non-numeric deadline flag is a clean parse error too.
        let err = run(&args(&[
            "serve",
            "--dir",
            coll.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--timeout-ms",
            "soon",
            "--duration-ms",
            "10",
        ]))
        .unwrap_err();
        assert!(err.contains("timeout-ms"), "{err}");
        // A non-numeric observability flag is a clean parse error.
        let err = run(&args(&[
            "serve",
            "--dir",
            coll.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--slow-query-ms",
            "fast",
            "--duration-ms",
            "10",
        ]))
        .unwrap_err();
        assert!(err.contains("slow-query-ms"), "{err}");
        // A missing collection is a clean error.
        assert!(run(&args(&[
            "serve",
            "--dir",
            dir.join("nonexistent").to_str().unwrap()
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn events_dumps_the_journal_of_an_existing_collection() {
        let dir = tmp_dir("events");
        let data = dir.join("base.fvecs");
        let coll = dir.join("coll");
        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "300",
            "--queries",
            "2",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            dir.join("q.fvecs").to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ingest",
            "--dir",
            coll.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--memtable",
            "100",
            "--seal",
        ]))
        .unwrap();
        // A fresh open journals at least the "open" record, so the dump
        // succeeds and has something to show.
        run(&args(&["events", "--dir", coll.to_str().unwrap()])).unwrap();
        // And the journal itself is queryable through the same surface
        // the command prints.
        let collection = Collection::open_existing(&coll).unwrap();
        let events = collection.metrics().journal.recent();
        assert!(events.iter().any(|e| e.kind == "open"), "{events:?}");
        drop(collection);
        // A missing collection is a clean error, not a panic.
        assert!(run(&args(&[
            "events",
            "--dir",
            dir.join("nonexistent").to_str().unwrap()
        ]))
        .is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_scrub_is_clean_then_flags_torn_wal_and_corrupt_segment() {
        let dir = tmp_dir("verify");
        let data = dir.join("base.fvecs");
        let coll = dir.join("coll");
        run(&args(&[
            "generate",
            "--dataset",
            "sift",
            "--n",
            "300",
            "--queries",
            "2",
            "--out-data",
            data.to_str().unwrap(),
            "--out-queries",
            dir.join("q.fvecs").to_str().unwrap(),
        ]))
        .unwrap();
        run(&args(&[
            "ingest",
            "--dir",
            coll.to_str().unwrap(),
            "--data",
            data.to_str().unwrap(),
            "--memtable",
            "100",
            "--seal",
        ]))
        .unwrap();

        // A healthy collection scrubs clean.
        run(&args(&["verify", "--dir", coll.to_str().unwrap()])).unwrap();

        // Garbage appended to the WAL is a torn tail — verify reports it
        // without repairing, so a second scrub still sees it.
        let wal = coll.join("wal.log");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes.extend_from_slice(&[0xFF; 5]);
        std::fs::write(&wal, &bytes).unwrap();
        for _ in 0..2 {
            let err = run(&args(&["verify", "--dir", coll.to_str().unwrap()])).unwrap_err();
            assert!(err.contains("torn tail"), "{err}");
        }
        std::fs::write(&wal, &bytes[..bytes.len() - 5]).unwrap();

        // A flipped byte inside a sealed segment fails the checksum and
        // the error names the file.
        let victim = std::fs::read_dir(&coll)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".rbq"))
            })
            .expect("a sealed segment exists");
        let mut bytes = std::fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();
        let err = run(&args(&["verify", "--dir", coll.to_str().unwrap()])).unwrap_err();
        let name = victim.file_name().unwrap().to_str().unwrap();
        assert!(err.contains(name), "{err}");

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn usage_mentions_every_command() {
        // `run(&["help"])` prints the same banner `usage()` returns; the
        // unknown-command error embeds it too, so a stale listing fails
        // loudly here.
        run(&args(&["help"])).unwrap();
        let banner = usage();
        let err = run(&args(&["frobnicate"])).unwrap_err();
        for command in COMMANDS {
            assert!(banner.contains(command), "usage() omits {command:?}");
            assert!(err.contains(command), "error text omits {command:?}");
        }
    }

    #[test]
    fn id_list_parsing() {
        assert_eq!(parse_id_list("1,2,3").unwrap(), vec![1, 2, 3]);
        assert_eq!(parse_id_list("5..8,1").unwrap(), vec![5, 6, 7, 1]);
        assert!(parse_id_list("x").is_err());
        assert!(parse_id_list("3..x").is_err());
        assert!(parse_id_list("").unwrap().is_empty());
    }

    #[test]
    fn missing_flags_and_unknown_commands_error_cleanly() {
        assert!(run(&args(&["build"])).is_err());
        assert!(run(&args(&["frobnicate"]))
            .unwrap_err()
            .contains("unknown command"));
        assert!(run(&args(&[
            "generate",
            "--dataset",
            "nope",
            "--out-data",
            "x",
            "--out-queries",
            "y"
        ]))
        .is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let dir = tmp_dir("dims");
        let a = dir.join("a.fvecs");
        let b = dir.join("b.fvecs");
        io::write_fvecs(&a, &[0.0f32; 40], 8).unwrap();
        io::write_fvecs(&b, &[0.0f32; 40], 10).unwrap();
        let err = run(&args(&[
            "ground-truth",
            "--data",
            a.to_str().unwrap(),
            "--queries",
            b.to_str().unwrap(),
            "--k",
            "3",
            "--out",
            dir.join("gt.ivecs").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("D = 8"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
