//! # rabitq-pq — PQ and OPQ baselines
//!
//! From-scratch implementations of the quantization baselines the RaBitQ
//! paper compares against (Section 5.1):
//!
//! * [`pq`] — Product Quantization with `k = 8` (`x8-single`: f32 LUTs in
//!   RAM) and `k = 4` codes;
//! * [`fastscan`] — the `x4fs-batch` SIMD fast scan with u8-quantized LUTs,
//!   sharing kernels with `rabitq-core` and faithfully reproducing the u8
//!   dynamic-range failure mode behind PQ's MSong collapse;
//! * [`opq`] — Optimized PQ: a learned orthogonal rotation fitted by
//!   alternating Procrustes, the strongest stable baseline in the paper.
//!
//! These estimators are **biased** (they treat the quantized vector as the
//! data vector) and provide no error bound — which is precisely the gap
//! RaBitQ closes.

pub mod fastscan;
pub mod opq;
pub mod pq;

pub use fastscan::{PqPacked, QuantizedLuts};
pub use opq::{Opq, OpqConfig};
pub use pq::{PqCodes, PqConfig, ProductQuantizer};
