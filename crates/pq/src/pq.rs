//! Product Quantization (Jégou et al., TPAMI 2011) — the paper's primary
//! baseline.
//!
//! A `D`-dimensional vector is split into `M` sub-segments of `D/M`
//! dimensions; each sub-segment is quantized to the nearest of `2^k`
//! KMeans centroids. Distances are estimated with **asymmetric distance
//! computation** (ADC): per query, `M` look-up tables of squared distances
//! between the query sub-segments and every centroid are precomputed, and a
//! code's distance estimate is the sum of `M` table entries.
//!
//! Defaults follow the paper's setup: `k = 8` for the `x8-single`
//! configuration (f32 LUTs read from RAM) and `k = 4` for the `x4fs-batch`
//! fast-scan configuration (u8-quantized LUTs in SIMD registers, in
//! [`crate::fastscan`]). As the paper stresses, this estimator treats the
//! quantized vector as the data vector: it is biased and carries no error
//! bound.

use rabitq_kmeans::{train as kmeans_train, KMeansConfig};
use rabitq_math::vecs;

/// Configuration for [`ProductQuantizer::train`].
#[derive(Clone, Debug)]
pub struct PqConfig {
    /// Number of sub-segments `M`; must divide the dimensionality.
    pub m: usize,
    /// Bits per sub-quantizer (`k`): 8 → 256 centroids, 4 → 16 centroids.
    pub k_bits: u8,
    /// KMeans iterations per sub-quantizer.
    pub train_iters: usize,
    /// Cap on training points per sub-quantizer (sampled without
    /// replacement), Faiss-style. `None` trains on everything.
    pub training_sample: Option<usize>,
    /// RNG seed for the sub-quantizer KMeans.
    pub seed: u64,
}

impl PqConfig {
    /// The paper's default shape: `M = D/2` segments with `k = 4`
    /// (i.e. 2 bits per dimension) for the fast-scan variant.
    pub fn x4(m: usize) -> Self {
        Self {
            m,
            k_bits: 4,
            train_iters: 25,
            training_sample: Some(100_000),
            seed: 0x5051, // "PQ"
        }
    }

    /// The classical `k = 8` variant.
    pub fn x8(m: usize) -> Self {
        Self {
            k_bits: 8,
            ..Self::x4(m)
        }
    }
}

/// A trained product quantizer.
#[derive(Clone, Debug)]
pub struct ProductQuantizer {
    dim: usize,
    m: usize,
    k_bits: u8,
    dsub: usize,
    /// `m × 2^k × dsub` centroids, flattened.
    codebooks: Vec<f32>,
}

/// Codes for a set of vectors: `n × m` bytes (one centroid id per segment,
/// stored unpacked even for `k = 4`; the fast-scan packer re-packs nibbles).
#[derive(Clone, Debug, Default)]
pub struct PqCodes {
    /// Number of sub-segments per vector.
    pub m: usize,
    /// Flat `n × m` centroid ids.
    pub codes: Vec<u8>,
}

impl PqCodes {
    /// Number of encoded vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len().checked_div(self.m).unwrap_or(0)
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code of vector `i`.
    #[inline]
    pub fn code(&self, i: usize) -> &[u8] {
        &self.codes[i * self.m..(i + 1) * self.m]
    }
}

impl ProductQuantizer {
    /// Trains `M` sub-codebooks with KMeans over `data` (flat `n × dim`).
    ///
    /// # Panics
    /// Panics if `config.m` does not divide `dim`, `k_bits ∉ {4, 8}`, or
    /// `data` is empty.
    pub fn train(data: &[f32], dim: usize, config: &PqConfig) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        assert!(
            config.m > 0 && dim.is_multiple_of(config.m),
            "M = {} must divide D = {dim}",
            config.m
        );
        assert!(
            config.k_bits == 4 || config.k_bits == 8,
            "k must be 4 or 8 (paper setup)"
        );
        let n = data.len() / dim;
        assert!(n > 0, "cannot train on an empty dataset");
        let dsub = dim / config.m;
        let k = 1usize << config.k_bits;

        let mut codebooks = vec![0.0f32; config.m * k * dsub];
        let mut sub_data = vec![0.0f32; n * dsub];
        for seg in 0..config.m {
            // Gather the segment's columns into a contiguous training set.
            for i in 0..n {
                sub_data[i * dsub..(i + 1) * dsub]
                    .copy_from_slice(&data[i * dim + seg * dsub..i * dim + (seg + 1) * dsub]);
            }
            let mut km_cfg = KMeansConfig::new(k);
            km_cfg.max_iters = config.train_iters;
            km_cfg.seed = config.seed.wrapping_add(seg as u64);
            km_cfg.training_sample = config.training_sample;
            let km = kmeans_train(&sub_data, dsub, &km_cfg);
            let dst = &mut codebooks[seg * k * dsub..(seg + 1) * k * dsub];
            // KMeans may clamp k below 2^k_bits on tiny inputs; duplicate
            // the last centroid so unused ids still decode to something.
            for c in 0..k {
                let src = km.centroid(c.min(km.k() - 1));
                dst[c * dsub..(c + 1) * dsub].copy_from_slice(src);
            }
        }
        Self {
            dim,
            m: config.m,
            k_bits: config.k_bits,
            dsub,
            codebooks,
        }
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sub-segments `M`.
    #[inline]
    pub fn m(&self) -> usize {
        self.m
    }

    /// Bits per sub-quantizer.
    #[inline]
    pub fn k_bits(&self) -> u8 {
        self.k_bits
    }

    /// Centroids of sub-quantizer `seg`: `2^k × dsub`, flattened.
    #[inline]
    pub fn codebook(&self, seg: usize) -> &[f32] {
        let k = 1usize << self.k_bits;
        &self.codebooks[seg * k * self.dsub..(seg + 1) * k * self.dsub]
    }

    /// Centroid `c` of sub-quantizer `seg`.
    #[inline]
    pub fn centroid(&self, seg: usize, c: usize) -> &[f32] {
        let book = self.codebook(seg);
        &book[c * self.dsub..(c + 1) * self.dsub]
    }

    /// Encodes one vector: the nearest centroid id per segment.
    pub fn encode(&self, v: &[f32], out: &mut Vec<u8>) {
        assert_eq!(v.len(), self.dim, "vector dimensionality");
        let k = 1usize << self.k_bits;
        for seg in 0..self.m {
            let sub = &v[seg * self.dsub..(seg + 1) * self.dsub];
            let mut best = 0usize;
            let mut best_d = f32::INFINITY;
            for c in 0..k {
                let d = vecs::l2_sq(self.centroid(seg, c), sub);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            out.push(best as u8);
        }
    }

    /// Encodes a batch of vectors.
    pub fn encode_set<'a, I>(&self, vectors: I) -> PqCodes
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut codes = PqCodes {
            m: self.m,
            codes: Vec::new(),
        };
        for v in vectors {
            self.encode(v, &mut codes.codes);
        }
        codes
    }

    /// Reconstructs the quantized vector of a code.
    pub fn decode(&self, code: &[u8], out: &mut [f32]) {
        assert_eq!(code.len(), self.m, "code length");
        assert_eq!(out.len(), self.dim, "output length");
        for (seg, &c) in code.iter().enumerate() {
            out[seg * self.dsub..(seg + 1) * self.dsub]
                .copy_from_slice(self.centroid(seg, c as usize));
        }
    }

    /// Builds the per-query ADC look-up tables: `m × 2^k` squared distances
    /// between query sub-segments and centroids.
    pub fn build_luts(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        let k = 1usize << self.k_bits;
        let mut luts = vec![0.0f32; self.m * k];
        for seg in 0..self.m {
            let sub = &query[seg * self.dsub..(seg + 1) * self.dsub];
            for c in 0..k {
                luts[seg * k + c] = vecs::l2_sq(self.centroid(seg, c), sub);
            }
        }
        luts
    }

    /// ADC distance estimate for one code: `Σ_seg lut[seg][code[seg]]`.
    /// This is the `x8-single` scan — `M` dependent loads from RAM.
    #[inline]
    pub fn adc_distance(&self, luts: &[f32], code: &[u8]) -> f32 {
        let k = 1usize << self.k_bits;
        debug_assert_eq!(code.len(), self.m);
        debug_assert_eq!(luts.len(), self.m * k);
        code.iter()
            .enumerate()
            .map(|(seg, &c)| luts[seg * k + c as usize])
            .sum()
    }

    /// Mean squared reconstruction error over a dataset — the PQ training
    /// objective, used by tests and the OPQ alternating loop.
    pub fn reconstruction_mse(&self, data: &[f32]) -> f64 {
        let n = data.len() / self.dim;
        if n == 0 {
            return 0.0;
        }
        let mut code = Vec::with_capacity(self.m);
        let mut rec = vec![0.0f32; self.dim];
        let mut acc = 0.0f64;
        for i in 0..n {
            let v = &data[i * self.dim..(i + 1) * self.dim];
            code.clear();
            self.encode(v, &mut code);
            self.decode(&code, &mut rec);
            acc += vecs::l2_sq(v, &rec) as f64;
        }
        acc / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_math::rng::standard_normal_vec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        standard_normal_vec(&mut rng, n * dim)
    }

    fn config(m: usize, k_bits: u8) -> PqConfig {
        PqConfig {
            m,
            k_bits,
            train_iters: 15,
            training_sample: None,
            seed: 77,
        }
    }

    #[test]
    fn adc_distance_equals_distance_to_reconstruction() {
        let dim = 16;
        let data = gaussian_data(300, dim, 1);
        let pq = ProductQuantizer::train(&data, dim, &config(4, 4));
        let codes = pq.encode_set(data.chunks_exact(dim));
        let query = &gaussian_data(1, dim, 2)[..];
        let luts = pq.build_luts(query);
        let mut rec = vec![0.0f32; dim];
        for i in 0..codes.len() {
            let adc = pq.adc_distance(&luts, codes.code(i));
            pq.decode(codes.code(i), &mut rec);
            let direct = vecs::l2_sq(query, &rec);
            assert!(
                (adc - direct).abs() < 1e-3 * (1.0 + direct),
                "code {i}: {adc} vs {direct}"
            );
        }
    }

    #[test]
    fn encode_picks_the_nearest_centroid_per_segment() {
        let dim = 8;
        let data = gaussian_data(200, dim, 3);
        let pq = ProductQuantizer::train(&data, dim, &config(2, 4));
        let v = &data[..dim];
        let mut code = Vec::new();
        pq.encode(v, &mut code);
        for seg in 0..2 {
            let sub = &v[seg * 4..(seg + 1) * 4];
            let chosen = vecs::l2_sq(pq.centroid(seg, code[seg] as usize), sub);
            for c in 0..16 {
                assert!(vecs::l2_sq(pq.centroid(seg, c), sub) + 1e-6 >= chosen);
            }
        }
    }

    #[test]
    fn reconstruction_beats_zero_codebook_baseline() {
        let dim = 32;
        let data = gaussian_data(500, dim, 4);
        let pq = ProductQuantizer::train(&data, dim, &config(16, 4));
        let mse = pq.reconstruction_mse(&data);
        // Quantizing to the mean alone would give MSE ≈ dim (unit
        // variance); PQ with 16 segments must do much better.
        assert!(mse < dim as f64 * 0.5, "MSE {mse}");
    }

    #[test]
    fn more_bits_reduce_reconstruction_error() {
        let dim = 16;
        let data = gaussian_data(600, dim, 5);
        let pq4 = ProductQuantizer::train(&data, dim, &config(4, 4));
        let pq8 = ProductQuantizer::train(&data, dim, &config(4, 8));
        assert!(
            pq8.reconstruction_mse(&data) < pq4.reconstruction_mse(&data),
            "k=8 should reconstruct better than k=4"
        );
    }

    #[test]
    fn codes_round_trip_through_storage() {
        let dim = 8;
        let data = gaussian_data(50, dim, 6);
        let pq = ProductQuantizer::train(&data, dim, &config(4, 4));
        let codes = pq.encode_set(data.chunks_exact(dim));
        assert_eq!(codes.len(), 50);
        let mut direct = Vec::new();
        pq.encode(&data[dim * 7..dim * 8], &mut direct);
        assert_eq!(codes.code(7), &direct[..]);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn m_not_dividing_dim_is_rejected() {
        let data = gaussian_data(10, 10, 7);
        ProductQuantizer::train(&data, 10, &config(3, 4));
    }

    #[test]
    fn k4_codes_stay_in_nibble_range() {
        let dim = 8;
        let data = gaussian_data(100, dim, 8);
        let pq = ProductQuantizer::train(&data, dim, &config(4, 4));
        let codes = pq.encode_set(data.chunks_exact(dim));
        assert!(codes.codes.iter().all(|&c| c < 16));
    }
}
