//! Optimized Product Quantization (Ge et al., CVPR 2013) — the paper's
//! strongest stable baseline.
//!
//! OPQ learns an orthogonal rotation `R` jointly with the PQ codebooks by
//! alternating minimization of `‖R·x − decode(encode(R·x))‖²`:
//!
//! 1. fix `R`, train/encode PQ on the rotated data;
//! 2. fix the codes, solve the orthogonal Procrustes problem
//!    `max_R tr(R · Σᵢ xᵢ bᵢᵀ)`, whose solution is the orthogonal polar
//!    factor of `(Σᵢ xᵢ bᵢᵀ)ᵀ` — computed here with the Newton iteration
//!    from `rabitq-math::polar` instead of a full SVD.
//!
//! Queries are rotated once, then everything proceeds exactly as PQ
//! (including the u8 LUT fast scan), so OPQ inherits PQ's bias and its
//! missing error bound.

use crate::pq::{PqCodes, PqConfig, ProductQuantizer};
use rabitq_math::orthogonal::random_orthogonal;
use rabitq_math::polar::orthogonal_polar_factor;
use rabitq_math::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`Opq::train`].
#[derive(Clone, Debug)]
pub struct OpqConfig {
    /// Inner PQ configuration.
    pub pq: PqConfig,
    /// Alternating minimization rounds.
    pub outer_iters: usize,
    /// Cap on vectors used for the Procrustes statistics.
    pub procrustes_sample: usize,
}

impl OpqConfig {
    /// Defaults mirroring the paper's Faiss usage.
    pub fn new(pq: PqConfig) -> Self {
        Self {
            pq,
            outer_iters: 6,
            procrustes_sample: 20_000,
        }
    }
}

/// A trained OPQ quantizer: a rotation plus an inner [`ProductQuantizer`].
#[derive(Clone, Debug)]
pub struct Opq {
    rotation: Matrix,
    pq: ProductQuantizer,
}

impl Opq {
    /// Trains OPQ over `data` (flat `n × dim`).
    pub fn train(data: &[f32], dim: usize, config: &OpqConfig) -> Self {
        assert!(dim > 0 && data.len().is_multiple_of(dim), "data shape");
        let n = data.len() / dim;
        assert!(n > 0, "cannot train on an empty dataset");
        let mut rng = StdRng::seed_from_u64(config.pq.seed ^ 0x0590);
        // Random orthogonal init (identity init gets stuck when the data's
        // principal axes align with segment boundaries).
        let mut rotation = random_orthogonal(&mut rng, dim);

        let sample_n = n.min(config.procrustes_sample);
        let mut rotated = vec![0.0f32; sample_n * dim];
        let mut pq = None;
        for _ in 0..config.outer_iters.max(1) {
            // (1) Rotate the training sample and fit PQ.
            for i in 0..sample_n {
                let (src, dst) = (
                    &data[i * dim..(i + 1) * dim],
                    &mut rotated[i * dim..(i + 1) * dim],
                );
                rotation.matvec(src, dst);
            }
            let trained = ProductQuantizer::train(&rotated, dim, &config.pq);

            // (2) Procrustes: maximize tr(R · Σ x bᵀ) where b is the PQ
            // reconstruction of R·x.
            let mut cross = Matrix::zeros(dim, dim); // Σ x bᵀ
            let mut code = Vec::with_capacity(config.pq.m);
            let mut rec = vec![0.0f32; dim];
            for i in 0..sample_n {
                let x = &data[i * dim..(i + 1) * dim];
                let rx = &rotated[i * dim..(i + 1) * dim];
                code.clear();
                trained.encode(rx, &mut code);
                trained.decode(&code, &mut rec);
                for (r, &xv) in x.iter().enumerate() {
                    if xv != 0.0 {
                        let row = cross.row_mut(r);
                        for (c, &bv) in rec.iter().enumerate() {
                            row[c] += xv * bv;
                        }
                    }
                }
            }
            pq = Some(trained);
            match orthogonal_polar_factor(&cross.transposed(), 50) {
                Some(r_new) => rotation = r_new,
                // Singular cross-covariance (e.g. degenerate data): keep
                // the current rotation and stop alternating.
                None => break,
            }
        }

        // Final codebook fit under the settled rotation.
        for i in 0..sample_n {
            let (src, dst) = (
                &data[i * dim..(i + 1) * dim],
                &mut rotated[i * dim..(i + 1) * dim],
            );
            rotation.matvec(src, dst);
        }
        let pq = match pq {
            Some(_) => ProductQuantizer::train(&rotated, dim, &config.pq),
            None => unreachable!("outer_iters >= 1 always trains once"),
        };
        Self { rotation, pq }
    }

    /// The learned rotation.
    #[inline]
    pub fn rotation(&self) -> &Matrix {
        &self.rotation
    }

    /// The inner product quantizer (operating in rotated space).
    #[inline]
    pub fn pq(&self) -> &ProductQuantizer {
        &self.pq
    }

    /// Rotates a raw vector into codebook space.
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; v.len()];
        self.rotation.matvec(v, &mut out);
        out
    }

    /// Encodes one raw vector.
    pub fn encode(&self, v: &[f32], out: &mut Vec<u8>) {
        let rotated = self.rotate(v);
        self.pq.encode(&rotated, out);
    }

    /// Encodes a batch of raw vectors.
    pub fn encode_set<'a, I>(&self, vectors: I) -> PqCodes
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut codes = PqCodes {
            m: self.pq.m(),
            codes: Vec::new(),
        };
        for v in vectors {
            self.encode(v, &mut codes.codes);
        }
        codes
    }

    /// Builds the per-query f32 ADC tables (rotating the query first).
    pub fn build_luts(&self, query: &[f32]) -> Vec<f32> {
        let rotated = self.rotate(query);
        self.pq.build_luts(&rotated)
    }

    /// Mean squared reconstruction error in rotated space.
    pub fn reconstruction_mse(&self, data: &[f32]) -> f64 {
        let dim = self.pq.dim();
        let n = data.len() / dim;
        let mut rotated = vec![0.0f32; dim];
        let mut acc = 0.0f64;
        let mut code = Vec::with_capacity(self.pq.m());
        let mut rec = vec![0.0f32; dim];
        for i in 0..n {
            self.rotation
                .matvec(&data[i * dim..(i + 1) * dim], &mut rotated);
            code.clear();
            self.pq.encode(&rotated, &mut code);
            self.pq.decode(&code, &mut rec);
            acc += rabitq_math::vecs::l2_sq(&rotated, &rec) as f64;
        }
        if n == 0 {
            0.0
        } else {
            acc / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_math::rng::standard_normal_vec;
    use rabitq_math::vecs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pq_config(m: usize) -> PqConfig {
        PqConfig {
            m,
            k_bits: 4,
            train_iters: 10,
            training_sample: None,
            seed: 11,
        }
    }

    /// Data whose variance concentrates on the first two coordinates.
    /// Axis-aligned PQ wastes one 2-D sub-codebook on the whole signal
    /// while the other segments quantize noise; OPQ's learned rotation
    /// balances the variance across segments (Ge et al.'s motivating
    /// case), so it must win by a clear margin.
    fn variance_skewed_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = standard_normal_vec(&mut rng, n * dim);
        for row in data.chunks_exact_mut(dim) {
            for (j, x) in row.iter_mut().enumerate() {
                *x *= if j < 2 { 5.0 } else { 0.05 };
            }
        }
        data
    }

    #[test]
    fn learned_rotation_is_orthogonal() {
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(1);
        let data = standard_normal_vec(&mut rng, 400 * dim);
        let opq = Opq::train(&data, dim, &OpqConfig::new(pq_config(4)));
        assert!(opq.rotation().orthogonality_defect() < 1e-3);
    }

    #[test]
    fn opq_beats_pq_on_correlated_data() {
        let dim = 16;
        let data = variance_skewed_data(600, dim, 2);
        let pq = ProductQuantizer::train(&data, dim, &pq_config(8));
        let opq = Opq::train(&data, dim, &OpqConfig::new(pq_config(8)));
        let pq_mse = pq.reconstruction_mse(&data);
        let opq_mse = opq.reconstruction_mse(&data);
        assert!(
            opq_mse < pq_mse * 0.9,
            "OPQ MSE {opq_mse} should clearly beat PQ MSE {pq_mse}"
        );
    }

    #[test]
    fn adc_on_rotated_space_estimates_rotated_distance() {
        // Rotation preserves distances, so OPQ's ADC estimates the raw
        // squared distance just like PQ's.
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(3);
        let data = standard_normal_vec(&mut rng, 300 * dim);
        let opq = Opq::train(&data, dim, &OpqConfig::new(pq_config(8)));
        let codes = opq.encode_set(data.chunks_exact(dim));
        let query = standard_normal_vec(&mut rng, dim);
        let luts = opq.build_luts(&query);
        for i in 0..20 {
            let est = opq.pq().adc_distance(&luts, codes.code(i));
            let exact = vecs::l2_sq(&data[i * dim..(i + 1) * dim], &query);
            // ADC error is bounded by quantization MSE-scale terms; just
            // check the estimate is in the right ballpark.
            assert!(
                (est - exact).abs() < 0.8 * exact + 2.0,
                "code {i}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn encode_set_matches_single_encodes() {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(4);
        let data = standard_normal_vec(&mut rng, 100 * dim);
        let opq = Opq::train(&data, dim, &OpqConfig::new(pq_config(4)));
        let codes = opq.encode_set(data.chunks_exact(dim));
        let mut one = Vec::new();
        opq.encode(&data[dim * 3..dim * 4], &mut one);
        assert_eq!(codes.code(3), &one[..]);
    }
}
