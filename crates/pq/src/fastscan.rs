//! PQ fast scan (`PQx4fs`): the SIMD batch kernel of André et al.
//! (VLDB'15 / ICMR'17), reusing the packed-nibble layout and byte-shuffle
//! scan primitives from `rabitq-core`.
//!
//! The distance LUTs hold *floating-point* squared distances, so to fit 16
//! entries in a shuffle register they must be quantized to `u8`:
//!
//! ```text
//! bias  = Σ_seg min_j lut[seg][j]
//! scale = max_seg (max_j lut[seg][j] − min_j lut[seg][j]) / 255
//! lut_q[seg][j] = round((lut[seg][j] − min_j) / scale)  clamped to 255
//! est   = bias + scale · Σ_seg lut_q[seg][code[seg]]
//! ```
//!
//! One global `scale` is shared by all segments (a register holds no
//! per-lane scale). When one segment's distance range dwarfs the others' —
//! the MSong situation, heterogeneous per-dimension variances — the small
//! segments lose all resolution and the estimate degrades disastrously.
//! This is the failure mode Section 5.2.1/5.2.3 of the RaBitQ paper
//! documents; RaBitQ is immune because its LUT entries are small exact
//! integers.

use crate::pq::{PqCodes, ProductQuantizer};
use rabitq_core::fastscan::raw;
use rabitq_core::fastscan::BLOCK;

/// PQ codes re-packed for the fast-scan kernel (requires `k = 4`).
#[derive(Clone, Debug)]
pub struct PqPacked {
    m: usize,
    n: usize,
    blocks: Vec<u8>,
}

impl PqPacked {
    /// Packs 4-bit PQ codes into the transposed 32-code block layout.
    ///
    /// # Panics
    /// Panics if any code value exceeds 15 (i.e. the quantizer was not
    /// trained with `k = 4`).
    pub fn pack(codes: &PqCodes) -> Self {
        assert!(
            codes.codes.iter().all(|&c| c < 16),
            "fast scan requires 4-bit codes"
        );
        let n = codes.len();
        let blocks = raw::pack_nibbles(n, codes.m, |i, s| codes.code(i)[s]);
        Self {
            m: codes.m,
            n,
            blocks,
        }
    }

    /// Number of packed codes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the pack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of 32-code blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        self.n.div_ceil(BLOCK)
    }

    /// Scans all codes against quantized LUTs, producing one estimated
    /// squared distance per code.
    pub fn scan_all(&self, luts: &QuantizedLuts, out: &mut Vec<f32>) {
        assert_eq!(luts.m, self.m, "LUTs built for another quantizer");
        // Single resize, then overwrite in place — a reused `out` is not
        // re-zeroed first (mirrors `rabitq_core::PackedCodes::scan_all`).
        out.resize(self.n, 0.0);
        let mut buf = [0u32; BLOCK];
        // Resolve the SIMD kernel once for the whole scan, not per block.
        // PQ LUT entries span the full u8 range, so max_entry is 255 (the
        // selector demotes to scalar if m·255 could overflow the u16
        // accumulators of the wide kernels).
        let scan = raw::select_scan_u8(self.m, 255);
        for b in 0..self.n_blocks() {
            let base = b * self.m * 16;
            let block = &self.blocks[base..base + self.m * 16];
            // SAFETY: `select_scan_u8` only returns kernels whose ISA
            // requirements were verified by runtime feature detection.
            unsafe { scan(block, &luts.entries, self.m, &mut buf) };
            let start = b * BLOCK;
            let take = BLOCK.min(self.n - start);
            for (slot, &acc) in out[start..start + take].iter_mut().zip(buf.iter()) {
                *slot = luts.bias + luts.scale * acc as f32;
            }
        }
    }
}

/// Per-query u8-quantized distance LUTs.
#[derive(Clone, Debug)]
pub struct QuantizedLuts {
    m: usize,
    entries: Vec<u8>,
    /// Reconstruction: `distance ≈ bias + scale · Σ entries`.
    pub bias: f32,
    /// See [`QuantizedLuts::bias`].
    pub scale: f32,
}

impl QuantizedLuts {
    /// Quantizes the f32 ADC tables of `pq` for `query` to u8.
    pub fn build(pq: &ProductQuantizer, query: &[f32]) -> Self {
        let f32_luts = pq.build_luts(query);
        Self::from_f32_luts(&f32_luts, pq.m(), 1usize << pq.k_bits())
    }

    /// Quantizes existing f32 tables (`m` tables of `k` entries each).
    /// Only the first 16 entries per table are retained (fast scan is a
    /// `k = 4` technique).
    pub fn from_f32_luts(luts: &[f32], m: usize, k: usize) -> Self {
        assert!(k >= 16, "fast scan needs at least 16 entries per table");
        let mut bias = 0.0f32;
        let mut max_range = 0.0f32;
        let mut mins = vec![0.0f32; m];
        for seg in 0..m {
            let table = &luts[seg * k..seg * k + 16];
            let (lo, hi) = rabitq_math::vecs::min_max(table);
            mins[seg] = lo;
            bias += lo;
            max_range = max_range.max(hi - lo);
        }
        let scale = if max_range > 0.0 {
            max_range / 255.0
        } else {
            1.0
        };
        let inv_scale = 1.0 / scale;
        let mut entries = vec![0u8; m * 16];
        for seg in 0..m {
            let table = &luts[seg * k..seg * k + 16];
            for (j, &v) in table.iter().enumerate() {
                let q = ((v - mins[seg]) * inv_scale).round();
                entries[seg * 16 + j] = q.clamp(0.0, 255.0) as u8;
            }
        }
        Self {
            m,
            entries,
            bias,
            scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pq::PqConfig;
    use rabitq_math::rng::standard_normal_vec;
    use rabitq_math::vecs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gaussian_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        standard_normal_vec(&mut rng, n * dim)
    }

    fn pq4(data: &[f32], dim: usize, m: usize) -> ProductQuantizer {
        let cfg = PqConfig {
            m,
            k_bits: 4,
            train_iters: 15,
            training_sample: None,
            seed: 5,
        };
        ProductQuantizer::train(data, dim, &cfg)
    }

    #[test]
    fn fast_scan_tracks_f32_adc_on_well_scaled_data() {
        let dim = 32;
        let data = gaussian_data(300, dim, 1);
        let pq = pq4(&data, dim, 16);
        let codes = pq.encode_set(data.chunks_exact(dim));
        let packed = PqPacked::pack(&codes);
        let query = gaussian_data(1, dim, 2);
        let qluts = QuantizedLuts::build(&pq, &query);
        let f32_luts = pq.build_luts(&query);
        let mut est = Vec::new();
        packed.scan_all(&qluts, &mut est);
        for i in 0..codes.len() {
            let exact_adc = pq.adc_distance(&f32_luts, codes.code(i));
            let rel = (est[i] - exact_adc).abs() / (1.0 + exact_adc);
            assert!(rel < 0.05, "code {i}: {} vs {exact_adc}", est[i]);
        }
    }

    #[test]
    fn heterogeneous_scales_destroy_u8_lut_resolution() {
        // The MSong mechanism: one segment with a hugely larger distance
        // range steals the entire u8 dynamic range from the others. Errors
        // of the quantized scan w.r.t. the f32 ADC must blow up relative to
        // the well-scaled case.
        let dim = 32;
        let mut data = gaussian_data(400, dim, 3);
        // Scale the first 2 dimensions by 100×.
        for row in data.chunks_exact_mut(dim) {
            row[0] *= 100.0;
            row[1] *= 100.0;
        }
        let pq = pq4(&data, dim, 16);
        let codes = pq.encode_set(data.chunks_exact(dim));
        let packed = PqPacked::pack(&codes);
        let mut query = gaussian_data(1, dim, 4);
        query[0] *= 100.0;
        query[1] *= 100.0;
        let qluts = QuantizedLuts::build(&pq, &query);
        let f32_luts = pq.build_luts(&query);
        let mut est = Vec::new();
        packed.scan_all(&qluts, &mut est);
        // Measure the error contributed by LUT quantization on the
        // *small* segments: compare against the exact f32 ADC, excluding
        // the bias the large segment would dominate anyway.
        let mut max_abs_err = 0.0f32;
        for i in 0..codes.len() {
            let exact_adc = pq.adc_distance(&f32_luts, codes.code(i));
            max_abs_err = max_abs_err.max((est[i] - exact_adc).abs());
        }
        // The u8 step is max_range/255 with max_range ~ (100σ)² ≈ 4·10⁴,
        // so single-segment errors are already ~100s.
        assert!(
            max_abs_err > 10.0,
            "expected severe LUT quantization error, got {max_abs_err}"
        );
    }

    #[test]
    fn constant_luts_are_handled() {
        let luts = vec![3.0f32; 2 * 16];
        let q = QuantizedLuts::from_f32_luts(&luts, 2, 16);
        assert_eq!(q.bias, 6.0);
        assert!(q.entries.iter().all(|&e| e == 0));
    }

    #[test]
    fn packing_preserves_code_count_and_padding_is_benign() {
        let dim = 8;
        let data = gaussian_data(37, dim, 6);
        let pq = pq4(&data, dim, 4);
        let codes = pq.encode_set(data.chunks_exact(dim));
        let packed = PqPacked::pack(&codes);
        assert_eq!(packed.len(), 37);
        assert_eq!(packed.n_blocks(), 2);
        let query = gaussian_data(1, dim, 7);
        let qluts = QuantizedLuts::build(&pq, &query);
        let mut est = Vec::new();
        packed.scan_all(&qluts, &mut est);
        assert_eq!(est.len(), 37);
        assert!(est.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn estimates_correlate_with_true_distances() {
        let dim = 64;
        let data = gaussian_data(200, dim, 8);
        let pq = pq4(&data, dim, 32);
        let codes = pq.encode_set(data.chunks_exact(dim));
        let packed = PqPacked::pack(&codes);
        let query = gaussian_data(1, dim, 9);
        let qluts = QuantizedLuts::build(&pq, &query);
        let mut est = Vec::new();
        packed.scan_all(&qluts, &mut est);
        // Spearman-ish sanity: the closest true vector should rank in the
        // top quarter by estimate.
        let mut true_d: Vec<(usize, f32)> = (0..200)
            .map(|i| (i, vecs::l2_sq(&data[i * dim..(i + 1) * dim], &query)))
            .collect();
        true_d.sort_by(|a, b| a.1.total_cmp(&b.1));
        let closest = true_d[0].0;
        let rank = est.iter().filter(|&&e| e < est[closest]).count();
        assert!(rank < 50, "true NN ranked {rank} by PQ fast scan");
    }
}
