//! Property-based tests for the PQ baseline: code validity, ADC identity
//! and LUT-quantization error bounds over randomized shapes.

use proptest::prelude::*;
use rabitq_math::vecs;
use rabitq_pq::{PqConfig, PqPacked, ProductQuantizer, QuantizedLuts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn train_pq(n: usize, dim: usize, m: usize, k_bits: u8, seed: u64) -> (Vec<f32>, ProductQuantizer) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let cfg = PqConfig {
        m,
        k_bits,
        train_iters: 6,
        training_sample: None,
        seed,
    };
    let pq = ProductQuantizer::train(&data, dim, &cfg);
    (data, pq)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn codes_stay_in_k_range(seed in 0u64..200, k4 in proptest::bool::ANY) {
        let k_bits = if k4 { 4u8 } else { 8 };
        let (data, pq) = train_pq(120, 16, 4, k_bits, seed);
        let codes = pq.encode_set(data.chunks_exact(16));
        let limit = 1u16 << k_bits;
        for i in 0..codes.len() {
            for &c in codes.code(i) {
                prop_assert!((c as u16) < limit);
            }
        }
    }

    #[test]
    fn adc_equals_distance_to_decoded(seed in 0u64..200) {
        let (data, pq) = train_pq(100, 16, 4, 4, seed);
        let codes = pq.encode_set(data.chunks_exact(16));
        let mut rng = StdRng::seed_from_u64(seed ^ 77);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, 16);
        let luts = pq.build_luts(&query);
        let mut rec = vec![0.0f32; 16];
        for i in 0..codes.len() {
            let adc = pq.adc_distance(&luts, codes.code(i));
            pq.decode(codes.code(i), &mut rec);
            let direct = vecs::l2_sq(&query, &rec);
            prop_assert!((adc - direct).abs() < 1e-2 * (1.0 + direct));
        }
    }

    #[test]
    fn encoding_is_optimal_per_segment(seed in 0u64..200) {
        let (data, pq) = train_pq(80, 8, 2, 4, seed);
        let v = &data[..8];
        let mut code = Vec::new();
        pq.encode(v, &mut code);
        for seg in 0..2 {
            let sub = &v[seg * 4..(seg + 1) * 4];
            let chosen = vecs::l2_sq(pq.centroid(seg, code[seg] as usize), sub);
            for c in 0..16 {
                prop_assert!(vecs::l2_sq(pq.centroid(seg, c), sub) >= chosen - 1e-5);
            }
        }
    }

    #[test]
    fn quantized_lut_error_bounded_by_scale(seed in 0u64..200) {
        // Per code: |fastscan − f32 ADC| ≤ M · scale (u8 rounding is at
        // most half a step per segment, plus clamping for in-range data).
        let (data, pq) = train_pq(90, 16, 4, 4, seed);
        let codes = pq.encode_set(data.chunks_exact(16));
        let packed = PqPacked::pack(&codes);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, 16);
        let qluts = QuantizedLuts::build(&pq, &query);
        let f32_luts = pq.build_luts(&query);
        let mut est = Vec::new();
        packed.scan_all(&qluts, &mut est);
        for i in 0..codes.len() {
            let exact = pq.adc_distance(&f32_luts, codes.code(i));
            let bound = pq.m() as f32 * qluts.scale + 1e-3;
            prop_assert!((est[i] - exact).abs() <= bound,
                "code {}: |{} - {}| > {}", i, est[i], exact, bound);
        }
    }

    #[test]
    fn packing_any_count_preserves_length(n in 1usize..70, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n.max(16) * 8);
        let cfg = PqConfig { m: 2, k_bits: 4, train_iters: 4, training_sample: None, seed };
        let pq = ProductQuantizer::train(&data, 8, &cfg);
        let codes = pq.encode_set(data.chunks_exact(8).take(n));
        let packed = PqPacked::pack(&codes);
        prop_assert_eq!(packed.len(), n.min(data.len() / 8));
    }
}
