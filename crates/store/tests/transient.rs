//! Transient-fault retry and read-only auto-recovery (the self-healing
//! half of the deadline/cancellation PR):
//!
//! 1. A transient fault window **shorter** than the retry budget is
//!    absorbed: the mutation succeeds, `io_retries` counts the backoff
//!    attempts, and the collection never flips read-only.
//! 2. A window **longer** than the budget freezes the collection; once
//!    the script heals, the thaw probe re-tests the write path and the
//!    collection thaws itself — `thaws` bumps, the journal records
//!    `read_only` then `recovered`, and mutations resume.
//! 3. Operator freezes never auto-thaw.
//! 4. `EventJournal` sequence numbers stay strictly monotonic across
//!    read-only → thaw cycles.
//! 5. The `inserted_ids` resume contract: a batch interrupted mid-way by
//!    a freeze commits a prefix exactly once; resuming after the thaw
//!    never double-commits.

use rabitq_store::{
    disk_io, Collection, CollectionConfig, FaultIo, FaultKind, FaultScript, StoreMetrics,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const DIM: usize = 4;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rabitq-transient-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn fast_config() -> CollectionConfig {
    let mut config = CollectionConfig::new(DIM);
    config.memtable_capacity = 100;
    config.auto_compact = false;
    config.io_retry_base = Duration::from_micros(10); // fast tests
    config.thaw_cooldown = Duration::ZERO; // probe immediately
    config
}

fn vector_for(i: u32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(0xFEED + i as u64);
    rabitq_math::rng::standard_normal_vec(&mut rng, DIM)
}

/// Ops performed by a fresh open, so scripts can target the first
/// insert's WAL append precisely.
fn open_ops(config: &CollectionConfig) -> u64 {
    let dir = test_dir("op-count");
    let counting = Arc::new(FaultIo::counting(disk_io()));
    drop(Collection::open_with_io(&dir, config.clone(), counting.clone()).unwrap());
    let ops = counting.ops();
    std::fs::remove_dir_all(&dir).ok();
    ops
}

#[test]
fn transient_fault_within_retry_budget_is_absorbed() {
    let config = fast_config();
    let at = open_ops(&config);
    let dir = test_dir("absorbed");
    // Fault the first insert's WAL append twice; the third attempt (the
    // second retry) lands past the window and succeeds.
    let io = Arc::new(FaultIo::scripted(
        disk_io(),
        FaultScript::transient(at, 2, FaultKind::Eio),
    ));
    let mut collection = Collection::open_with_io(&dir, config, io).unwrap();
    let id = collection
        .insert(&vector_for(0))
        .expect("retry must absorb a 2-op transient window");
    assert_eq!(id, 0);
    assert!(collection.health().is_healthy(), "no read-only flip");

    let metrics = collection.metrics();
    assert_eq!(StoreMetrics::get(&metrics.io_retries), 2, "two backoffs");
    assert_eq!(StoreMetrics::get(&metrics.read_only_flips), 0);
    assert_eq!(StoreMetrics::get(&metrics.thaws), 0);
    let kinds: Vec<&str> = metrics.journal.recent().iter().map(|e| e.kind).collect();
    assert_eq!(
        kinds.iter().filter(|&&k| k == "io_retry").count(),
        2,
        "each retry is journaled: {kinds:?}"
    );
    assert!(!kinds.contains(&"read_only"));

    // The acked row is durable and searchable.
    let mut rng = StdRng::seed_from_u64(1);
    let res = collection.search(&vector_for(0), 1, 1_000, &mut rng);
    assert_eq!(res.neighbors[0].0, 0);
    assert!(res.neighbors[0].1 < 1e-9);
    std::fs::remove_dir_all(&dir).ok();
}

/// Exhausts the retry budget (freeze), heals the script, and asserts the
/// next mutation probes the write path, thaws, and succeeds.
#[test]
fn frozen_collection_thaws_once_the_fault_heals() {
    let mut config = fast_config();
    config.io_retry_attempts = 2;
    let at = open_ops(&config);
    let dir = test_dir("thaw");
    // Window of 3: initial attempt + both retries all fault, then heal.
    let io = Arc::new(FaultIo::scripted(
        disk_io(),
        FaultScript::transient(at, 3, FaultKind::Enospc),
    ));
    let mut collection = Collection::open_with_io(&dir, config, io).unwrap();

    let err = collection.insert(&vector_for(0)).unwrap_err();
    assert!(
        !err.is_read_only(),
        "exhausted retries surface the I/O error"
    );
    assert!(collection.health().read_only, "budget exhausted ⇒ frozen");
    let metrics = Arc::clone(collection.metrics());
    assert_eq!(StoreMetrics::get(&metrics.io_retries), 2);
    assert_eq!(StoreMetrics::get(&metrics.read_only_flips), 1);

    // The script has healed (the window is behind us); with a zero
    // cooldown the very next mutation probes the write path and thaws.
    let id = collection
        .insert(&vector_for(1))
        .expect("thaw probe must recover the collection");
    assert_eq!(id, 0, "the un-acked row 0 was never committed");
    assert!(
        collection.health().is_healthy(),
        "thawed: {:?}",
        collection.health()
    );
    assert_eq!(StoreMetrics::get(&metrics.thaws), 1);

    // Journal tells the whole story in order: retries, the freeze, the
    // recovery — with strictly monotonic sequence numbers throughout.
    let events = metrics.journal.recent();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind).collect();
    let ro = kinds.iter().position(|&k| k == "read_only").unwrap();
    let rec = kinds.iter().position(|&k| k == "recovered").unwrap();
    assert!(ro < rec, "freeze precedes recovery: {kinds:?}");
    assert!(
        events.windows(2).all(|w| w[1].seq > w[0].seq),
        "journal seqs strictly monotonic across the thaw cycle"
    );

    // Detached readers observe the same recovered health.
    assert!(collection.reader().health().is_healthy());

    // A second freeze/thaw cycle keeps counting (and keeps seqs rising).
    collection.set_read_only("op freeze");
    assert!(collection.insert(&vector_for(2)).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn operator_freeze_never_auto_thaws() {
    let dir = test_dir("op-freeze");
    let mut collection = Collection::open(&dir, fast_config()).unwrap();
    collection.insert(&vector_for(0)).unwrap();
    collection.set_read_only("maintenance window");
    // Zero cooldown and a perfectly healthy write path: a fault-induced
    // freeze would thaw right here. An operator freeze must not.
    for i in 1..4 {
        let err = collection.insert(&vector_for(i)).unwrap_err();
        assert!(err.is_read_only(), "attempt {i} stays rejected");
    }
    assert_eq!(StoreMetrics::get(&collection.metrics().thaws), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn journal_seqs_stay_monotonic_across_repeated_thaw_cycles() {
    let mut config = fast_config();
    config.io_retry_attempts = 0; // freeze on the first error
    let at = open_ops(&config);
    let dir = test_dir("cycles");
    // Two disjoint single-op fault windows: ops `at` and `at + 4` fail.
    // (Each insert that succeeds costs one WAL append; a failed insert
    // costs one; each thaw probe costs two — create + remove.)
    let io = Arc::new(FaultIo::scripted(
        disk_io(),
        FaultScript::transient(at, 1, FaultKind::Eio),
    ));
    let mut collection = Collection::open_with_io(&dir, config, io).unwrap();

    // Cycle 1: freeze, thaw (probe ops at+1, at+2; insert at+3 is clean).
    assert!(collection.insert(&vector_for(0)).is_err());
    assert!(collection.health().read_only);
    collection.insert(&vector_for(1)).unwrap();
    assert!(collection.health().is_healthy());

    let metrics = Arc::clone(collection.metrics());
    assert_eq!(StoreMetrics::get(&metrics.read_only_flips), 1);
    assert_eq!(StoreMetrics::get(&metrics.thaws), 1);

    let events = metrics.journal.recent();
    assert!(
        events.windows(2).all(|w| w[1].seq > w[0].seq),
        "strictly monotonic seqs"
    );
    let first_total = metrics.journal.total_recorded();

    // Cycle 2 via operator freeze + explicit unfreeze path does not
    // exist; instead re-freeze through health directly is private — so
    // assert instead that further healthy activity keeps appending with
    // rising seqs after the recovered event.
    collection.insert(&vector_for(2)).unwrap();
    collection.seal().unwrap();
    let events = metrics.journal.recent();
    assert!(metrics.journal.total_recorded() > first_total);
    assert!(
        events.windows(2).all(|w| w[1].seq > w[0].seq),
        "seqs keep rising after recovery"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The batch-resume contract around a mid-batch freeze + thaw: ids acked
/// before the freeze stay committed exactly once; the failed row was
/// never committed; resuming the remainder after the thaw produces fresh
/// ids with no duplicates.
#[test]
fn partial_batch_resume_after_thaw_never_double_commits() {
    let mut config = fast_config();
    config.io_retry_attempts = 0;
    let at = open_ops(&config);
    let dir = test_dir("partial-batch");
    // Ops `at` and `at+1` are the first two inserts' WAL appends — let
    // them succeed; fault the third (op at+2), then heal.
    let io = Arc::new(FaultIo::scripted(
        disk_io(),
        FaultScript::transient(at + 2, 1, FaultKind::Eio),
    ));
    let mut collection = Collection::open_with_io(&dir, config, io).unwrap();

    let batch: Vec<Vec<f32>> = (0..5).map(vector_for).collect();
    let mut inserted_ids = Vec::new();
    let mut failed_at = None;
    for (i, v) in batch.iter().enumerate() {
        match collection.insert(v) {
            Ok(id) => inserted_ids.push(id),
            Err(_) => {
                failed_at = Some(i);
                break;
            }
        }
    }
    assert_eq!(inserted_ids, vec![0, 1], "prefix acked before the freeze");
    assert_eq!(failed_at, Some(2));
    assert!(collection.health().read_only);

    // Resume from the failure point. The script healed, so the thaw
    // probe fires on the first retried insert.
    for v in &batch[failed_at.unwrap()..] {
        inserted_ids.push(collection.insert(v).unwrap());
    }
    assert_eq!(
        inserted_ids,
        vec![0, 1, 2, 3, 4],
        "ids are dense: the failed attempt consumed no id"
    );

    // Every row exactly once — including row 2, whose first attempt
    // failed and whose retry must not have double-committed.
    drop(collection);
    let collection = Collection::open(&dir, fast_config()).unwrap();
    assert_eq!(collection.len(), 5);
    let mut rng = StdRng::seed_from_u64(2);
    for (i, v) in batch.iter().enumerate() {
        let res = collection.search(v, 5, 1_000, &mut rng);
        let hits = res
            .neighbors
            .iter()
            .filter(|&&(id, d)| id == inserted_ids[i] && d < 1e-9)
            .count();
        assert_eq!(hits, 1, "row {i} committed exactly once");
    }
    std::fs::remove_dir_all(&dir).ok();
}
