//! Collection lifecycle: open → write → crash → replay → compact → search.

use rabitq_store::{Collection, CollectionConfig, Wal, MANIFEST_FILE, WAL_FILE};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rabitq-store-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn gaussian(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    rabitq_math::rng::standard_normal_vec(&mut rng, n * dim)
}

fn small_config(dim: usize, memtable: usize) -> CollectionConfig {
    let mut config = CollectionConfig::new(dim);
    config.memtable_capacity = memtable;
    config
}

#[test]
fn unsealed_writes_survive_a_crash_with_a_torn_tail() {
    let dir = tmp_dir("crash");
    let dim = 16;
    let data = gaussian(50, dim, 1);
    {
        let mut c = Collection::open(&dir, small_config(dim, 1000)).unwrap();
        for row in data.chunks_exact(dim) {
            c.insert(row).unwrap();
        }
        assert_eq!(c.n_segments(), 0, "nothing sealed yet");
        // Simulated crash: the Collection is dropped with no shutdown
        // hook; all state beyond the WAL is purely in memory.
    }
    // Torn final record: the crash hit mid-append.
    let wal_path = dir.join(WAL_FILE);
    let bytes = std::fs::read(&wal_path).unwrap();
    std::fs::write(&wal_path, &bytes[..bytes.len() - 5]).unwrap();

    let c = Collection::open(&dir, small_config(dim, 1000)).unwrap();
    // The torn insert (id 49) is gone; everything else replayed.
    assert_eq!(c.len(), 49);
    let mut rng = StdRng::seed_from_u64(2);
    for (i, row) in data.chunks_exact(dim).take(49).enumerate() {
        let res = c.search(row, 1, 8, &mut rng);
        assert_eq!(res.neighbors[0].0, i as u32, "replayed row {i} searchable");
        assert!(res.neighbors[0].1 < 1e-6);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn deletes_survive_crash_and_seal_boundaries() {
    let dir = tmp_dir("deletes");
    let dim = 8;
    let data = gaussian(120, dim, 3);
    {
        let mut c = Collection::open(&dir, small_config(dim, 50)).unwrap();
        for row in data.chunks_exact(dim) {
            c.insert(row).unwrap();
        }
        assert_eq!(c.n_segments(), 2); // 120 rows, capacity 50 ⇒ 2 seals
        assert_eq!(c.memtable_len(), 20);
        assert!(c.delete(0).unwrap()); // in a sealed segment
        assert!(c.delete(110).unwrap()); // in the memtable
        assert!(!c.delete(0).unwrap()); // already gone
        assert!(!c.delete(9999).unwrap()); // never existed
        assert_eq!(c.len(), 118);
    }
    let c = Collection::open(&dir, small_config(dim, 50)).unwrap();
    assert_eq!(c.len(), 118);
    let mut rng = StdRng::seed_from_u64(4);
    for dead in [0u32, 110] {
        let res = c.search(
            &data[dead as usize * dim..(dead as usize + 1) * dim],
            5,
            16,
            &mut rng,
        );
        assert!(
            res.neighbors.iter().all(|&(id, _)| id != dead),
            "deleted id {dead} resurfaced after reopen"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn wal_floor_skips_records_already_sealed_into_segments() {
    let dir = tmp_dir("floor");
    let dim = 8;
    let data = gaussian(60, dim, 5);
    {
        let mut c = Collection::open(&dir, small_config(dim, 30)).unwrap();
        for row in data.chunks_exact(dim) {
            c.insert(row).unwrap();
        }
        assert_eq!(c.n_segments(), 2);
        assert_eq!(c.len(), 60);
    }
    // Simulate the crash window between "manifest switched" and "WAL
    // reset": re-append records for rows that are already in segments.
    {
        let (mut wal, _) = Wal::open(&dir.join(WAL_FILE), dim).unwrap();
        wal.append_insert(3, &data[3 * dim..4 * dim]).unwrap();
        wal.append_delete(3).unwrap();
        wal.append_delete(3).unwrap(); // deletes are idempotent too
    }
    let c = Collection::open(&dir, small_config(dim, 30)).unwrap();
    // Insert 3 was skipped (below the floor), delete 3 applied once.
    assert_eq!(c.len(), 59);
    assert_eq!(c.memtable_len(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_merges_segments_and_drops_tombstones() {
    let dir = tmp_dir("compact");
    let dim = 16;
    let n = 300;
    let data = gaussian(n, dim, 7);
    let mut config = small_config(dim, 60);
    config.auto_compact = false; // drive compaction by hand
    let mut c = Collection::open(&dir, config).unwrap();
    for row in data.chunks_exact(dim) {
        c.insert(row).unwrap();
    }
    c.seal().unwrap();
    assert_eq!(c.n_segments(), 5);

    // Kill >50% of the first segment (ids 0..60).
    for id in 0..40u32 {
        assert!(c.delete(id).unwrap());
    }
    let live: Vec<u32> = (40..n as u32).collect();
    assert_eq!(c.len(), live.len());

    assert!(c.compact().unwrap());
    assert_eq!(c.n_segments(), 1);
    assert_eq!(c.len(), live.len());
    // Old segment files are gone from disk; manifest + one segment + WAL.
    let files: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(files.len(), 3, "{files:?}");
    assert!(files.iter().any(|f| f == MANIFEST_FILE));

    // Tombstoned ids never resurface, and the survivors are still exact.
    let mut rng = StdRng::seed_from_u64(8);
    for qi in 0..20usize {
        let probe = &data[qi * dim..(qi + 1) * dim];
        let res = c.search(probe, 10, 64, &mut rng);
        assert!(res.neighbors.iter().all(|&(id, _)| id >= 40));
        assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    // Compacted state survives reopen.
    drop(c);
    let c = Collection::open(&dir, small_config(dim, 60)).unwrap();
    assert_eq!(c.len(), live.len());
    assert_eq!(c.n_segments(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_compaction_respects_the_segment_cap() {
    let dir = tmp_dir("auto");
    let dim = 8;
    let mut config = small_config(dim, 20);
    config.policy.max_segments = 3;
    let mut c = Collection::open(&dir, config).unwrap();
    let data = gaussian(200, dim, 9);
    for row in data.chunks_exact(dim) {
        c.insert(row).unwrap();
    }
    // 10 seals happened, but the policy folds the smallest segments
    // whenever the cap is crossed.
    assert!(c.n_segments() <= 3, "{} segments", c.n_segments());
    assert_eq!(c.len(), 200);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_k_zero_searches_are_clean() {
    let dir = tmp_dir("empty");
    let mut c = Collection::open(&dir, small_config(4, 10)).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let res = c.search(&[0.0; 4], 5, 4, &mut rng);
    assert!(res.neighbors.is_empty());
    let id = c.insert(&[1.0, 0.0, 0.0, 0.0]).unwrap();
    let res = c.search(&[1.0, 0.0, 0.0, 0.0], 0, 4, &mut rng);
    assert!(res.neighbors.is_empty());
    let res = c.search(&[1.0, 0.0, 0.0, 0.0], 3, 4, &mut rng);
    assert_eq!(res.neighbors.len(), 1);
    assert_eq!(res.neighbors[0].0, id);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quantizer_config_persists_through_open_existing() {
    let dir = tmp_dir("config");
    let dim = 8;
    let mut config = small_config(dim, 25);
    config.rabitq.bq = 6;
    config.rabitq.epsilon0 = 2.5;
    config.rabitq.seed = 0xC0FFEE;
    {
        let mut c = Collection::open(&dir, config).unwrap();
        let data = gaussian(30, dim, 11);
        for row in data.chunks_exact(dim) {
            c.insert(row).unwrap();
        }
        assert_eq!(c.n_segments(), 1);
    }
    // A directory-only open (the CLI's delete/compact path) must pick up
    // the quantizer config ingest chose, not defaults — compaction
    // rebuilds with it.
    let c = Collection::open_existing(&dir).unwrap();
    assert_eq!(c.config().rabitq.bq, 6);
    assert_eq!(c.config().rabitq.epsilon0, 2.5);
    assert_eq!(c.config().rabitq.seed, 0xC0FFEE);
    assert_eq!(c.config().memtable_capacity, 25);

    // An explicit open with a different quantizer config is overridden by
    // the manifest (segments were built with the stored one).
    let other = Collection::open(&dir, small_config(dim, 99)).unwrap();
    assert_eq!(other.config().rabitq.bq, 6);
    assert_eq!(other.config().memtable_capacity, 99); // runtime knob wins
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fresh_collection_is_openable_before_any_seal() {
    let dir = tmp_dir("fresh-manifest");
    {
        let mut c = Collection::open(&dir, small_config(4, 1000)).unwrap();
        c.insert(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        // No seal happened; only MANIFEST + WAL exist.
    }
    let c = Collection::open_existing(&dir).unwrap();
    assert_eq!(c.len(), 1);
    assert_eq!(c.dim(), 4);
    std::fs::remove_dir_all(&dir).ok();
}
