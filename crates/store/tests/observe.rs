//! End-to-end checks of the store instrumentation: counters, duration
//! histograms, and the event journal move when the collection works.

use rabitq_store::{Collection, CollectionConfig, StoreMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("observe-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[test]
fn writer_path_populates_counters_histograms_and_journal() {
    let dir = tmp_dir("writer");
    let mut config = CollectionConfig::new(8);
    config.memtable_capacity = 32;
    let mut collection = Collection::open(&dir, config).unwrap();

    let mut rng = StdRng::seed_from_u64(11);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, 96 * 8);
    let ids: Vec<u32> = data
        .chunks_exact(8)
        .map(|v| collection.insert(v).unwrap())
        .collect();
    collection.delete(ids[0]).unwrap();
    collection.seal().unwrap();
    collection.compact().unwrap();
    collection.sync_wal().unwrap();

    let m = collection.metrics();
    // 96 inserts + 1 delete hit the WAL; each append is timed.
    assert_eq!(StoreMetrics::get(&m.wal_appends), 97);
    assert_eq!(m.wal_append_us.count(), 97);
    assert_eq!(StoreMetrics::get(&m.wal_syncs), 1);
    // 32-row memtable over 96 inserts: three auto seals (the explicit
    // seal found the memtable empty and was a no-op).
    assert_eq!(StoreMetrics::get(&m.seals), 3);
    assert_eq!(m.seal_us.count(), 3);
    assert!(StoreMetrics::get(&m.compactions) >= 1);
    assert!(StoreMetrics::get(&m.compaction_bytes_in) > 0);
    assert!(StoreMetrics::get(&m.compaction_bytes_out) > 0);
    assert!(StoreMetrics::get(&m.publishes) > 96);
    assert_eq!(StoreMetrics::get(&m.quarantines), 0);
    assert_eq!(StoreMetrics::get(&m.read_only_flips), 0);

    let kinds: Vec<&'static str> = m.journal.recent().iter().map(|e| e.kind).collect();
    assert_eq!(kinds[0], "open");
    assert!(kinds.contains(&"seal"));
    assert!(kinds.contains(&"compaction"));

    // The detached reader shares the same instance.
    let reader = collection.reader();
    assert_eq!(StoreMetrics::get(&reader.metrics().wal_appends), 97);

    // Reopen: segment opens are counted and timed.
    drop(collection);
    let reopened = Collection::open_existing(&dir).unwrap();
    let m = reopened.metrics();
    assert_eq!(
        StoreMetrics::get(&m.segment_opens),
        reopened.n_segments() as u64
    );
    assert_eq!(m.segment_open_us.count(), reopened.n_segments() as u64);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn operator_freeze_counts_one_flip_and_journals_it() {
    let dir = tmp_dir("freeze");
    let collection = Collection::open(&dir, CollectionConfig::new(4)).unwrap();
    collection.set_read_only("maintenance window");
    collection.set_read_only("repeat call must not double-count");
    let m = collection.metrics();
    assert_eq!(StoreMetrics::get(&m.read_only_flips), 1);
    let events = m.journal.recent();
    let flips: Vec<_> = events.iter().filter(|e| e.kind == "read_only").collect();
    assert_eq!(flips.len(), 1);
    assert!(flips[0].detail.contains("maintenance window"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantine_at_open_is_counted_and_journaled() {
    let dir = tmp_dir("quarantine");
    let mut config = CollectionConfig::new(8);
    config.memtable_capacity = 16;
    let mut collection = Collection::open(&dir, config).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, 32 * 8);
    for v in data.chunks_exact(8) {
        collection.insert(v).unwrap();
    }
    collection.seal().unwrap();
    drop(collection);

    // Flip bytes in the middle of one segment file.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".rbq"))
        })
        .expect("a sealed segment file");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    for b in &mut bytes[mid..mid + 8] {
        *b ^= 0xFF;
    }
    std::fs::write(&seg, &bytes).unwrap();

    let reopened = Collection::open_existing(&dir).unwrap();
    let m = reopened.metrics();
    assert_eq!(StoreMetrics::get(&m.quarantines), 1);
    assert!(m.journal.recent().iter().any(|e| e.kind == "quarantine"));
    assert!(reopened.health().degraded);
    std::fs::remove_dir_all(&dir).ok();
}
