//! The crash matrix: for a fixed ingest/delete/seal/compact workload,
//! inject a fault at **every** I/O operation index (cycling through EIO,
//! ENOSPC, torn write, short write, failed fsync — each in crash mode, so
//! all later I/O fails too, simulating the process dying right there),
//! then reopen on healthy storage and assert the recovery invariants:
//!
//! 1. **No acked write lost** — every insert that returned `Ok` (and was
//!    not subsequently deleted) is findable with exact distance 0.
//! 2. **No acked delete resurrected** — every delete that returned
//!    `Ok(true)` stays gone.
//! 3. **No record duplicated** — an acked row appears exactly once, even
//!    when replay races a manifest that already contains it.
//! 4. **Search still answers** — the reopened collection serves queries.
//!
//! With this VFS's fault semantics, an op that returns an error never
//! persists a *complete* WAL frame (torn/short writes lose the checksum,
//! error faults write nothing), so unacked mutations can never resurrect
//! either: the recovered live set must equal acked inserts minus acked
//! deletes exactly.
//!
//! Companion tests cover the paths the matrix cannot reach on its own:
//! checksum-corrupted segments (quarantine + degraded serving), the
//! read-only flip on a write-path fault, a fault injected during WAL
//! torn-tail *repair* itself, and orphaned-file GC.

use rabitq_store::{
    disk_io, Collection, CollectionConfig, FaultIo, FaultKind, FaultScript, StorageIo,
    MANIFEST_FILE, QUARANTINE_SUFFIX, WAL_FILE,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

const DIM: usize = 4;

fn test_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("rabitq-crash-matrix-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn small_config() -> CollectionConfig {
    let mut config = CollectionConfig::new(DIM);
    config.memtable_capacity = 3;
    config.auto_compact = false;
    config
}

/// Deterministic, pairwise-distinct vector for logical row `i`.
fn vector_for(i: u32) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE + i as u64);
    rabitq_math::rng::standard_normal_vec(&mut rng, DIM)
}

/// What the workload's client believes happened: only operations that
/// returned `Ok` are recorded, exactly like an application treating an
/// error as "outcome unknown, not promised".
#[derive(Default)]
struct Acked {
    inserts: Vec<(u32, Vec<f32>)>,
    deletes: Vec<u32>,
}

impl Acked {
    fn live(&self) -> Vec<&(u32, Vec<f32>)> {
        let deleted: HashSet<u32> = self.deletes.iter().copied().collect();
        self.inserts
            .iter()
            .filter(|(id, _)| !deleted.contains(id))
            .collect()
    }
}

/// The fixed workload: 8 inserts (three automatic seals at capacity 3),
/// one delete of a sealed row and one of a memtable row, an explicit
/// seal, two more inserts, and a full compaction. Mutations that error —
/// the injected fault, then the read-only rejections that follow it —
/// are simply not acked; the workload soldiers on like a client would.
fn run_workload(dir: &Path, io: Arc<dyn StorageIo>) -> Acked {
    let mut acked = Acked::default();
    let Ok(mut collection) = Collection::open_with_io(dir, small_config(), io) else {
        return acked; // crashed during open: nothing was ever acked
    };
    for i in 0..8 {
        let v = vector_for(i);
        if let Ok(id) = collection.insert(&v) {
            acked.inserts.push((id, v));
        }
    }
    if let Some(&(first, _)) = acked.inserts.first() {
        if let Ok(true) = collection.delete(first) {
            acked.deletes.push(first);
        }
    }
    if let Some(&(last, _)) = acked.inserts.last() {
        if last != *acked.deletes.first().unwrap_or(&u32::MAX) {
            if let Ok(true) = collection.delete(last) {
                acked.deletes.push(last);
            }
        }
    }
    let _ = collection.seal();
    for i in 8..10 {
        let v = vector_for(i);
        if let Ok(id) = collection.insert(&v) {
            acked.inserts.push((id, v));
        }
    }
    let _ = collection.compact();
    acked
}

/// Reopens `dir` on healthy storage and checks the four invariants.
fn verify_recovery(dir: &Path, acked: &Acked, cell: &str) {
    let collection = Collection::open(dir, small_config())
        .unwrap_or_else(|e| panic!("[{cell}] reopen on healthy storage failed: {e}"));
    let live = acked.live();
    assert_eq!(
        collection.len(),
        live.len(),
        "[{cell}] live row count after recovery"
    );
    let mut rng = StdRng::seed_from_u64(7);
    for (id, v) in &live {
        // nprobe is far above any cluster count here, so the search is
        // exhaustive: exact distance 0 hits cannot be missed.
        let res = collection.search(v, 3, 1_000, &mut rng);
        let hits = res
            .neighbors
            .iter()
            .filter(|&&(got, d)| got == *id && d < 1e-9)
            .count();
        assert_eq!(
            hits, 1,
            "[{cell}] acked row {id} must be recovered exactly once, saw {hits}"
        );
    }
    for id in &acked.deletes {
        let res = collection.search(&vector_for(*id), live.len().max(1), 1_000, &mut rng);
        assert!(
            res.neighbors.iter().all(|&(got, _)| got != *id),
            "[{cell}] acked delete of {id} resurrected"
        );
    }
}

#[test]
fn crash_matrix_preserves_acked_state_at_every_fault_point() {
    let base = test_dir("matrix");

    // Counting pass: how many I/O operations does the clean workload
    // perform? That bounds the matrix.
    let count_dir = base.join("counting");
    let counting = Arc::new(FaultIo::counting(disk_io()));
    let acked = run_workload(&count_dir, counting.clone());
    let total_ops = counting.ops();
    assert!(
        total_ops > 30,
        "workload should exercise a meaningful op count, got {total_ops}"
    );
    assert_eq!(acked.inserts.len(), 10, "clean run acks everything");
    assert_eq!(acked.deletes.len(), 2);
    verify_recovery(&count_dir, &acked, "counting pass");
    std::fs::remove_dir_all(&count_dir).ok();

    const KINDS: [FaultKind; 5] = [
        FaultKind::Eio,
        FaultKind::Enospc,
        FaultKind::TornWrite,
        FaultKind::ShortWrite,
        FaultKind::FailSync,
    ];
    for fault_at in 0..total_ops {
        let kind = KINDS[fault_at as usize % KINDS.len()];
        let cell = format!("{kind:?} at op {fault_at}/{total_ops}");
        let dir = base.join(format!("cell-{fault_at}"));
        let io = Arc::new(FaultIo::scripted(
            disk_io(),
            FaultScript::once(fault_at, kind, true),
        ));
        let acked = run_workload(&dir, io.clone());
        verify_recovery(&dir, &acked, &cell);
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn corrupted_segment_is_quarantined_and_serving_degrades() {
    let dir = test_dir("quarantine");
    {
        let mut collection = Collection::open(&dir, small_config()).unwrap();
        for i in 0..9 {
            collection.insert(&vector_for(i)).unwrap();
        }
        // cap 3 ⇒ exactly three sealed segments, ids 0-2 / 3-5 / 6-8.
        assert_eq!(collection.n_segments(), 3);
    }

    // Flip one payload byte in the middle segment.
    let victim = dir.join("seg-000001.rbq");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&victim, &bytes).unwrap();

    let mut collection = Collection::open(&dir, small_config()).unwrap();
    let health = collection.health();
    assert!(health.degraded, "open must report degraded");
    assert!(!health.read_only, "degraded is not read-only");
    assert_eq!(health.quarantined_segments, 1);
    assert!(
        health.notes.iter().any(|n| n.contains("seg-000001.rbq")),
        "notes name the quarantined segment: {:?}",
        health.notes
    );
    // The damaged file was renamed aside, not deleted.
    assert!(dir
        .join(format!("seg-000001.rbq{QUARANTINE_SUFFIX}"))
        .exists());
    assert!(!victim.exists());

    // The remaining six rows keep serving, and writes still work.
    assert_eq!(collection.len(), 6);
    let mut rng = StdRng::seed_from_u64(3);
    let res = collection.search(&vector_for(0), 2, 1_000, &mut rng);
    assert_eq!(res.neighbors[0].0, 0);
    assert!(res.neighbors[0].1 < 1e-9);
    let id = collection.insert(&vector_for(100)).unwrap();
    assert_eq!(collection.len(), 7);
    drop(collection);

    // The quarantine was persisted into the manifest: the next open is
    // clean (nothing left to quarantine), the evidence file remains, and
    // the new row survived.
    let collection = Collection::open(&dir, small_config()).unwrap();
    let health = collection.health();
    assert!(health.is_healthy(), "second open is healthy: {health:?}");
    assert_eq!(collection.len(), 7);
    let res = collection.search(&vector_for(100), 1, 1_000, &mut rng);
    assert_eq!(res.neighbors[0].0, id);
    assert!(dir
        .join(format!("seg-000001.rbq{QUARANTINE_SUFFIX}"))
        .exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn write_path_fault_flips_read_only_but_searches_continue() {
    // Measure how many ops a fresh open performs, so the scripted run
    // can fault the very next op: the first insert's WAL append.
    let probe_dir = test_dir("ro-probe");
    let probe = Arc::new(FaultIo::counting(disk_io()));
    drop(Collection::open_with_io(&probe_dir, small_config(), probe.clone()).unwrap());
    let open_ops = probe.ops();
    std::fs::remove_dir_all(&probe_dir).ok();

    let dir = test_dir("readonly");
    // A *persistent* (not transient) failure window: long enough that
    // the bounded retry gives up and the collection freezes. A one-shot
    // fault would be absorbed by the retry and never flip read-only.
    let io = Arc::new(FaultIo::scripted(
        disk_io(),
        FaultScript::transient(open_ops, 1_000, FaultKind::Enospc),
    ));
    let mut collection = Collection::open_with_io(&dir, small_config(), io).unwrap();
    let err = collection.insert(&vector_for(0)).unwrap_err();
    assert!(!err.is_read_only(), "first failure surfaces the I/O error");
    assert!(err.to_string().contains("I/O"), "{err}");

    // The collection froze itself: mutations now get the typed error...
    let health = collection.health();
    assert!(health.read_only);
    assert!(
        health
            .read_only_reason
            .as_deref()
            .unwrap_or("")
            .contains("WAL append"),
        "reason names the failing step: {health:?}"
    );
    let err = collection.insert(&vector_for(1)).unwrap_err();
    assert!(err.is_read_only());
    let err = collection.delete(0).unwrap_err();
    assert!(err.is_read_only());
    assert!(collection.seal().unwrap_err().is_read_only());

    // ...searches still answer, the un-acked row invisible...
    let mut rng = StdRng::seed_from_u64(5);
    let res = collection.search(&vector_for(0), 1, 1_000, &mut rng);
    assert!(res.neighbors.is_empty());

    // ...and detached readers see the same health, without the writer.
    let reader = collection.reader();
    assert!(reader.health().read_only);
    drop(collection);

    // Reopening on healthy storage resumes writes.
    let mut collection = Collection::open(&dir, small_config()).unwrap();
    assert!(collection.health().is_healthy());
    collection.insert(&vector_for(2)).unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn operator_freeze_rejects_mutations_with_typed_error() {
    let dir = test_dir("freeze");
    let mut collection = Collection::open(&dir, small_config()).unwrap();
    collection.insert(&vector_for(0)).unwrap();
    collection.set_read_only("maintenance window");
    let err = collection.insert(&vector_for(1)).unwrap_err();
    assert!(err.is_read_only());
    assert!(err.to_string().contains("maintenance window"));
    let mut rng = StdRng::seed_from_u64(9);
    let res = collection.search(&vector_for(0), 1, 1_000, &mut rng);
    assert_eq!(res.neighbors[0].0, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: the WAL torn-tail *repair itself* must be crash-safe — a
/// fault during the truncate (or anywhere else in the open) leaves a
/// state from which the next open still recovers both committed rows.
#[test]
fn faults_during_torn_tail_repair_stay_recoverable() {
    let template = test_dir("repair-template");
    {
        let mut config = small_config();
        config.memtable_capacity = 100; // keep both rows in the WAL
        let mut collection = Collection::open(&template, config).unwrap();
        collection.insert(&vector_for(0)).unwrap();
        collection.insert(&vector_for(1)).unwrap();
    }
    // Tear the tail: append half a frame's worth of garbage.
    use std::io::Write;
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(template.join(WAL_FILE))
        .unwrap();
    wal.write_all(&[0xFF; 7]).unwrap();
    drop(wal);

    let clone_template = |dst: &Path| {
        std::fs::remove_dir_all(dst).ok();
        std::fs::create_dir_all(dst).unwrap();
        for f in [WAL_FILE, MANIFEST_FILE] {
            std::fs::copy(template.join(f), dst.join(f)).unwrap();
        }
    };

    // How many ops does the repairing open take?
    let count_dir = test_dir("repair-count");
    clone_template(&count_dir);
    let counting = Arc::new(FaultIo::counting(disk_io()));
    {
        let mut config = small_config();
        config.memtable_capacity = 100;
        let collection = Collection::open_with_io(&count_dir, config, counting.clone()).unwrap();
        assert_eq!(collection.len(), 2, "repairing open recovers both rows");
    }
    let total_ops = counting.ops();
    std::fs::remove_dir_all(&count_dir).ok();

    // Fault every op of that open (crash mode), then reopen clean.
    for fault_at in 0..total_ops {
        let dir = test_dir("repair-cell");
        clone_template(&dir);
        let io = Arc::new(FaultIo::scripted(
            disk_io(),
            FaultScript::once(fault_at, FaultKind::Eio, true),
        ));
        let mut config = small_config();
        config.memtable_capacity = 100;
        // The faulted open may fail outright or succeed (only best-effort
        // steps remained); either is fine — the contract is about what
        // the *next* open finds.
        let _ = Collection::open_with_io(&dir, config.clone(), io);

        let mut collection = Collection::open(&dir, config)
            .unwrap_or_else(|e| panic!("clean reopen after fault at {fault_at} failed: {e}"));
        assert_eq!(
            collection.len(),
            2,
            "committed rows survive a fault at op {fault_at} during repair"
        );
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..2 {
            let res = collection.search(&vector_for(i), 1, 1_000, &mut rng);
            assert_eq!(res.neighbors[0].0, i);
            assert!(res.neighbors[0].1 < 1e-9);
        }
        // And the repaired log accepts appends again.
        collection
            .insert(&vector_for(50 + fault_at as u32))
            .unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&template).ok();
}

#[test]
fn open_collects_orphaned_staging_and_superseded_files() {
    let dir = test_dir("orphans");
    {
        let mut collection = Collection::open(&dir, small_config()).unwrap();
        for i in 0..3 {
            collection.insert(&vector_for(i)).unwrap();
        }
        assert_eq!(collection.n_segments(), 1);
    }
    // Crash leftovers: a staged manifest, a staged segment, and a sealed
    // segment the manifest never got to reference.
    std::fs::write(dir.join("MANIFEST.tmp"), b"half a manifest").unwrap();
    std::fs::write(dir.join("seg-000042.rbq.tmp"), b"half a segment").unwrap();
    std::fs::write(dir.join("seg-000099.rbq"), b"orphaned segment").unwrap();
    // Unrelated files must survive GC.
    std::fs::write(dir.join("README"), b"hands off").unwrap();
    std::fs::write(
        dir.join(format!("seg-000000.rbq{QUARANTINE_SUFFIX}")),
        b"forensic evidence",
    )
    .unwrap();

    let collection = Collection::open(&dir, small_config()).unwrap();
    assert!(!dir.join("MANIFEST.tmp").exists());
    assert!(!dir.join("seg-000042.rbq.tmp").exists());
    assert!(!dir.join("seg-000099.rbq").exists());
    assert!(dir.join("README").exists());
    assert!(dir
        .join(format!("seg-000000.rbq{QUARANTINE_SUFFIX}"))
        .exists());
    // The referenced segment is untouched and still serves.
    assert_eq!(collection.len(), 3);
    let notes = collection.health().notes;
    assert!(
        notes.iter().any(|n| n.contains("seg-000099.rbq")),
        "GC is reported in health notes: {notes:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
