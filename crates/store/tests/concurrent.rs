//! Concurrent reads against a live writer: the snapshot read path must
//! keep answering — with exact distances and every pre-inserted id
//! findable — while the writer inserts, seals, and compacts, and the
//! parallel execution paths must be bit-identical to serial execution.

use rabitq_math::vecs;
use rabitq_store::{Collection, CollectionConfig, ParallelOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rabitq-conc-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn gaussian(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    rabitq_math::rng::standard_normal_vec(&mut rng, n * dim)
}

fn config(dim: usize, memtable: usize, auto_compact: bool) -> CollectionConfig {
    let mut config = CollectionConfig::new(dim);
    config.memtable_capacity = memtable;
    config.auto_compact = auto_compact;
    config
}

/// Writer thread seals and compacts while N reader threads search. No
/// panics, every returned distance is exact, and every pre-inserted id
/// stays findable throughout.
#[test]
fn readers_search_correctly_while_writer_seals_and_compacts() {
    let dir = tmp_dir("readers-vs-writer");
    let dim = 16;
    let n_base = 800usize;
    let n_extra = 800usize;
    // One flat table of every row that will ever exist, so readers can
    // verify any returned id against ground truth.
    let all_rows = gaussian(n_base + n_extra, dim, 7);

    let mut collection = Collection::open(&dir, config(dim, 200, false)).unwrap();
    for row in all_rows[..n_base * dim].chunks_exact(dim) {
        collection.insert(row).unwrap();
    }
    collection.seal().unwrap();
    assert_eq!(collection.n_segments(), 4);

    let done = AtomicBool::new(false);
    let reader_iters = AtomicUsize::new(0);
    let n_readers = 3;

    std::thread::scope(|scope| {
        for r in 0..n_readers {
            let reader = collection.reader();
            let done = &done;
            let reader_iters = &reader_iters;
            let all_rows = &all_rows;
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + r as u64);
                let mut qi = r * 37;
                while !done.load(Ordering::Relaxed) || reader_iters.load(Ordering::Relaxed) < 50 {
                    // Self-query a pre-inserted row: it must come back
                    // first with (exact) distance ~0 — deletes only ever
                    // touch ids ≥ n_base.
                    qi = (qi + 13) % n_base;
                    let query = &all_rows[qi * dim..(qi + 1) * dim];
                    let res = reader.search(query, 5, 64, &mut rng);
                    assert_eq!(res.neighbors[0].0 as usize, qi, "self-lookup must win");
                    assert!(res.neighbors[0].1 < 1e-6);
                    // Exact-distance contract for every returned id.
                    for &(id, dist) in &res.neighbors {
                        let row = &all_rows[id as usize * dim..(id as usize + 1) * dim];
                        let exact = vecs::l2_sq(row, query);
                        assert!(
                            (dist - exact).abs() < 1e-4,
                            "id {id}: reported {dist}, exact {exact}"
                        );
                    }
                    // Ascending order.
                    assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
                    reader_iters.fetch_add(1, Ordering::Relaxed);
                }
            });
        }

        // The writer: ingest (sealing every 200 rows), two full
        // compactions, and a burst of deletes of *new* ids.
        let collection = &mut collection;
        let extra = &all_rows[n_base * dim..];
        let done = &done;
        scope.spawn(move || {
            for (i, row) in extra.chunks_exact(dim).enumerate() {
                collection.insert(row).unwrap();
                if i == n_extra / 3 || i == 2 * n_extra / 3 {
                    collection.compact().unwrap();
                }
            }
            for id in (n_base as u32)..(n_base as u32 + 100) {
                collection.delete(id).unwrap();
            }
            collection.seal().unwrap();
            collection.compact().unwrap();
            done.store(true, Ordering::Relaxed);
        });
    });

    assert!(reader_iters.load(Ordering::Relaxed) >= 50);
    // After the dust settles: everything still present and correct.
    assert_eq!(collection.len(), n_base + n_extra - 100);
    let mut rng = StdRng::seed_from_u64(9);
    for qi in (0..n_base).step_by(97) {
        let query = &all_rows[qi * dim..(qi + 1) * dim];
        let res = collection.search(query, 1, 64, &mut rng);
        assert_eq!(res.neighbors[0].0 as usize, qi);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A snapshot taken before writer activity is a frozen point-in-time
/// view: later inserts, seals, and compactions never leak into it.
#[test]
fn snapshots_are_point_in_time_views() {
    let dir = tmp_dir("frozen");
    let dim = 8;
    let rows = gaussian(300, dim, 3);
    let mut collection = Collection::open(&dir, config(dim, 100, false)).unwrap();
    for row in rows[..200 * dim].chunks_exact(dim) {
        collection.insert(row).unwrap();
    }

    let frozen = collection.snapshot();
    let before_len = frozen.len();
    let before_segments = frozen.n_segments();
    assert_eq!(before_len, 200);

    for row in rows[200 * dim..].chunks_exact(dim) {
        collection.insert(row).unwrap();
    }
    collection.seal().unwrap();
    collection.compact().unwrap();

    // The frozen view is unchanged; a fresh snapshot sees everything.
    assert_eq!(frozen.len(), before_len);
    assert_eq!(frozen.n_segments(), before_segments);
    let mut rng = StdRng::seed_from_u64(4);
    let probe = &rows[250 * dim..251 * dim]; // inserted after the freeze
    let old = frozen.search(probe, 1, 64, &mut rng);
    assert_ne!(old.neighbors[0].0, 250, "row 250 must be invisible");
    let new = collection.snapshot().search(probe, 1, 64, &mut rng);
    assert_eq!(new.neighbors[0].0, 250);
    assert_eq!(collection.snapshot().len(), 300);
    std::fs::remove_dir_all(&dir).ok();
}

/// `search_many` must return bit-identical results for every thread
/// count, and `search_parallel` must agree with the serial merge.
#[test]
fn parallel_execution_is_bit_identical_to_serial() {
    let dir = tmp_dir("deterministic");
    let dim = 24;
    let rows = gaussian(1200, dim, 11);
    let queries = gaussian(40, dim, 12);
    let mut collection = Collection::open(&dir, config(dim, 300, false)).unwrap();
    for row in rows.chunks_exact(dim) {
        collection.insert(row).unwrap();
    }
    collection.seal().unwrap();
    assert_eq!(collection.n_segments(), 4);
    // Leave a few rows in the memtable so the merge covers both sources.
    for row in gaussian(10, dim, 13).chunks_exact(dim) {
        collection.insert(row).unwrap();
    }

    let serial = collection.search_many(&queries, 10, 16, ParallelOptions::threaded(1));
    for threads in [2usize, 4, 8] {
        let parallel = collection.search_many(&queries, 10, 16, ParallelOptions::threaded(threads));
        assert_eq!(serial.len(), parallel.len());
        for (qi, (a, b)) in serial.iter().zip(parallel.iter()).enumerate() {
            assert_eq!(a.neighbors, b.neighbors, "{threads} threads, query {qi}");
            assert_eq!(a.n_estimated, b.n_estimated);
            assert_eq!(a.n_reranked, b.n_reranked);
        }
    }

    let snapshot = collection.snapshot();
    for qi in 0..5 {
        let query = &queries[qi * dim..(qi + 1) * dim];
        let one = snapshot.search_parallel(query, 10, 16, ParallelOptions::threaded(1));
        let many = snapshot.search_parallel(query, 10, 16, ParallelOptions::threaded(4));
        assert_eq!(one.neighbors, many.neighbors, "query {qi}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
