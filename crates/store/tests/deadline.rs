//! Cooperative cancellation at the snapshot layer: per-query tokens in
//! `search_many_cancellable`, all-or-nothing cancellation in
//! `search_parallel_cancellable`, and the bit-identity guarantee —
//! cancelling one query of a batch changes **nothing** about its
//! batchmates' answers, at any thread count.

use rabitq_store::{CancelToken, Collection, CollectionConfig, ParallelOptions, SearchOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DIM: usize = 8;

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rabitq-deadline-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// A collection with several sealed segments plus memtable rows, so the
/// cancellable fan-out crosses every checkpoint kind.
fn populated(dir: &PathBuf) -> Collection {
    let mut config = CollectionConfig::new(DIM);
    config.memtable_capacity = 16;
    config.auto_compact = false;
    let mut collection = Collection::open(dir, config).unwrap();
    let mut rng = StdRng::seed_from_u64(0xD1A1);
    for _ in 0..100 {
        let v = rabitq_math::rng::standard_normal_vec(&mut rng, DIM);
        collection.insert(&v).unwrap();
    }
    collection
}

fn queries(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(0xD1A2);
    rabitq_math::rng::standard_normal_vec(&mut rng, n * DIM)
}

#[test]
fn uncancelled_batch_matches_plain_search_many_bit_for_bit() {
    let dir = test_dir("match");
    let collection = populated(&dir);
    let snapshot = collection.snapshot();
    let q = queries(6);
    for threads in [1, 4] {
        let opts = ParallelOptions::threaded(threads);
        let plain = snapshot.search_many(&q, 5, 64, opts);
        let tokens = vec![CancelToken::none(); 6];
        let outcomes = snapshot.search_many_cancellable(&q, 5, 64, opts, &tokens);
        assert_eq!(outcomes.len(), plain.len());
        for (out, want) in outcomes.into_iter().zip(&plain) {
            let got = out.into_result().expect("nothing cancelled");
            assert_eq!(got.neighbors, want.neighbors, "threads={threads}");
            assert_eq!(got.n_estimated, want.n_estimated);
            assert_eq!(got.n_reranked, want.n_reranked);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelling_one_query_leaves_batchmates_bit_identical() {
    let dir = test_dir("batchmates");
    let collection = populated(&dir);
    let snapshot = collection.snapshot();
    let q = queries(6);
    let opts = ParallelOptions::threaded(4);
    let healthy = snapshot.search_many(&q, 5, 64, opts);

    // Query 2's client gave up before dispatch; 4's deadline already
    // passed. Both must come back Cancelled, everyone else untouched.
    let tokens: Vec<CancelToken> = (0..6)
        .map(|qi| match qi {
            2 => {
                let t = CancelToken::new();
                t.cancel();
                t
            }
            4 => CancelToken::with_deadline(Instant::now() - Duration::from_millis(1)),
            _ => CancelToken::none(),
        })
        .collect();
    let outcomes = snapshot.search_many_cancellable(&q, 5, 64, opts, &tokens);
    for (qi, out) in outcomes.into_iter().enumerate() {
        match qi {
            2 | 4 => assert!(out.is_cancelled(), "query {qi} must cancel"),
            _ => {
                let got = out.into_result().unwrap();
                assert_eq!(
                    got.neighbors, healthy[qi].neighbors,
                    "batchmate {qi} must be bit-identical to the all-healthy run"
                );
                assert_eq!(got.n_estimated, healthy[qi].n_estimated);
                assert_eq!(got.n_reranked, healthy[qi].n_reranked);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn expired_deadline_cancels_search_parallel() {
    let dir = test_dir("parallel");
    let collection = populated(&dir);
    let snapshot = collection.snapshot();
    let q = queries(1);
    let opts = ParallelOptions::threaded(4);

    let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
    let out = snapshot.search_parallel_cancellable(&q, 5, 64, opts, &expired);
    assert!(out.is_cancelled());

    // A generous deadline completes and matches the uncancelled path.
    let healthy = snapshot.search_parallel(&q, 5, 64, opts);
    let live = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
    match snapshot.search_parallel_cancellable(&q, 5, 64, opts, &live) {
        SearchOutcome::Done(res) => {
            assert_eq!(res.neighbors, healthy.neighbors);
            assert_eq!(res.n_estimated, healthy.n_estimated);
        }
        SearchOutcome::Cancelled => panic!("a far deadline must not cancel"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reader_handle_exposes_cancellable_batches() {
    let dir = test_dir("reader");
    let collection = populated(&dir);
    let reader = collection.reader();
    let q = queries(2);
    let tokens = vec![CancelToken::none(), {
        let t = CancelToken::new();
        t.cancel();
        t
    }];
    let outcomes = reader.search_many_cancellable(&q, 3, 64, ParallelOptions::serial(), &tokens);
    assert!(!outcomes[0].is_cancelled());
    assert!(outcomes[1].is_cancelled());
    std::fs::remove_dir_all(&dir).ok();
}
