//! A persistent, shared worker pool for parallel query execution.
//!
//! The first cut of [`crate::Snapshot::search_many`] spawned scoped
//! threads per call, so every batch paid thread startup — measurably flat
//! multi-thread scaling on short batches (`speedup_mt_over_1t ≈ 1.0` in
//! `BENCH_search.json`). This pool replaces that: worker threads are
//! created **once** per process (lazily, on first parallel call) and park
//! on a condvar between jobs, so dispatching a batch costs one mutex push
//! plus wake-ups instead of N `clone`+`spawn`+`join` cycles.
//!
//! ## Job model
//!
//! A job is `n` independent items and a task closure `Fn(usize)`. Items
//! are claimed dynamically from a shared atomic counter (work-stealing by
//! construction: a slow item never strands work behind a static
//! partition). The **submitting thread always participates** — it claims
//! items like any worker — so a job makes progress even when every pool
//! worker is busy with other jobs, and a pool of size zero degenerates to
//! a serial loop. `max_helpers` bounds how many pool workers may join,
//! which is how callers express a thread budget (`ParallelOptions::threads`)
//! against a shared, fixed-size pool.
//!
//! ## Safety
//!
//! The task closure is borrowed, type-erased, and handed to workers as a
//! raw pointer. The invariant making that sound is the same one scoped
//! threads rely on: [`WorkerPool::run`] does not return until every item
//! has finished, and workers only dereference the pointer after claiming
//! an in-range item — once all items are claimed, late workers observe
//! `next >= n` and drop the job without touching the closure.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One submitted fan-out: `n` items claimed from `next`, completion
/// tracked in `done`.
struct Job {
    /// Type-erased borrow of the caller's task. Only dereferenced for
    /// claimed in-range items; the caller outlives all such calls by
    /// blocking until `done == n`.
    task: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    done: AtomicUsize,
    n: usize,
    /// Pool workers currently attached (the submitter is not counted).
    helpers: AtomicUsize,
    /// Cap on attached pool workers.
    max_helpers: usize,
    panicked: AtomicBool,
    finished: Mutex<bool>,
    finished_cv: Condvar,
}

// SAFETY: the raw task pointer is only dereferenced while the submitting
// thread is blocked in `run`, which keeps the pointee alive; the pointee
// is `Sync`, so shared calls from several threads are allowed.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs items until none remain; flags completion of the
    /// last item. Panics in the task are captured so a poisoned query can
    /// never wedge the pool or the submitter.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            let task = unsafe { &*self.task };
            if catch_unwind(AssertUnwindSafe(|| task(i))).is_err() {
                self.panicked.store(true, Ordering::Relaxed);
            }
            if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
                let mut fin = self.finished.lock().unwrap_or_else(|e| e.into_inner());
                *fin = true;
                self.finished_cv.notify_all();
            }
        }
    }

    /// Whether all items have been claimed (not necessarily finished).
    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.n
    }
}

struct Queue {
    jobs: VecDeque<Arc<Job>>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    work_cv: Condvar,
}

/// A fixed set of persistent worker threads executing submitted fan-outs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Spawns a pool with `size` parked worker threads.
    pub fn new(size: usize) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
        });
        let handles = (0..size)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("rabitq-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            size,
        }
    }

    /// The process-wide pool used by the parallel search paths: sized to
    /// the machine minus one (the submitting thread participates), created
    /// on first use, and never torn down.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| {
            let cores = std::thread::available_parallelism().map_or(2, |p| p.get());
            WorkerPool::new(cores.saturating_sub(1).max(1))
        })
    }

    /// Worker threads in this pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `task(i)` for every `i in 0..n`, each exactly once, with up to
    /// `max_helpers` pool workers assisting the calling thread. Blocks
    /// until all items complete. Items are claimed dynamically, so the
    /// mapping of items to threads is nondeterministic — tasks must make
    /// results depend only on the item index (the seeded-RNG discipline of
    /// the search paths).
    ///
    /// # Panics
    /// Panics if any task invocation panicked (after all items finish).
    pub fn run(&self, n: usize, max_helpers: usize, task: impl Fn(usize) + Sync) {
        if n == 0 {
            return;
        }
        let max_helpers = max_helpers.min(self.size).min(n.saturating_sub(1));
        if max_helpers == 0 {
            for i in 0..n {
                task(i);
            }
            return;
        }
        let task_ref: &(dyn Fn(usize) + Sync) = &task;
        // SAFETY: lifetime erasure justified in the module docs — `run`
        // blocks until `done == n`, after which no worker dereferences.
        let task_ptr: *const (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_ref) };
        let job = Arc::new(Job {
            task: task_ptr,
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            n,
            helpers: AtomicUsize::new(0),
            max_helpers,
            panicked: AtomicBool::new(false),
            finished: Mutex::new(false),
            finished_cv: Condvar::new(),
        });
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.jobs.push_back(job.clone());
        }
        self.shared.work_cv.notify_all();

        // Participate, then wait for stragglers.
        job.work();
        let mut fin = job.finished.lock().unwrap_or_else(|e| e.into_inner());
        while !*fin {
            fin = job.finished_cv.wait(fin).unwrap_or_else(|e| e.into_inner());
        }
        drop(fin);

        // Drop our queue entry eagerly (workers also prune lazily) so the
        // erased pointer never outlives this frame inside the queue.
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.jobs.retain(|j| !Arc::ptr_eq(j, &job));
        }
        assert!(
            !job.panicked.load(Ordering::Relaxed),
            "a parallel search task panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            handle.join().ok();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                q.jobs.retain(|j| !j.exhausted());
                if let Some(job) = q
                    .jobs
                    .iter()
                    .find(|j| j.helpers.load(Ordering::Relaxed) < j.max_helpers)
                {
                    job.helpers.fetch_add(1, Ordering::Relaxed);
                    break job.clone();
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        job.work();
        job.helpers.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_item_exactly_once() {
        let pool = WorkerPool::new(3);
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        pool.run(100, 3, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_items_and_zero_helpers_work() {
        let pool = WorkerPool::new(2);
        pool.run(0, 2, |_| panic!("no items to run"));
        let sum = AtomicU64::new(0);
        pool.run(10, 0, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn concurrent_submitters_share_the_pool() {
        let pool = Arc::new(WorkerPool::new(4));
        let total = Arc::new(AtomicU64::new(0));
        let submitters: Vec<_> = (0..4)
            .map(|_| {
                let pool = pool.clone();
                let total = total.clone();
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        pool.run(32, 4, |i| {
                            total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().unwrap();
        }
        // 4 submitters × 20 runs × Σ(1..=32)
        assert_eq!(total.load(Ordering::Relaxed), 4 * 20 * (32 * 33 / 2));
    }

    #[test]
    fn task_panic_propagates_without_wedging() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, 2, |i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // Pool still serves jobs afterwards.
        let sum = AtomicU64::new(0);
        pool.run(5, 2, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }
}
