//! Typed store errors and the collection health surface.
//!
//! A collection is not binary healthy/broken: a corrupted segment is
//! quarantined and the rest keep serving (**degraded**), and a
//! write-path I/O error freezes mutations while searches continue
//! (**read-only**). [`HealthState`] is the shared, atomically updated
//! record of those conditions; [`HealthReport`] is its point-in-time
//! copy handed to callers (the serving layer's `/stats` and `/healthz`,
//! the CLI's `verify`).

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Why a mutation failed.
#[derive(Debug)]
pub enum StoreError {
    /// The collection froze itself after a write-path I/O error (or an
    /// operator froze it); searches keep working, mutations are
    /// rejected until the collection is reopened on healthy storage.
    ReadOnly {
        /// What flipped the collection read-only.
        reason: String,
    },
    /// The underlying I/O operation failed (this very failure is what
    /// flips the collection read-only for subsequent mutations).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::ReadOnly { reason } => {
                write!(f, "collection is read-only: {reason}")
            }
            StoreError::Io(e) => write!(f, "storage I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::ReadOnly { .. } => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl StoreError {
    /// Whether this is the typed read-only rejection (as opposed to the
    /// I/O error that caused the freeze).
    pub fn is_read_only(&self) -> bool {
        matches!(self, StoreError::ReadOnly { .. })
    }
}

/// Shared mutable health flags, updated by the writer and read by any
/// number of detached readers (lock-free for the flags; the reason and
/// notes take a short mutex only when someone asks for a report).
#[derive(Debug, Default)]
pub struct HealthState {
    read_only: AtomicBool,
    degraded: AtomicBool,
    quarantined: AtomicU64,
    reason: Mutex<Option<String>>,
    notes: Mutex<Vec<String>>,
    /// Whether the current freeze may self-heal: set by fault-induced
    /// freezes (the storage may recover), cleared by operator freezes
    /// (only the operator should unfreeze what an operator froze).
    auto_thaw: AtomicBool,
    /// When the recovery probe last ran (or the freeze happened) — the
    /// cooldown clock for [`HealthState::thaw_probe_due`].
    last_probe: Mutex<Option<std::time::Instant>>,
}

impl HealthState {
    /// Fresh, healthy state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether mutations are currently rejected.
    pub fn is_read_only(&self) -> bool {
        self.read_only.load(Ordering::Acquire)
    }

    /// Whether the collection opened with pieces missing (quarantined
    /// segments) but keeps serving the rest.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Freezes mutations, keeping the first reason (later failures while
    /// already frozen don't overwrite the root cause). Returns whether
    /// this call performed the flip — callers count transitions, not
    /// repeat failures.
    pub fn set_read_only(&self, reason: impl Into<String>) -> bool {
        let flipped = self.freeze(reason);
        if flipped {
            // Operator freezes are deliberate: the recovery probe must
            // not silently undo them.
            self.auto_thaw.store(false, Ordering::Release);
        }
        flipped
    }

    /// [`HealthState::set_read_only`] for fault-induced freezes: marks
    /// the freeze eligible for automatic recovery once the write path
    /// probes healthy again, and starts the probe cooldown clock.
    pub fn set_read_only_recoverable(&self, reason: impl Into<String>) -> bool {
        let flipped = self.freeze(reason);
        if flipped {
            self.auto_thaw.store(true, Ordering::Release);
            if let Ok(mut t) = self.last_probe.lock() {
                *t = Some(std::time::Instant::now());
            }
        }
        flipped
    }

    fn freeze(&self, reason: impl Into<String>) -> bool {
        if !self.read_only.swap(true, Ordering::AcqRel) {
            if let Ok(mut r) = self.reason.lock() {
                r.get_or_insert(reason.into());
            }
            return true;
        }
        false
    }

    /// Whether a recovery probe should run now: the collection is frozen
    /// by a fault (not an operator), and `cooldown` has elapsed since the
    /// freeze or the last probe. A `true` return *consumes* the slot —
    /// the cooldown clock restarts — so probes can't stampede.
    pub fn thaw_probe_due(&self, cooldown: std::time::Duration) -> bool {
        if !self.is_read_only() || !self.auto_thaw.load(Ordering::Acquire) {
            return false;
        }
        let Ok(mut t) = self.last_probe.lock() else {
            return false;
        };
        let now = std::time::Instant::now();
        let due = t.is_none_or(|last| now.duration_since(last) >= cooldown);
        if due {
            *t = Some(now);
        }
        due
    }

    /// Thaws a read-only collection after its write path re-tested
    /// healthy: clears the flag and the stored reason. Returns whether
    /// this call performed the transition (mirroring
    /// [`HealthState::set_read_only`]), so callers count thaws rather
    /// than repeat probes.
    pub fn clear_read_only(&self) -> bool {
        if self.read_only.swap(false, Ordering::AcqRel) {
            if let Ok(mut r) = self.reason.lock() {
                *r = None;
            }
            return true;
        }
        false
    }

    /// Records one quarantined segment and marks the collection degraded.
    pub fn record_quarantine(&self, note: impl Into<String>) {
        self.quarantined.fetch_add(1, Ordering::AcqRel);
        self.degraded.store(true, Ordering::Release);
        self.note(note);
    }

    /// Appends an open-time observation (orphan GC, best-effort repair
    /// failures) to the report's notes.
    pub fn note(&self, note: impl Into<String>) {
        if let Ok(mut notes) = self.notes.lock() {
            notes.push(note.into());
        }
    }

    /// Segments quarantined at open.
    pub fn quarantined_segments(&self) -> u64 {
        self.quarantined.load(Ordering::Acquire)
    }

    /// A point-in-time copy of everything.
    pub fn report(&self) -> HealthReport {
        HealthReport {
            read_only: self.is_read_only(),
            degraded: self.is_degraded(),
            quarantined_segments: self.quarantined_segments(),
            read_only_reason: self.reason.lock().ok().and_then(|r| r.clone()),
            notes: self.notes.lock().map(|n| n.clone()).unwrap_or_default(),
        }
    }
}

/// A point-in-time copy of a collection's health flags.
#[derive(Clone, Debug)]
pub struct HealthReport {
    /// Mutations are rejected with [`StoreError::ReadOnly`].
    pub read_only: bool,
    /// Some segments were quarantined at open; the rest keep serving.
    pub degraded: bool,
    /// Number of segments quarantined at open.
    pub quarantined_segments: u64,
    /// The first write-path failure that froze the collection, if any.
    pub read_only_reason: Option<String>,
    /// Open-time observations: quarantines, orphan GC, repair attempts.
    pub notes: Vec<String>,
}

impl HealthReport {
    /// Whether the collection is fully healthy (writable, nothing lost).
    pub fn is_healthy(&self) -> bool {
        !self.read_only && !self.degraded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_only_keeps_the_first_reason() {
        let h = HealthState::new();
        assert!(!h.is_read_only());
        h.set_read_only("ENOSPC during WAL append");
        h.set_read_only("later noise");
        let report = h.report();
        assert!(report.read_only);
        assert_eq!(
            report.read_only_reason.as_deref(),
            Some("ENOSPC during WAL append")
        );
    }

    #[test]
    fn thaw_clears_flag_and_reason_and_counts_transitions() {
        let h = HealthState::new();
        assert!(!h.clear_read_only(), "thawing a healthy state is a no-op");
        h.set_read_only("transient EIO");
        assert!(h.clear_read_only(), "first thaw performs the transition");
        assert!(!h.clear_read_only(), "repeat thaws don't");
        let report = h.report();
        assert!(!report.read_only);
        assert_eq!(report.read_only_reason, None);
        // A later freeze records its own (new) reason.
        h.set_read_only("second failure");
        assert_eq!(
            h.report().read_only_reason.as_deref(),
            Some("second failure")
        );
    }

    #[test]
    fn quarantine_marks_degraded_and_counts() {
        let h = HealthState::new();
        assert!(h.report().is_healthy());
        h.record_quarantine("seg-000001.rbq: checksum mismatch");
        h.record_quarantine("seg-000003.rbq: truncated");
        let report = h.report();
        assert!(report.degraded);
        assert!(!report.read_only);
        assert_eq!(report.quarantined_segments, 2);
        assert_eq!(report.notes.len(), 2);
        assert!(!report.is_healthy());
    }

    #[test]
    fn thaw_probe_gating() {
        use std::time::Duration;
        let h = HealthState::new();
        assert!(
            !h.thaw_probe_due(Duration::ZERO),
            "healthy: nothing to probe"
        );
        h.set_read_only("maintenance window");
        assert!(
            !h.thaw_probe_due(Duration::ZERO),
            "operator freezes never auto-probe"
        );
        h.clear_read_only();
        h.set_read_only_recoverable("transient EIO");
        assert!(
            !h.thaw_probe_due(Duration::from_secs(3600)),
            "cooldown has not elapsed since the freeze"
        );
        assert!(h.thaw_probe_due(Duration::ZERO), "due once cooldown passes");
        assert!(
            !h.thaw_probe_due(Duration::from_secs(3600)),
            "a granted probe restarts the cooldown clock"
        );
    }

    #[test]
    fn store_error_displays_and_classifies() {
        let ro = StoreError::ReadOnly {
            reason: "frozen".into(),
        };
        assert!(ro.is_read_only());
        assert!(ro.to_string().contains("read-only"));
        let io_err: StoreError = io::Error::from_raw_os_error(28).into();
        assert!(!io_err.is_read_only());
    }
}
