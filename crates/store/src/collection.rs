//! The collection: WAL + memtable + sealed segments behind one mutable,
//! crash-safe, searchable surface.
//!
//! ## Write path
//! Every mutation is appended to the WAL first, then applied in memory.
//! Inserts land in the memtable; when it crosses the configured threshold
//! it **seals**: the rows are rebuilt into an immutable IVF-RaBitQ
//! segment, the segment file and then the manifest are written (each via
//! temp-file + atomic rename + parent-directory fsync), and the WAL is
//! reset.
//!
//! ## Crash recovery
//! Reopening replays the WAL over the manifest's segment set. The ordering
//! of the seal makes every crash window harmless:
//!
//! * crash before the manifest switch → the WAL still holds the rows; the
//!   orphaned segment file is garbage-collected on the next open;
//! * crash between manifest switch and WAL reset → insert records below
//!   the manifest's `wal_floor` are skipped (already in a segment) and
//!   delete records re-apply idempotently;
//! * torn final WAL record → dropped and truncated by [`crate::Wal`].
//!
//! ## Fault containment
//! Durability faults degrade service instead of killing it:
//!
//! * a segment that fails its checksum at open is **quarantined** —
//!   renamed aside (`.quarantined`), dropped from the manifest, noted in
//!   the health report — and the collection opens **degraded**, serving
//!   the remaining segments and the memtable;
//! * a *transient* write-path I/O error (`EIO`, `ENOSPC`, `EINTR`) is
//!   retried with bounded exponential backoff before anyone notices;
//!   only exhausted retries (or a non-transient fault: torn write,
//!   failed fsync) flip the collection **read-only**: searches keep
//!   working on the last consistent state, mutations return the typed
//!   [`StoreError::ReadOnly`], and in-memory state is never left
//!   half-applied. A fault-induced freeze is not permanent: after a
//!   cooldown the next mutation probes the write path and, if storage
//!   healed, the collection **thaws** itself (journaled `read_only` →
//!   `recovered`, counted in `thaws`). A reopen on healthy storage also
//!   resumes writes, and operator freezes never auto-thaw;
//! * stray `*.tmp` staging files and segment files no longer referenced
//!   by the manifest (crash mid-seal / mid-compaction) are removed on
//!   open.
//!
//! All file access routes through the [`StorageIo`] VFS, which is how the
//! crash-matrix tests prove the windows above: they fault every single
//! I/O operation of a workload and assert no acked write is lost, no
//! record is duplicated, and search still answers.
//!
//! ## Read path
//! Every mutation publishes an immutable [`Snapshot`] — (frozen memtable
//! view, `Arc`'d segment list) — into a shared slot. A query loads the
//! current snapshot (an `Arc` clone) and fans out to the memtable view
//! (exact scan) and every segment (the paper's error-bound re-ranked
//! search); the per-source candidates — all carrying **exact** distances
//! — k-way-merge through the same [`rabitq_ivf::TopK`] used inside the
//! IVF index. The result is contract-identical to [`IvfRabitq::search`]:
//! exact squared distances, ascending.
//!
//! Because readers run entirely on their snapshot, they proceed
//! concurrently with `insert`/`seal`/`compact`: the writer does its
//! expensive work privately and swaps the snapshot pointer at the end
//! (see [`crate::snapshot`] for the full concurrency story). Detached
//! [`CollectionReader`] handles serve threads that outlive the writer's
//! `&mut` borrow.

use crate::compaction::{CompactionPolicy, SegmentStats};
use crate::error::{HealthReport, HealthState, StoreError};
use crate::io::{atomic_write, disk_io, StorageIo};
use crate::manifest::{Manifest, SegmentMeta, MANIFEST_FILE};
use crate::memtable::Memtable;
use crate::memview::MemView;
use crate::observe::StoreMetrics;
use crate::segment::Segment;
use crate::snapshot::{CollectionReader, ParallelOptions, Snapshot, SnapshotSlot};
use crate::wal::{Wal, WalRecord};
use rabitq_core::RabitqConfig;
use rabitq_ivf::{IvfConfig, IvfRabitq, SearchResult};
use rand::Rng;
use std::collections::HashSet;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// File name of the write-ahead log within a collection directory.
pub const WAL_FILE: &str = "wal.log";

/// Suffix appended to a corrupted segment file when it is quarantined.
pub const QUARANTINE_SUFFIX: &str = ".quarantined";

/// Tuning for a [`Collection`].
#[derive(Clone, Debug)]
pub struct CollectionConfig {
    /// Vector dimensionality.
    pub dim: usize,
    /// Memtable rows that trigger a seal into a segment.
    pub memtable_capacity: usize,
    /// Quantizer configuration for sealed segments.
    pub rabitq: RabitqConfig,
    /// Template for per-segment IVF builds. `n_clusters` is ignored — each
    /// segment re-derives it from its own row count via the `4√n` rule.
    pub ivf: IvfConfig,
    /// When to merge segments.
    pub policy: CompactionPolicy,
    /// Run the policy automatically after every seal.
    pub auto_compact: bool,
    /// Extra attempts after a *transient* write-path I/O error (`EIO`,
    /// `ENOSPC`, `EINTR`) before the collection freezes read-only.
    /// 0 restores the freeze-on-first-error behavior.
    pub io_retry_attempts: u32,
    /// Base delay of the exponential retry backoff (doubled per attempt,
    /// plus deterministic jitter below one base unit).
    pub io_retry_base: Duration,
    /// Minimum time a fault-frozen collection stays frozen before the
    /// recovery probe re-tests the write path (and between probes). A
    /// successful probe thaws the collection automatically.
    pub thaw_cooldown: Duration,
}

impl CollectionConfig {
    /// Defaults sized for experiment-scale collections.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            memtable_capacity: 4096,
            rabitq: RabitqConfig::default(),
            ivf: IvfConfig::new(1),
            policy: CompactionPolicy::default(),
            auto_compact: true,
            io_retry_attempts: 3,
            io_retry_base: Duration::from_millis(1),
            thaw_cooldown: Duration::from_secs(1),
        }
    }
}

/// A durable, mutable vector collection served by IVF-RaBitQ segments.
pub struct Collection {
    dir: PathBuf,
    config: CollectionConfig,
    manifest: Manifest,
    wal: Wal,
    /// The writer's flat working set — authoritative for sealing.
    memtable: Memtable,
    /// The read-side twin of `memtable`: a persistent op list kept in
    /// lockstep, published to readers inside each snapshot.
    mem_view: MemView,
    segments: Vec<Arc<Segment>>,
    /// The slot readers load snapshots from; shared with every
    /// [`CollectionReader`].
    slot: Arc<SnapshotSlot>,
    next_id: u32,
    /// The VFS all durable writes route through.
    io: Arc<dyn StorageIo>,
    /// Degraded / read-only flags, shared with detached readers.
    health: Arc<HealthState>,
    /// Operational counters, histograms, and the event journal — shared
    /// with detached readers and the serving layer.
    metrics: Arc<StoreMetrics>,
}

/// The manifest entry describing one segment's current state.
fn segment_meta(segment: &Segment) -> SegmentMeta {
    SegmentMeta {
        file: segment.name().to_string(),
        tombstones: segment.tombstones(),
    }
}

/// Whether an I/O error is worth retrying: the kinds a disk or kernel
/// reports for *momentary* conditions. `EIO` and `ENOSPC` both clear in
/// practice (a controller hiccup, a log rotation freeing space); `EINTR`
/// is transient by definition. Torn/short writes and failed fsyncs are
/// *not* retried — they may have left partial bytes behind, so blindly
/// re-running the write could compound the damage.
fn is_transient(e: &io::Error) -> bool {
    matches!(e.raw_os_error(), Some(5) | Some(28)) || e.kind() == io::ErrorKind::Interrupted
}

/// Exponential backoff with deterministic jitter: `base · 2^(attempt-1)`
/// plus an FNV-derived fraction of one base unit, so concurrent
/// collections retrying the same step don't synchronize.
fn backoff_delay(base: Duration, attempt: u32, what: &str) -> Duration {
    let exp = base.saturating_mul(1u32 << (attempt - 1).min(10));
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in what.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h = (h ^ u64::from(attempt)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    exp + base.mul_f64((h % 1000) as f64 / 1000.0)
}

/// Runs a durable-write step, retrying transient failures with bounded
/// exponential backoff; when retries exhaust (or the error is not
/// transient) the collection is flipped read-only (first failure keeps
/// its reason, and the freeze is marked recoverable so the thaw probe
/// may later undo it) and the error is returned typed. Free function so
/// field borrows stay disjoint at call sites — `op` may borrow fields
/// (`wal`, `io`, `dir`) the other arguments don't.
fn retry_or_freeze<T>(
    config: &CollectionConfig,
    health: &HealthState,
    metrics: &StoreMetrics,
    what: &str,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<T, StoreError> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < config.io_retry_attempts && is_transient(&e) => {
                attempt += 1;
                StoreMetrics::bump(&metrics.io_retries);
                metrics
                    .journal
                    .push("io_retry", format!("{what}: {e} (attempt {attempt})"));
                std::thread::sleep(backoff_delay(config.io_retry_base, attempt, what));
            }
            Err(e) => {
                if health.set_read_only_recoverable(format!("{what}: {e}")) {
                    StoreMetrics::bump(&metrics.read_only_flips);
                    metrics.journal.push("read_only", format!("{what}: {e}"));
                }
                return Err(StoreError::Io(e));
            }
        }
    }
}

impl Collection {
    /// Opens the collection at `dir` on the real filesystem; see
    /// [`Collection::open_with_io`].
    pub fn open(dir: &Path, config: CollectionConfig) -> io::Result<Self> {
        Self::open_with_io(dir, config, disk_io())
    }

    /// Opens the collection at `dir`, creating it (and the directory) if
    /// absent, and replays any WAL left by the last process. Corrupted
    /// segments are quarantined (the collection opens degraded rather
    /// than failing); orphaned staging/superseded files are removed.
    ///
    /// For an existing collection the manifest's quantizer configuration
    /// wins over `config.rabitq` — the sealed segments were built with
    /// it, and compaction must keep building with it. The runtime knobs
    /// (`memtable_capacity`, `policy`, `auto_compact`) always come from
    /// `config`.
    ///
    /// Only deterministic corruption (checksum mismatch, truncation,
    /// garbage) triggers quarantine; a transient I/O error reading a
    /// segment fails the open instead, so a flaky disk can never cause
    /// data to be dropped from the manifest.
    pub fn open_with_io(
        dir: &Path,
        mut config: CollectionConfig,
        io: Arc<dyn StorageIo>,
    ) -> io::Result<Self> {
        assert!(config.dim > 0, "dimension must be positive");
        assert!(
            config.memtable_capacity > 0,
            "memtable capacity must be positive"
        );
        std::fs::create_dir_all(dir)?;
        let health = Arc::new(HealthState::new());
        let metrics = Arc::new(StoreMetrics::new());

        let manifest_path = dir.join(MANIFEST_FILE);
        let mut manifest = if io.file_len(&manifest_path)?.is_some() {
            let mut m = Manifest::load_with_io(&manifest_path, io.as_ref())?;
            if m.dim != config.dim {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "collection is {}-dimensional, config says {}",
                        m.dim, config.dim
                    ),
                ));
            }
            config.rabitq = m.rabitq;
            m.memtable_capacity = config.memtable_capacity;
            m
        } else {
            // Write the fresh manifest immediately so the directory is a
            // valid collection (openable by `open_existing`) before the
            // first seal, and the chosen quantizer config is durable.
            let mut m = Manifest::new(config.dim);
            m.rabitq = config.rabitq;
            m.memtable_capacity = config.memtable_capacity;
            m.store_with_io(&manifest_path, io.as_ref())?;
            m
        };

        // Load the segment set, quarantining deterministic corruption:
        // the damaged file is renamed aside for forensics, the entry is
        // dropped, and the collection serves what remains (degraded).
        let mut segments = Vec::with_capacity(manifest.segments.len());
        let mut kept = Vec::with_capacity(manifest.segments.len());
        // Corrupt files whose quarantine rename failed: they keep their
        // seg-*.rbq name yet leave the manifest, so the orphan GC below
        // must be told to leave them alone — deleting them would turn a
        // transient rename failure into permanent loss of the evidence.
        let mut quarantine_failed: HashSet<String> = HashSet::new();
        for meta in &manifest.segments {
            let path = dir.join(&meta.file);
            let t0 = Instant::now();
            match Segment::load_with_io(&path, io.as_ref()) {
                Ok(segment) => {
                    StoreMetrics::bump(&metrics.segment_opens);
                    metrics.segment_open_us.record(t0.elapsed());
                    for &id in &meta.tombstones {
                        segment.delete(id);
                    }
                    segments.push(Arc::new(segment));
                    kept.push(meta.clone());
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                    ) =>
                {
                    let quarantine = format!("{}{QUARANTINE_SUFFIX}", meta.file);
                    match io.rename(&path, &dir.join(&quarantine)) {
                        Ok(()) => {
                            io.sync_dir(dir).ok();
                            let note = format!(
                                "segment {} corrupt ({e}); quarantined as {quarantine}",
                                meta.file
                            );
                            StoreMetrics::bump(&metrics.quarantines);
                            metrics.journal.push("quarantine", note.clone());
                            health.record_quarantine(note);
                        }
                        Err(re) => {
                            quarantine_failed.insert(meta.file.clone());
                            let note = format!(
                                "segment {} corrupt ({e}); quarantine rename failed: {re}",
                                meta.file
                            );
                            StoreMetrics::bump(&metrics.quarantines);
                            metrics.journal.push("quarantine", note.clone());
                            health.record_quarantine(note);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {
                    // Already renamed aside by a crash mid-quarantine, or
                    // externally removed: either way the rows are gone.
                    let note =
                        format!("segment {} missing ({e}); dropped from manifest", meta.file);
                    StoreMetrics::bump(&metrics.quarantines);
                    metrics.journal.push("quarantine", note.clone());
                    health.record_quarantine(note);
                }
                Err(e) => return Err(e),
            }
        }
        if kept.len() != manifest.segments.len() {
            manifest.segments = kept;
            // Best-effort: persist the post-quarantine manifest so later
            // opens don't re-walk the same damage. Failure just leaves
            // the drop in memory; the next open re-detects it.
            if let Err(e) = manifest.store_with_io(&manifest_path, io.as_ref()) {
                health.note(format!("could not persist post-quarantine manifest: {e}"));
            }
        }

        // Orphan GC (best-effort): `*.tmp` staging files and segment
        // files the manifest no longer references are crash leftovers
        // from mid-seal / mid-compaction; without this they accumulate
        // forever. Quarantined files are deliberately kept.
        match io.list_dir(dir) {
            Ok(names) => {
                let referenced: HashSet<&str> =
                    manifest.segments.iter().map(|m| m.file.as_str()).collect();
                for name in names {
                    if name == MANIFEST_FILE
                        || name == WAL_FILE
                        || name.ends_with(QUARANTINE_SUFFIX)
                        || referenced.contains(name.as_str())
                        || quarantine_failed.contains(name.as_str())
                    {
                        continue;
                    }
                    let orphan = name.ends_with(".tmp")
                        || (name.starts_with("seg-") && name.ends_with(".rbq"));
                    if orphan {
                        match io.remove_file(&dir.join(&name)) {
                            Ok(()) => health.note(format!("removed orphaned file {name}")),
                            Err(e) => {
                                health.note(format!("could not remove orphaned file {name}: {e}"))
                            }
                        }
                    }
                }
            }
            Err(e) => health.note(format!("orphan scan failed: {e}")),
        }

        let (wal, replay) = Wal::open_with_io(&dir.join(WAL_FILE), config.dim, &io)?;
        let mut memtable = Memtable::new(config.dim);
        let mut mem_view = MemView::new();
        let mut next_id = manifest.next_id;
        for record in replay.records {
            match record {
                WalRecord::Insert { id, vector } => {
                    // Below the floor ⇒ already durable in a segment (the
                    // crash hit between manifest switch and WAL reset).
                    if id >= manifest.wal_floor && !memtable.contains(id) {
                        memtable.insert(id, &vector);
                        mem_view.insert(id, &vector);
                    }
                    next_id = next_id.max(id + 1);
                }
                WalRecord::Delete { id } => {
                    // Idempotent: re-applying an already-manifested
                    // tombstone (or one whose row was compacted away) is a
                    // no-op.
                    if memtable.delete(id) {
                        mem_view.delete(id);
                    } else {
                        for segment in &segments {
                            if segment.delete(id) {
                                break;
                            }
                        }
                    }
                }
            }
        }

        metrics.journal.push(
            "open",
            format!(
                "{} segments, {} quarantined, {} memtable rows replayed",
                segments.len(),
                health.quarantined_segments(),
                memtable.len()
            ),
        );

        let slot = Arc::new(SnapshotSlot::new(Snapshot::new(
            config.dim,
            mem_view.clone(),
            segments.clone(),
        )));
        Ok(Self {
            dir: dir.to_path_buf(),
            config,
            manifest,
            wal,
            memtable,
            mem_view,
            segments,
            slot,
            next_id,
            io,
            health,
            metrics,
        })
    }

    /// Opens an existing collection, taking the dimensionality, quantizer
    /// configuration, and memtable capacity from its manifest (for
    /// tooling that only knows the directory).
    pub fn open_existing(dir: &Path) -> io::Result<Self> {
        let manifest = Manifest::load(&dir.join(MANIFEST_FILE))?;
        let mut config = CollectionConfig::new(manifest.dim);
        config.rabitq = manifest.rabitq;
        config.memtable_capacity = manifest.memtable_capacity.max(1);
        Self::open(dir, config)
    }

    /// Collection directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration this collection was opened with.
    pub fn config(&self) -> &CollectionConfig {
        &self.config
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Live vectors across memtable and segments.
    pub fn len(&self) -> usize {
        self.memtable.len() + self.segments.iter().map(|s| s.n_live()).sum::<usize>()
    }

    /// Whether no live vectors exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed segments.
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Rows currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// A point-in-time copy of the collection's health: degraded /
    /// read-only flags, quarantined-segment count, open-time notes.
    pub fn health(&self) -> HealthReport {
        self.health.report()
    }

    /// Freezes mutations administratively (maintenance, storage about to
    /// go away). Mutations return [`StoreError::ReadOnly`] until the
    /// collection is reopened; searches are unaffected.
    pub fn set_read_only(&self, reason: &str) {
        if self.health.set_read_only(reason) {
            StoreMetrics::bump(&self.metrics.read_only_flips);
            self.metrics.journal.push("read_only", reason.to_string());
        }
    }

    /// The collection's operational counters, histograms, and event
    /// journal — the same shared instance every [`CollectionReader`]
    /// carries, so serving layers can read it without the writer.
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// Explicitly fsyncs the WAL file, making every acked mutation
    /// durable against power loss (appends alone only flush to the OS).
    /// An fsync failure freezes the collection like any other durability
    /// fault.
    pub fn sync_wal(&mut self) -> Result<(), StoreError> {
        self.check_writable()?;
        let t0 = Instant::now();
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "WAL fsync",
            || self.wal.sync(),
        )?;
        StoreMetrics::bump(&self.metrics.wal_syncs);
        self.metrics.wal_sync_us.record(t0.elapsed());
        Ok(())
    }

    /// Rejects mutations once the collection froze itself — unless the
    /// freeze was fault-induced, the thaw cooldown has elapsed, and the
    /// recovery probe finds the write path healthy again, in which case
    /// the collection thaws and the mutation proceeds.
    fn check_writable(&self) -> Result<(), StoreError> {
        if !self.health.is_read_only() {
            return Ok(());
        }
        if self.health.thaw_probe_due(self.config.thaw_cooldown) && self.probe_write_path() {
            if self.health.clear_read_only() {
                StoreMetrics::bump(&self.metrics.thaws);
                self.metrics.journal.push(
                    "recovered",
                    "write-path probe succeeded; thawed read-only collection".to_string(),
                );
            }
            return Ok(());
        }
        Err(StoreError::ReadOnly {
            reason: self
                .health
                .report()
                .read_only_reason
                .unwrap_or_else(|| "collection was frozen".into()),
        })
    }

    /// Re-tests the write path: create, fsync, and remove a small probe
    /// file through the same VFS the real writes use. The `.tmp` suffix
    /// means a leftover probe (crash mid-probe) is collected by the
    /// orphan GC on the next open.
    fn probe_write_path(&self) -> bool {
        let probe = self.dir.join("thaw-probe.tmp");
        self.io.create_write(&probe, b"thaw-probe").is_ok() && self.io.remove_file(&probe).is_ok()
    }

    /// Publishes the current in-memory state as a fresh immutable
    /// snapshot. O(1) plus one small allocation; called after every
    /// mutation so readers always observe a consistent point-in-time view.
    fn publish(&self) {
        self.slot.store(Snapshot::new(
            self.config.dim,
            self.mem_view.clone(),
            self.segments.clone(),
        ));
        StoreMetrics::bump(&self.metrics.publishes);
    }

    /// The current immutable snapshot — a cheap `Arc` clone the caller
    /// can search (also from other threads) while this collection keeps
    /// mutating.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.slot.load()
    }

    /// A detached, clonable read handle that always sees the latest
    /// snapshot. Hand these to reader threads before taking `&mut self`
    /// for writer work; see the concurrent-reader tests.
    pub fn reader(&self) -> CollectionReader {
        CollectionReader {
            slot: self.slot.clone(),
            dim: self.config.dim,
            health: self.health.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// Appends one vector, returning its permanent id. The write is WAL'd
    /// before it is visible; a seal is triggered when the memtable fills.
    ///
    /// `Ok(id)` means the row is durable (WAL'd) and visible — even if a
    /// triggered seal/compaction subsequently failed, in which case the
    /// collection flips read-only for later mutations but this row
    /// survives any reopen. An `Err` means the row was *not* acked: it
    /// is either absent after reopen or dropped with the torn WAL tail.
    pub fn insert(&mut self, vector: &[f32]) -> Result<u32, StoreError> {
        assert_eq!(vector.len(), self.config.dim, "vector dimensionality");
        self.check_writable()?;
        let id = self.next_id;
        let t0 = Instant::now();
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "WAL append (insert)",
            || self.wal.append_insert(id, vector),
        )?;
        StoreMetrics::bump(&self.metrics.wal_appends);
        self.metrics.wal_append_us.record(t0.elapsed());
        self.memtable.insert(id, vector);
        self.mem_view.insert(id, vector);
        self.next_id = self.next_id.checked_add(1).expect("id space exhausted");
        if self.memtable.len() >= self.config.memtable_capacity {
            // The insert itself is durable; a failed seal freezes future
            // mutations (health carries the cause) but must not retract
            // this ack.
            if self.seal().is_err() {
                self.publish();
            }
        } else {
            self.publish();
        }
        Ok(id)
    }

    /// Tombstones `id` wherever it lives. Returns `false` (and writes
    /// nothing) if the id is unknown or already deleted.
    pub fn delete(&mut self, id: u32) -> Result<bool, StoreError> {
        self.check_writable()?;
        if self.memtable.contains(id) {
            let t0 = Instant::now();
            retry_or_freeze(
                &self.config,
                &self.health,
                &self.metrics,
                "WAL append (delete)",
                || self.wal.append_delete(id),
            )?;
            StoreMetrics::bump(&self.metrics.wal_appends);
            self.metrics.wal_append_us.record(t0.elapsed());
            self.memtable.delete(id);
            self.mem_view.delete(id);
            self.publish();
            return Ok(true);
        }
        let Some(seg) = self.segments.iter().position(|s| s.contains_live(id)) else {
            return Ok(false);
        };
        let t0 = Instant::now();
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "WAL append (delete)",
            || self.wal.append_delete(id),
        )?;
        StoreMetrics::bump(&self.metrics.wal_appends);
        self.metrics.wal_append_us.record(t0.elapsed());
        // The tombstone bitmap is atomic, so this is immediately visible
        // to in-flight snapshots too; republish regardless so the slot
        // always reflects the latest committed state.
        self.segments[seg].delete(id);
        self.publish();
        Ok(true)
    }

    /// Searches across memtable and all segments. Exact squared distances,
    /// ascending — the same contract as [`IvfRabitq::search`]. Runs on the
    /// current snapshot, so it proceeds concurrently with writer work
    /// happening through other handles.
    pub fn search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rng: &mut R,
    ) -> SearchResult {
        self.snapshot().search(query, k, nprobe, rng)
    }

    /// Batch search with optional multi-threaded execution: `queries` is a
    /// flat `n × dim` buffer, the result is one [`SearchResult`] per query
    /// in query order, bit-identical for every `opts.threads` (see
    /// [`Snapshot::search_many`]).
    pub fn search_many(
        &self,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
    ) -> Vec<SearchResult> {
        self.snapshot().search_many(queries, k, nprobe, opts)
    }

    /// Seals the memtable into a new immutable segment (no-op when empty).
    /// Ordering is the crash-safety contract: segment file → manifest
    /// switch → WAL reset. In-memory state only changes once both durable
    /// writes succeed, so an I/O error leaves the collection exactly as it
    /// was (rows still served from the memtable, still covered by the
    /// WAL) — frozen read-only with the cause in [`Collection::health`].
    pub fn seal(&mut self) -> Result<(), StoreError> {
        self.check_writable()?;
        if self.memtable.is_empty() {
            return Ok(());
        }
        let t0 = Instant::now();
        let rows = self.memtable.len();
        let name = format!("seg-{:06}.rbq", self.manifest.next_segment_seq);
        let segment = Segment::build(
            name.clone(),
            self.memtable.ids().to_vec(),
            self.memtable.data(),
            self.config.dim,
            &self.config.ivf,
            self.config.rabitq,
        );
        let mut bytes = Vec::new();
        segment.write(&mut bytes)?;
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "segment write (seal)",
            || atomic_write(self.io.as_ref(), &self.dir.join(&name), &bytes),
        )?;

        let mut staged = self.manifest.clone();
        staged.next_segment_seq += 1;
        staged.next_id = self.next_id;
        staged.wal_floor = self.next_id;
        staged.segments = self.segment_metas();
        staged.segments.push(SegmentMeta {
            file: name.clone(),
            tombstones: Vec::new(),
        });
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "manifest switch (seal)",
            || staged.store_with_io(&self.dir.join(MANIFEST_FILE), self.io.as_ref()),
        )?;

        // Durable — commit, then let readers see the new segment set.
        self.manifest = staged;
        self.segments.push(Arc::new(segment));
        self.memtable.clear();
        self.mem_view.clear();
        self.publish();
        StoreMetrics::bump(&self.metrics.seals);
        self.metrics.seal_us.record(t0.elapsed());
        self.metrics.journal.push(
            "seal",
            format!("{rows} rows -> {name} ({} bytes)", bytes.len()),
        );
        // A failed WAL reset is harmless for consistency (records below
        // the floor are skipped on replay) but freezes the collection:
        // the log can no longer be trusted to accept appends.
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "WAL reset (seal)",
            || self.wal.reset(),
        )?;

        if self.config.auto_compact {
            self.maybe_compact()?;
        }
        Ok(())
    }

    /// Runs the configured policy; merges whatever it picks. Returns
    /// whether a merge happened.
    pub fn maybe_compact(&mut self) -> Result<bool, StoreError> {
        let stats: Vec<SegmentStats> = self
            .segments
            .iter()
            .map(|s| SegmentStats {
                n_total: s.len(),
                n_live: s.n_live(),
            })
            .collect();
        let plan = self.config.policy.plan(&stats);
        if plan.is_empty() {
            return Ok(false);
        }
        self.compact_indices(&plan)?;
        Ok(true)
    }

    /// Force-merges **all** segments (and reclaims every tombstone) into
    /// one rebuilt index. Returns whether anything changed.
    pub fn compact(&mut self) -> Result<bool, StoreError> {
        let needs = self.segments.len() > 1 || self.segments.iter().any(|s| s.n_live() < s.len());
        if !needs {
            return Ok(false);
        }
        let all: Vec<usize> = (0..self.segments.len()).collect();
        self.compact_indices(&all)?;
        Ok(true)
    }

    /// Merges the segments at `indices` (sorted, deduplicated) into one
    /// new segment holding only their live rows. Ordering mirrors the
    /// seal: new file → manifest switch → old files unlinked; a crash
    /// anywhere leaves either the old set or the new set referenced, and
    /// the loser's files are orphans the next open removes.
    fn compact_indices(&mut self, indices: &[usize]) -> Result<(), StoreError> {
        self.check_writable()?;
        let t0 = Instant::now();
        let mut ids = Vec::new();
        let mut data = Vec::new();
        for &i in indices {
            for (id, vector) in self.segments[i].live_entries() {
                ids.push(id);
                data.extend_from_slice(vector);
            }
        }
        // Keep ids ascending so merged segments look like sealed ones.
        let mut order: Vec<usize> = (0..ids.len()).collect();
        order.sort_unstable_by_key(|&r| ids[r]);
        let dim = self.config.dim;
        let (sorted_ids, sorted_data) = order.iter().fold(
            (
                Vec::with_capacity(ids.len()),
                Vec::with_capacity(data.len()),
            ),
            |(mut si, mut sd), &r| {
                si.push(ids[r]);
                sd.extend_from_slice(&data[r * dim..(r + 1) * dim]);
                (si, sd)
            },
        );

        let bytes_in = (sorted_data.len() * std::mem::size_of::<f32>()) as u64;
        let n_rows = sorted_ids.len();
        let mut bytes_out = 0u64;
        let replacement = if sorted_ids.is_empty() {
            None // every row was tombstoned: the segments just disappear
        } else {
            let name = format!("seg-{:06}.rbq", self.manifest.next_segment_seq);
            let segment = Segment::build(
                name.clone(),
                sorted_ids,
                &sorted_data,
                dim,
                &self.config.ivf,
                self.config.rabitq,
            );
            let mut bytes = Vec::new();
            segment.write(&mut bytes)?;
            bytes_out = bytes.len() as u64;
            retry_or_freeze(
                &self.config,
                &self.health,
                &self.metrics,
                "segment write (compaction)",
                || atomic_write(self.io.as_ref(), &self.dir.join(&name), &bytes),
            )?;
            Some(segment)
        };

        // Stage the post-merge manifest; in-memory state only changes
        // after the rename lands.
        let mut staged = self.manifest.clone();
        if replacement.is_some() {
            staged.next_segment_seq += 1;
        }
        staged.segments = self
            .segments
            .iter()
            .enumerate()
            .filter(|(i, _)| !indices.contains(i))
            .map(|(_, s)| segment_meta(s))
            .chain(replacement.iter().map(|s| SegmentMeta {
                file: s.name().to_string(),
                tombstones: Vec::new(),
            }))
            .collect();
        retry_or_freeze(
            &self.config,
            &self.health,
            &self.metrics,
            "manifest switch (compaction)",
            || staged.store_with_io(&self.dir.join(MANIFEST_FILE), self.io.as_ref()),
        )?;

        // Durable — commit and publish; the merged-away segments stay
        // alive (in memory) as long as some snapshot still references
        // them, then free via Arc drop. Their files unlink immediately —
        // in-memory readers never reopen them, and a failed unlink just
        // leaves an orphan for the next open's GC.
        self.manifest = staged;
        let mut old_files = Vec::with_capacity(indices.len());
        for &i in indices.iter().rev() {
            old_files.push(self.segments.remove(i).name().to_string());
        }
        if let Some(segment) = replacement {
            self.segments.push(Arc::new(segment));
        }
        self.publish();
        for file in old_files {
            self.io.remove_file(&self.dir.join(file)).ok();
        }
        StoreMetrics::bump(&self.metrics.compactions);
        self.metrics.compaction_us.record(t0.elapsed());
        StoreMetrics::add(&self.metrics.compaction_bytes_in, bytes_in);
        StoreMetrics::add(&self.metrics.compaction_bytes_out, bytes_out);
        self.metrics.journal.push(
            "compaction",
            format!(
                "{} segments -> {n_rows} live rows ({bytes_in} bytes in, {bytes_out} bytes out)",
                indices.len()
            ),
        );
        Ok(())
    }

    /// The manifest entries for the current in-memory segment set.
    fn segment_metas(&self) -> Vec<SegmentMeta> {
        self.segments.iter().map(|s| segment_meta(s)).collect()
    }

    /// Builds a throwaway [`IvfRabitq`] over the collection's current live
    /// rows — the "fresh rebuild" baseline used by benchmarks and the
    /// compaction acceptance test. Returns the index and the global id of
    /// each of its rows.
    pub fn to_flat_index(&self) -> Option<(IvfRabitq, Vec<u32>)> {
        let dim = self.config.dim;
        let mut ids = Vec::new();
        let mut data = Vec::new();
        for segment in &self.segments {
            for (id, vector) in segment.live_entries() {
                ids.push(id);
                data.extend_from_slice(vector);
            }
        }
        for (id, vector) in self.memtable.entries() {
            ids.push(id);
            data.extend_from_slice(vector);
        }
        if ids.is_empty() {
            return None;
        }
        let mut ivf = self.config.ivf.clone();
        ivf.n_clusters = IvfConfig::clusters_for(ids.len()).min(ids.len());
        let index = IvfRabitq::build(&data, dim, &ivf, self.config.rabitq);
        Some((index, ids))
    }
}
