//! A persistent (immutable, structurally shared) view of the memtable.
//!
//! The writer's flat [`crate::Memtable`] is fast to seal but cannot be
//! shared with concurrent readers — mutation would race the scan. The
//! [`MemView`] is its read-side twin: a cons list of insert/delete
//! operations where every mutation prepends one `Arc` node. Publishing a
//! new collection snapshot is therefore O(1), structurally shares all
//! prior rows, and older snapshots keep seeing exactly the rows that were
//! live when they were taken — the memtable half of the snapshot
//! isolation story.
//!
//! The list is newest-first. Ids are never reused, so a `Delete` node is
//! always closer to the head than the `Insert` it cancels; a single
//! forward walk that remembers the deletes it has passed resolves
//! liveness exactly. The chain is bounded by the seal threshold, and
//! [`MemNode::drop`] unwinds it iteratively so a long chain can never
//! overflow the stack with recursive `Arc` drops — whichever view drops
//! last.

use rabitq_ivf::TopK;
use rabitq_math::vecs;
use std::sync::Arc;

enum MemOp {
    Insert { id: u32, row: Box<[f32]> },
    Delete { id: u32 },
}

struct MemNode {
    prev: Option<Arc<MemNode>>,
    /// Live rows at and below this node (maintained incrementally).
    n_live: usize,
    op: MemOp,
}

impl Drop for MemNode {
    /// Iterative chain teardown. The naive derived drop would recurse down
    /// `prev` (one stack frame per node — a long chain overflows the
    /// stack), and hanging the unwind off `MemView` alone is racy: two
    /// views dropping a shared chain concurrently can both lose the
    /// `try_unwrap` race and leave the final decrement to a plain `Arc`
    /// drop. Unwinding *here* makes every path iterative: each node freed
    /// in the loop has had its `prev` taken, so its own drop is O(1), and
    /// a lost race just hands the remaining chain to whichever owner drops
    /// last — whose `MemNode::drop` unwinds iteratively again.
    fn drop(&mut self) {
        let mut head = self.prev.take();
        while let Some(node) = head {
            match Arc::try_unwrap(node) {
                Ok(mut owned) => head = owned.prev.take(),
                Err(_) => break, // shared: the other owner unwinds later
            }
        }
    }
}

/// A frozen, structurally shared memtable view (see module docs).
#[derive(Default)]
pub struct MemView {
    head: Option<Arc<MemNode>>,
}

impl Clone for MemView {
    fn clone(&self) -> Self {
        Self {
            head: self.head.clone(),
        }
    }
}

impl MemView {
    /// An empty view.
    pub fn new() -> Self {
        Self::default()
    }

    /// Live rows visible in this view.
    pub fn len(&self) -> usize {
        self.head.as_ref().map_or(0, |n| n.n_live)
    }

    /// Whether no live rows are visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records an insert. O(1); existing clones are unaffected.
    pub(crate) fn insert(&mut self, id: u32, row: &[f32]) {
        let n_live = self.len() + 1;
        self.head = Some(Arc::new(MemNode {
            prev: self.head.take(),
            n_live,
            op: MemOp::Insert {
                id,
                row: row.into(),
            },
        }));
    }

    /// Records a delete of an id **currently live in this view** (the
    /// caller checks via [`MemView::contains`]). O(1).
    pub(crate) fn delete(&mut self, id: u32) {
        debug_assert!(self.contains(id), "delete of id {id} not live in view");
        let n_live = self.len() - 1;
        self.head = Some(Arc::new(MemNode {
            prev: self.head.take(),
            n_live,
            op: MemOp::Delete { id },
        }));
    }

    /// Drops this view's chain reference. Called when the memtable seals
    /// into a segment; the teardown itself is the iterative
    /// [`MemNode::drop`].
    pub(crate) fn clear(&mut self) {
        self.head = None;
    }

    /// Whether `id` is live in this view. The first node mentioning the id
    /// decides: a `Delete` means dead, an `Insert` means live (ids are
    /// unique, deletes always sit above their insert).
    pub fn contains(&self, id: u32) -> bool {
        let mut cursor = self.head.as_deref();
        while let Some(node) = cursor {
            match node.op {
                MemOp::Delete { id: d } if d == id => return false,
                MemOp::Insert { id: i, .. } if i == id => return true,
                _ => {}
            }
            cursor = node.prev.as_deref();
        }
        false
    }

    /// Exact-scans every live row into `top`, returning the number of
    /// exact distances computed (the view's contribution to
    /// `n_reranked`). Matches [`crate::Memtable::scan_into`]'s contract.
    ///
    /// Two passes over the chain: collect + sort the tombstoned ids, then
    /// scan inserts with a binary-search liveness check — O(n + d·log d)
    /// instead of O(n·d) under delete churn. Checking an insert against
    /// the *full* delete set is exact: ids are unique and a delete is only
    /// recorded for an id inserted earlier, so no delete can refer to a
    /// different row.
    pub fn scan_into(&self, query: &[f32], top: &mut TopK) -> usize {
        let mut deleted: Vec<u32> = Vec::new();
        let mut cursor = self.head.as_deref();
        while let Some(node) = cursor {
            if let MemOp::Delete { id } = node.op {
                deleted.push(id);
            }
            cursor = node.prev.as_deref();
        }
        deleted.sort_unstable();

        let mut scanned = 0usize;
        let mut cursor = self.head.as_deref();
        while let Some(node) = cursor {
            if let MemOp::Insert { id, row } = &node.op {
                if deleted.binary_search(id).is_err() {
                    assert_eq!(row.len(), query.len(), "query dimensionality");
                    top.push(*id, vecs::l2_sq(row, query));
                    scanned += 1;
                }
            }
            cursor = node.prev.as_deref();
        }
        scanned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn top_ids(view: &MemView, query: &[f32], k: usize) -> Vec<u32> {
        let mut top = TopK::new(k);
        view.scan_into(query, &mut top);
        top.into_sorted().into_iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn snapshots_are_isolated_from_later_mutations() {
        let mut view = MemView::new();
        view.insert(1, &[0.0, 0.0]);
        view.insert(2, &[1.0, 0.0]);
        let frozen = view.clone();
        view.insert(3, &[0.1, 0.0]);
        view.delete(1);

        assert_eq!(frozen.len(), 2);
        assert!(frozen.contains(1));
        assert!(!frozen.contains(3));
        assert_eq!(top_ids(&frozen, &[0.0, 0.0], 3), vec![1, 2]);

        assert_eq!(view.len(), 2);
        assert!(!view.contains(1));
        assert_eq!(top_ids(&view, &[0.0, 0.0], 3), vec![3, 2]);
    }

    #[test]
    fn delete_then_scan_skips_the_row() {
        let mut view = MemView::new();
        view.insert(7, &[5.0]);
        view.insert(8, &[1.0]);
        view.delete(7);
        assert_eq!(view.len(), 1);
        let mut top = TopK::new(5);
        assert_eq!(view.scan_into(&[0.0], &mut top), 1);
        assert_eq!(top.into_sorted(), vec![(8, 1.0)]);
    }

    #[test]
    fn clear_resets_and_clones_survive() {
        let mut view = MemView::new();
        for id in 0..100 {
            view.insert(id, &[id as f32]);
        }
        let frozen = view.clone();
        view.clear();
        assert!(view.is_empty());
        assert_eq!(frozen.len(), 100);
        assert!(frozen.contains(42));
    }

    #[test]
    fn long_chains_drop_without_stack_overflow() {
        let mut view = MemView::new();
        for id in 0..200_000 {
            view.insert(id, &[0.0]);
        }
        drop(view); // must not recurse 200k frames deep
    }

    #[test]
    fn shared_long_chains_drop_cleanly_from_either_side() {
        // Two views sharing one long chain: whichever drops last must
        // still tear down iteratively (the MemNode::drop path).
        let mut view = MemView::new();
        for id in 0..100_000 {
            view.insert(id, &[0.0]);
        }
        let shared = view.clone();
        for id in 100_000..200_000 {
            view.insert(id, &[0.0]);
        }
        drop(view); // unwinds its private suffix, stops at the share point
        drop(shared); // last owner: unwinds the remaining 100k nodes
    }

    #[test]
    fn view_scan_matches_flat_memtable_scan() {
        // The MemView is the read-side twin of the flat Memtable; the two
        // scans must agree on the same operation sequence (including
        // deletes), so the contracts cannot silently diverge.
        let mut view = MemView::new();
        let mut flat = crate::Memtable::new(2);
        let rows: Vec<[f32; 2]> = (0..50).map(|i| [i as f32, (i * 7 % 13) as f32]).collect();
        for (id, row) in rows.iter().enumerate() {
            view.insert(id as u32, row);
            flat.insert(id as u32, row);
        }
        for id in [3u32, 17, 44] {
            view.delete(id);
            flat.delete(id);
        }
        let query = [2.5f32, 4.0];
        let mut top_a = TopK::new(10);
        let mut top_b = TopK::new(10);
        assert_eq!(
            view.scan_into(&query, &mut top_a),
            flat.scan_into(&query, &mut top_b)
        );
        assert_eq!(top_a.into_sorted(), top_b.into_sorted());
    }
}
