//! The storage VFS: every byte the store reads or writes goes through a
//! [`StorageIo`], so durability logic can be proven against injected
//! faults instead of trusted on the happy path.
//!
//! Two implementations ship: [`DiskIo`], the real filesystem (with the
//! parent-directory fsyncs that make atomic renames actually durable),
//! and [`FaultIo`], a scripted wrapper that injects torn writes, short
//! writes, failed fsyncs, `EIO`, and `ENOSPC` at precise operation
//! indices — the engine of the crash-matrix tests, which fault *every*
//! I/O operation of a workload and assert recovery invariants.
//!
//! Operations are deliberately coarse (whole-file read, create+write,
//! rename, append, truncate, sync): each one is a natural crash point,
//! so "fault at operation `i`" enumerates exactly the states a real
//! crash or disk error can leave behind.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A file handle for append-mostly logs (the WAL): sequential appends,
/// explicit sync, and truncation for torn-tail repair / reset.
pub trait LogFile: Send {
    /// Appends `bytes` at the current end and flushes to the OS.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Forces written data to stable storage (`fsync`).
    fn sync(&mut self) -> io::Result<()>;
    /// Truncates the file to `len` bytes; subsequent appends land there.
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// The virtual filesystem every persistence module routes through.
pub trait StorageIo: Send + Sync {
    /// Reads a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Creates (truncating) `path`, writes `bytes`, and fsyncs the file.
    fn create_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Renames `from` to `to` (atomic on POSIX within a filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Unlinks a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Fsyncs a directory, making renames/creates within it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// File names (not paths) of a directory's entries.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Byte length of `path`, or `None` if it does not exist.
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>>;
    /// Opens an existing file for appending (positioned at its end).
    fn open_log(&self, path: &Path) -> io::Result<Box<dyn LogFile>>;
}

/// The default VFS handle used when a caller does not supply one.
pub fn disk_io() -> Arc<dyn StorageIo> {
    Arc::new(DiskIo)
}

/// Writes `bytes` to `path` via a sibling temp file, fsync, rename, and
/// a parent-directory fsync — so the destination is always either
/// absent, the old content, or the complete new content, and the rename
/// itself survives power loss (without the directory fsync, a crash
/// right after the rename could resurrect the old file).
pub fn atomic_write(io: &dyn StorageIo, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    io.create_write(&tmp, bytes)?;
    io.rename(&tmp, path)?;
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        io.sync_dir(parent)?;
    }
    Ok(())
}

/// The `<name>.tmp` sibling used by [`atomic_write`] staging.
pub fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Real disk
// ---------------------------------------------------------------------------

/// The real filesystem.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskIo;

/// Whether an error from opening/fsyncing a directory means the platform
/// cannot fsync directories (harmless) rather than a real I/O failure.
/// `EINVAL` (22) and `ENOTSUP`/`EOPNOTSUPP` (95) are what Unix
/// filesystems without directory fsync report; `PermissionDenied` covers
/// Windows, where directories cannot be opened as files at all.
fn dir_sync_unsupported(e: &io::Error) -> bool {
    e.kind() == io::ErrorKind::Unsupported
        || e.kind() == io::ErrorKind::PermissionDenied
        || matches!(e.raw_os_error(), Some(22) | Some(95))
}

struct DiskLog {
    file: File,
}

impl LogFile for DiskLog {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.flush()
    }

    fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        Ok(())
    }
}

impl StorageIo for DiskIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut file = File::create(path)?;
        file.write_all(bytes)?;
        file.sync_data()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Opening a directory read-only and fsyncing it is the POSIX way
        // to make its entries (renames, creates, unlinks) durable. Only
        // platforms that genuinely cannot do this get a pass — a real
        // error (EIO, missing directory) propagates, because it means the
        // rename may not survive power loss after all.
        let file = match File::open(dir) {
            Ok(f) => f,
            Err(e) if dir_sync_unsupported(&e) => return Ok(()),
            Err(e) => return Err(e),
        };
        match file.sync_all() {
            Ok(()) => Ok(()),
            Err(e) if dir_sync_unsupported(&e) => Ok(()),
            Err(e) => Err(e),
        }
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(meta) => Ok(Some(meta.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn open_log(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Box::new(DiskLog { file }))
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// What goes wrong at the scripted operation index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with `EIO`; nothing reaches the disk.
    Eio,
    /// The operation fails with `ENOSPC`; nothing reaches the disk.
    Enospc,
    /// A write persists only the first half of its bytes, then errors —
    /// the classic partial-write crash signature.
    TornWrite,
    /// A write persists all but its final byte, then errors.
    ShortWrite,
    /// An fsync (or any other op) reports failure; for writes the data
    /// still lands in the OS but durability was never promised.
    FailSync,
}

/// One scripted fault: `kind` fires for `fault_count` consecutive I/O
/// operations starting at the `fault_at`-th (0-based, counted across the
/// whole [`FaultIo`]); with `crash` set, every operation after the window
/// also fails with `EIO`, simulating the process dying at that exact
/// point (the crash-matrix mode). A window with `crash: false` models a
/// *transient* failure — the storage misbehaves for a bounded stretch and
/// then heals — which is what the retry/auto-thaw tests script.
#[derive(Clone, Copy, Debug)]
pub struct FaultScript {
    /// 0-based index of the first operation to fault.
    pub fault_at: u64,
    /// How many consecutive operations fault (1 = the classic one-shot).
    pub fault_count: u64,
    /// The failure mode injected there.
    pub kind: FaultKind,
    /// Whether all operations after the window fail too (simulated crash).
    pub crash: bool,
}

impl FaultScript {
    /// The classic one-shot script: a single fault at `fault_at`.
    pub fn once(fault_at: u64, kind: FaultKind, crash: bool) -> Self {
        Self {
            fault_at,
            fault_count: 1,
            kind,
            crash,
        }
    }

    /// A transient-then-healthy script: `kind` for `fault_count` ops
    /// starting at `fault_at`, then the storage heals (never crashes).
    pub fn transient(fault_at: u64, fault_count: u64, kind: FaultKind) -> Self {
        Self {
            fault_at,
            fault_count,
            kind,
            crash: false,
        }
    }
}

enum Fault {
    /// Fail the op with this error; touch nothing.
    Error(io::Error),
    /// Persist only this many bytes of the write, then fail.
    Torn(usize),
    /// Skip the sync (data stays volatile) and report failure.
    SyncLost,
}

struct FaultState {
    ops: AtomicU64,
    script: Option<FaultScript>,
    log: Mutex<Vec<String>>,
}

impl FaultState {
    /// Admits one operation: counts it, logs it, and decides its fate.
    /// `write_len` is `Some(n)` for operations that persist `n` bytes
    /// (those are eligible for torn/short truncation).
    fn admit(&self, desc: String, write_len: Option<usize>) -> Result<(), Fault> {
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        if let Ok(mut log) = self.log.lock() {
            log.push(format!("{idx}: {desc}"));
        }
        let Some(script) = self.script else {
            return Ok(());
        };
        let window_end = script.fault_at.saturating_add(script.fault_count.max(1));
        if script.crash && idx >= window_end {
            return Err(Fault::Error(eio("injected crash: process is gone")));
        }
        if idx < script.fault_at || idx >= window_end {
            return Ok(());
        }
        Err(match script.kind {
            FaultKind::Eio => Fault::Error(io::Error::from_raw_os_error(5)),
            FaultKind::Enospc => Fault::Error(io::Error::from_raw_os_error(28)),
            FaultKind::TornWrite => match write_len {
                Some(n) => Fault::Torn(n / 2),
                None => Fault::Error(eio("injected fault (torn write on non-write op)")),
            },
            FaultKind::ShortWrite => match write_len {
                Some(n) => Fault::Torn(n.saturating_sub(1)),
                None => Fault::Error(eio("injected fault (short write on non-write op)")),
            },
            FaultKind::FailSync => Fault::SyncLost,
        })
    }
}

fn eio(msg: &str) -> io::Error {
    io::Error::other(msg.to_string())
}

fn fault_err(fault: Fault) -> io::Error {
    match fault {
        Fault::Error(e) => e,
        Fault::Torn(_) => eio("injected torn write"),
        Fault::SyncLost => eio("injected fsync failure"),
    }
}

/// A [`StorageIo`] that forwards to an inner implementation while
/// counting every operation and injecting one scripted fault (see
/// [`FaultScript`]). Construct without a script ([`FaultIo::counting`])
/// to measure how many operations a workload performs — the matrix
/// bound — and with one ([`FaultIo::scripted`]) to break the workload
/// at a precise point.
pub struct FaultIo {
    inner: Arc<dyn StorageIo>,
    state: Arc<FaultState>,
}

impl FaultIo {
    /// Counts operations without ever faulting.
    pub fn counting(inner: Arc<dyn StorageIo>) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                script: None,
                log: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Injects `script` over the inner VFS.
    pub fn scripted(inner: Arc<dyn StorageIo>, script: FaultScript) -> Self {
        Self {
            inner,
            state: Arc::new(FaultState {
                ops: AtomicU64::new(0),
                script: Some(script),
                log: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Operations admitted so far (including faulted ones).
    pub fn ops(&self) -> u64 {
        self.state.ops.load(Ordering::SeqCst)
    }

    /// The `"index: operation"` log, for diagnosing a failing matrix cell.
    pub fn op_log(&self) -> Vec<String> {
        self.state.log.lock().map(|l| l.clone()).unwrap_or_default()
    }
}

struct FaultLog {
    inner: Box<dyn LogFile>,
    state: Arc<FaultState>,
    name: String,
}

impl LogFile for FaultLog {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.state.admit(
            format!("append {} ({}B)", self.name, bytes.len()),
            Some(bytes.len()),
        ) {
            Ok(()) => self.inner.append(bytes),
            Err(Fault::Torn(keep)) => {
                self.inner.append(&bytes[..keep]).ok();
                Err(eio("injected torn write"))
            }
            Err(f) => Err(fault_err(f)),
        }
    }

    fn sync(&mut self) -> io::Result<()> {
        match self.state.admit(format!("sync {}", self.name), None) {
            Ok(()) => self.inner.sync(),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        match self
            .state
            .admit(format!("truncate {} to {len}", self.name), None)
        {
            Ok(()) => self.inner.truncate(len),
            Err(f) => Err(fault_err(f)),
        }
    }
}

fn name_of(path: &Path) -> String {
    path.file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("?")
        .to_string()
}

impl StorageIo for FaultIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.state.admit(format!("read {}", name_of(path)), None) {
            Ok(()) => self.inner.read(path),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn create_write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.state.admit(
            format!("create_write {} ({}B)", name_of(path), bytes.len()),
            Some(bytes.len()),
        ) {
            Ok(()) => self.inner.create_write(path, bytes),
            Err(Fault::Torn(keep)) => {
                self.inner.create_write(path, &bytes[..keep]).ok();
                Err(eio("injected torn write"))
            }
            Err(Fault::SyncLost) => {
                // The bytes land but the promised fsync never happens;
                // report the failure the caller must react to.
                self.inner.create_write(path, bytes).ok();
                Err(eio("injected fsync failure"))
            }
            Err(f) => Err(fault_err(f)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self
            .state
            .admit(format!("rename {} -> {}", name_of(from), name_of(to)), None)
        {
            Ok(()) => self.inner.rename(from, to),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.state.admit(format!("remove {}", name_of(path)), None) {
            Ok(()) => self.inner.remove_file(path),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        match self.state.admit(format!("sync_dir {}", name_of(dir)), None) {
            Ok(()) => self.inner.sync_dir(dir),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<String>> {
        match self.state.admit(format!("list_dir {}", name_of(dir)), None) {
            Ok(()) => self.inner.list_dir(dir),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match self
            .state
            .admit(format!("file_len {}", name_of(path)), None)
        {
            Ok(()) => self.inner.file_len(path),
            Err(f) => Err(fault_err(f)),
        }
    }

    fn open_log(&self, path: &Path) -> io::Result<Box<dyn LogFile>> {
        match self
            .state
            .admit(format!("open_log {}", name_of(path)), None)
        {
            Ok(()) => {
                let inner = self.inner.open_log(path)?;
                Ok(Box::new(FaultLog {
                    inner,
                    state: self.state.clone(),
                    name: name_of(path),
                }))
            }
            Err(f) => Err(fault_err(f)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("rabitq-io-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn disk_atomic_write_round_trips_and_cleans_tmp() {
        let dir = tmp_dir("atomic");
        let path = dir.join("file.bin");
        let io = DiskIo;
        atomic_write(&io, &path, b"first").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"first");
        atomic_write(&io, &path, b"second").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"second");
        assert!(!tmp_sibling(&path).exists());
        assert_eq!(io.file_len(&path).unwrap(), Some(6));
        assert_eq!(io.file_len(&dir.join("missing")).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_write_persists_a_prefix_and_errors() {
        let dir = tmp_dir("torn");
        let path = dir.join("file.bin");
        let io = FaultIo::scripted(disk_io(), FaultScript::once(0, FaultKind::TornWrite, false));
        assert!(io.create_write(&path, b"0123456789").is_err());
        // Half the bytes made it — the torn-write signature.
        assert_eq!(std::fs::read(&path).unwrap(), b"01234");
        // The fault is one-shot without `crash`; the next op succeeds.
        io.create_write(&path, b"ok").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"ok");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_mode_fails_everything_after_the_fault() {
        let dir = tmp_dir("crash");
        let path = dir.join("file.bin");
        let io = FaultIo::scripted(disk_io(), FaultScript::once(1, FaultKind::Enospc, true));
        io.create_write(&path, b"pre-fault").unwrap();
        let err = io.create_write(&path, b"fails").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28)); // ENOSPC
        assert!(io.read(&path).is_err()); // dead after the crash point
        assert!(io.rename(&path, &dir.join("x")).is_err());
        assert_eq!(io.ops(), 4);
        assert_eq!(io.op_log().len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_window_faults_then_heals() {
        let dir = tmp_dir("transient");
        let path = dir.join("file.bin");
        let io = FaultIo::scripted(disk_io(), FaultScript::transient(1, 2, FaultKind::Eio));
        io.create_write(&path, b"a").unwrap(); // op 0: clean
        let err = io.create_write(&path, b"b").unwrap_err(); // op 1: faulted
        assert_eq!(err.raw_os_error(), Some(5));
        assert!(io.read(&path).is_err()); // op 2: still inside the window
        io.create_write(&path, b"c").unwrap(); // op 3: healed
        assert_eq!(std::fs::read(&path).unwrap(), b"c");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn counting_mode_never_faults() {
        let dir = tmp_dir("count");
        let io = FaultIo::counting(disk_io());
        let path = dir.join("file.bin");
        io.create_write(&path, b"a").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"a");
        io.remove_file(&path).unwrap();
        assert!(io.ops() >= 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
