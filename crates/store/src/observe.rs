//! Store-side instrumentation: counters, duration histograms, and the
//! event journal for one collection.
//!
//! A [`StoreMetrics`] is created when the collection opens and shared
//! (`Arc`) between the writer, every detached [`CollectionReader`], and
//! the serving layer — all sinks are lock-free atomics except the event
//! journal's short mutex, and nothing here sits on the per-query search
//! path (query-stage tracing travels inside `SearchResult` instead; see
//! `rabitq_metrics::stage`).
//!
//! [`CollectionReader`]: crate::CollectionReader

use rabitq_metrics::{EventJournal, LatencyHistogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Operational counters and histograms for one collection. Fields are
/// public: render layers read them directly, the collection records into
/// them. Durations are microseconds (the histogram's native unit).
#[derive(Default)]
pub struct StoreMetrics {
    /// WAL records appended (inserts + deletes).
    pub wal_appends: AtomicU64,
    /// Duration of each WAL append (write + flush to OS).
    pub wal_append_us: LatencyHistogram,
    /// Explicit WAL fsyncs ([`crate::Collection::sync_wal`]).
    pub wal_syncs: AtomicU64,
    /// Duration of each WAL fsync.
    pub wal_sync_us: LatencyHistogram,
    /// Memtable seals completed.
    pub seals: AtomicU64,
    /// End-to-end seal duration (segment build + durable writes).
    pub seal_us: LatencyHistogram,
    /// Segment files opened (initial open + reopen).
    pub segment_opens: AtomicU64,
    /// Duration of each segment open (read + checksum + decode).
    pub segment_open_us: LatencyHistogram,
    /// Compactions completed.
    pub compactions: AtomicU64,
    /// End-to-end compaction duration.
    pub compaction_us: LatencyHistogram,
    /// Live rows read by compactions, in vector bytes.
    pub compaction_bytes_in: AtomicU64,
    /// Replacement segment file bytes written by compactions.
    pub compaction_bytes_out: AtomicU64,
    /// Segments quarantined at open (corruption).
    pub quarantines: AtomicU64,
    /// Healthy → read-only transitions (not repeat failures).
    pub read_only_flips: AtomicU64,
    /// Write-path retries of transient I/O errors (each backoff attempt).
    pub io_retries: AtomicU64,
    /// Read-only → writable recoveries performed by the thaw probe.
    pub thaws: AtomicU64,
    /// Snapshots published (one per committed mutation batch).
    pub publishes: AtomicU64,
    /// Recent structured events (seals, compactions, quarantines,
    /// read-only flips, slow queries pushed by the serving layer).
    pub journal: EventJournal,
}

impl StoreMetrics {
    /// Fresh, all-zero metrics with a default-capacity journal.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bumps a counter (relaxed — these are statistics, not locks).
    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Adds `n` to a counter (byte totals).
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Loads a counter.
    #[inline]
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_histograms_start_empty() {
        let m = StoreMetrics::new();
        assert_eq!(StoreMetrics::get(&m.wal_appends), 0);
        assert_eq!(m.wal_append_us.count(), 0);
        assert_eq!(StoreMetrics::bump(&m.wal_appends), 1);
        assert_eq!(StoreMetrics::get(&m.wal_appends), 1);
        assert!(m.journal.is_empty());
    }
}
