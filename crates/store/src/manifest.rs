//! The manifest: the single source of truth for the collection's durable
//! state, swapped atomically.
//!
//! One small file records the live segment set, each segment's tombstones,
//! the id high-water marks, and the WAL floor. It is always written to a
//! temporary file first and renamed over the old manifest — on POSIX the
//! rename is atomic, so a reader (including a post-crash reopen) sees
//! either the old complete state or the new complete state, never a torn
//! mixture. Segment files orphaned by a crash between "write new segment"
//! and "switch manifest" are simply never referenced again.

use crate::io::{atomic_write, DiskIo, StorageIo};
use rabitq_core::persist as p;
use rabitq_core::{RabitqConfig, RotatorKind};
use std::io;
use std::path::Path;

/// Section tag in the manifest file header.
pub const MANIFEST_SECTION: &str = "store-manifest";

/// File name of the manifest within a collection directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One segment's entry in the manifest.
#[derive(Clone, Debug, PartialEq)]
pub struct SegmentMeta {
    /// Segment file name within the collection directory.
    pub file: String,
    /// Global ids tombstoned in this segment as of the last manifest write.
    /// Deletes since then live in the WAL and are re-applied on replay.
    pub tombstones: Vec<u32>,
}

/// The collection's durable metadata.
#[derive(Clone, Debug, PartialEq)]
pub struct Manifest {
    /// Vector dimensionality (validated against the caller's config).
    pub dim: usize,
    /// Next global id as of the last manifest write. The true next id
    /// after replay is `max(next_id, max WAL insert id + 1)`.
    pub next_id: u32,
    /// WAL insert records with `id < wal_floor` are already durable in a
    /// segment and are skipped during replay — this is what makes a crash
    /// between "manifest switched" and "WAL reset" harmless.
    pub wal_floor: u32,
    /// Monotonic counter naming the next segment file.
    pub next_segment_seq: u64,
    /// Quantizer configuration every segment was (and will be) built
    /// with. Persisted so reopening tools (CLI `delete`/`compact`/
    /// `collection-search`) rebuild segments with the parameters ingest
    /// chose, not defaults.
    pub rabitq: RabitqConfig,
    /// Memtable seal threshold at the last write (a tuning default for
    /// tools that open the collection without their own config).
    pub memtable_capacity: usize,
    /// The live segment set, in creation order.
    pub segments: Vec<SegmentMeta>,
}

impl Manifest {
    /// A fresh manifest for an empty collection.
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            next_id: 0,
            wal_floor: 0,
            next_segment_seq: 0,
            rabitq: RabitqConfig::default(),
            memtable_capacity: 4096,
            segments: Vec::new(),
        }
    }

    /// Loads the manifest from `path` on the real filesystem.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::load_with_io(path, &DiskIo)
    }

    /// Loads the manifest from `path` through a [`StorageIo`].
    pub fn load_with_io(path: &Path, io: &dyn StorageIo) -> io::Result<Self> {
        let bytes = io.read(path)?;
        let mut r = bytes.as_slice();
        let section = p::read_header(&mut r)?;
        if section != MANIFEST_SECTION {
            return Err(p::invalid(format!("expected manifest, got {section:?}")));
        }
        let dim = p::read_usize(&mut r)?;
        let next_id = p::read_u64(&mut r)?;
        let wal_floor = p::read_u64(&mut r)?;
        let next_id = u32::try_from(next_id).map_err(|_| p::invalid("next_id overflow"))?;
        let wal_floor = u32::try_from(wal_floor).map_err(|_| p::invalid("wal_floor overflow"))?;
        let next_segment_seq = p::read_u64(&mut r)?;
        let rabitq = RabitqConfig {
            bq: p::read_u8(&mut r)?,
            epsilon0: p::read_f32(&mut r)?,
            seed: p::read_u64(&mut r)?,
            rotator: match p::read_u8(&mut r)? {
                0 => RotatorKind::DenseOrthogonal,
                1 => RotatorKind::RandomizedHadamard,
                2 => RotatorKind::Identity,
                other => return Err(p::invalid(format!("unknown rotator kind {other}"))),
            },
            padded_dim: match p::read_u64(&mut r)? {
                0 => None,
                d => Some(usize::try_from(d).map_err(|_| p::invalid("padded_dim overflow"))?),
            },
        };
        let memtable_capacity = p::read_usize(&mut r)?;
        let n_segments = p::read_usize(&mut r)?;
        if n_segments > 1 << 20 {
            return Err(p::invalid("unreasonable segment count"));
        }
        let mut segments = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let file = p::read_str(&mut r)?;
            let tombstones = p::read_u32_vec(&mut r)?;
            segments.push(SegmentMeta { file, tombstones });
        }
        Ok(Self {
            dim,
            next_id,
            wal_floor,
            next_segment_seq,
            rabitq,
            memtable_capacity,
            segments,
        })
    }

    /// Writes the manifest atomically to the real filesystem; see
    /// [`Manifest::store_with_io`].
    pub fn store(&self, path: &Path) -> io::Result<()> {
        self.store_with_io(path, &DiskIo)
    }

    /// Writes the manifest atomically: serialize to `<path>.tmp`, fsync,
    /// rename over `path`, fsync the parent directory (so a crash right
    /// after the rename cannot resurrect the old manifest).
    pub fn store_with_io(&self, path: &Path, io: &dyn StorageIo) -> io::Result<()> {
        let mut buf = Vec::new();
        p::write_header(&mut buf, MANIFEST_SECTION)?;
        p::write_usize(&mut buf, self.dim)?;
        p::write_u64(&mut buf, self.next_id as u64)?;
        p::write_u64(&mut buf, self.wal_floor as u64)?;
        p::write_u64(&mut buf, self.next_segment_seq)?;
        p::write_u8(&mut buf, self.rabitq.bq)?;
        p::write_f32(&mut buf, self.rabitq.epsilon0)?;
        p::write_u64(&mut buf, self.rabitq.seed)?;
        p::write_u8(
            &mut buf,
            match self.rabitq.rotator {
                RotatorKind::DenseOrthogonal => 0,
                RotatorKind::RandomizedHadamard => 1,
                RotatorKind::Identity => 2,
            },
        )?;
        p::write_u64(&mut buf, self.rabitq.padded_dim.unwrap_or(0) as u64)?;
        p::write_usize(&mut buf, self.memtable_capacity)?;
        p::write_usize(&mut buf, self.segments.len())?;
        for meta in &self.segments {
            p::write_str(&mut buf, &meta.file)?;
            p::write_u32_slice(&mut buf, &meta.tombstones)?;
        }
        atomic_write(io, path, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::tmp_sibling;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rabitq-manifest-{name}-{}", std::process::id()))
    }

    #[test]
    fn round_trips_and_replaces_atomically() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let mut m = Manifest::new(32);
        m.next_id = 900;
        m.wal_floor = 800;
        m.next_segment_seq = 3;
        m.segments = vec![
            SegmentMeta {
                file: "seg-000000.rbq".into(),
                tombstones: vec![5, 17],
            },
            SegmentMeta {
                file: "seg-000002.rbq".into(),
                tombstones: vec![],
            },
        ];
        m.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);

        // Overwrite with new state: the old file is fully replaced.
        m.next_id = 1000;
        m.segments.pop();
        m.store(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), m);
        assert!(!tmp_sibling(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_non_manifest_files() {
        let path = tmp("reject");
        std::fs::write(&path, b"RBQ1 not a manifest").unwrap();
        assert!(Manifest::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
