//! Compaction policy: when to fold segments together.
//!
//! Two pressures trigger a merge. **Dead weight**: tombstones accumulate
//! in a sealed segment until most of its codes are skipped on every scan —
//! once the dead fraction crosses a threshold the segment is worth
//! rewriting. **Fan-out**: every query visits every segment, so the
//! segment count is capped; when seals outrun merges, the smallest
//! segments are folded into one. The policy only *plans*; the collection
//! executes the merge (gather live rows → rebuild one IVF-RaBitQ index →
//! swap the manifest).

/// Shape of one segment, as the policy sees it.
#[derive(Clone, Copy, Debug)]
pub struct SegmentStats {
    /// Total rows, live and tombstoned.
    pub n_total: usize,
    /// Live rows.
    pub n_live: usize,
}

impl SegmentStats {
    /// Fraction of rows that are tombstoned.
    pub fn dead_fraction(&self) -> f64 {
        if self.n_total == 0 {
            1.0
        } else {
            1.0 - self.n_live as f64 / self.n_total as f64
        }
    }
}

/// Threshold-driven compaction policy.
#[derive(Clone, Debug)]
pub struct CompactionPolicy {
    /// Soft cap on the number of segments a query fans out over.
    pub max_segments: usize,
    /// A segment whose dead fraction exceeds this is rewritten.
    pub max_dead_fraction: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_segments: 8,
            max_dead_fraction: 0.5,
        }
    }
}

impl CompactionPolicy {
    /// Plans a compaction over the current segment set: returns the sorted
    /// indices of segments to merge into one, or an empty vector if the
    /// collection is healthy. A single over-dead segment is still
    /// "merged" (rewritten alone) — that is how its tombstones are
    /// physically reclaimed.
    pub fn plan(&self, stats: &[SegmentStats]) -> Vec<usize> {
        let mut chosen: Vec<usize> = stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.dead_fraction() > self.max_dead_fraction)
            .map(|(i, _)| i)
            .collect();

        if stats.len() > self.max_segments.max(1) {
            // Fold the smallest segments until the cap holds again. The
            // merge replaces `chosen.len()` segments with one, so pick
            // enough to land at `max_segments`.
            let mut by_size: Vec<usize> = (0..stats.len()).collect();
            by_size.sort_by_key(|&i| stats[i].n_live);
            let need = stats.len() - self.max_segments + 1;
            for &i in by_size.iter().take(need.max(2)) {
                if !chosen.contains(&i) {
                    chosen.push(i);
                }
            }
        }

        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(n_total: usize, n_live: usize) -> SegmentStats {
        SegmentStats { n_total, n_live }
    }

    #[test]
    fn healthy_collections_are_left_alone() {
        let policy = CompactionPolicy::default();
        assert!(policy.plan(&[seg(100, 90), seg(200, 200)]).is_empty());
        assert!(policy.plan(&[]).is_empty());
    }

    #[test]
    fn over_dead_segments_are_rewritten() {
        let policy = CompactionPolicy::default();
        // 60% dead crosses the 50% default.
        assert_eq!(policy.plan(&[seg(100, 40), seg(100, 99)]), vec![0]);
        // Exactly at the threshold does not trigger.
        assert!(policy.plan(&[seg(100, 50)]).is_empty());
        // An all-dead segment triggers too.
        assert_eq!(policy.plan(&[seg(50, 0)]), vec![0]);
    }

    #[test]
    fn too_many_segments_fold_the_smallest() {
        let policy = CompactionPolicy {
            max_segments: 2,
            max_dead_fraction: 0.5,
        };
        let stats = [seg(1000, 1000), seg(10, 10), seg(20, 20)];
        // Cap is 2, we have 3: merge the two smallest (indices 1 and 2).
        assert_eq!(policy.plan(&stats), vec![1, 2]);
    }

    #[test]
    fn dead_and_small_pressures_combine() {
        let policy = CompactionPolicy {
            max_segments: 3,
            max_dead_fraction: 0.5,
        };
        let stats = [seg(1000, 100), seg(10, 10), seg(20, 20), seg(500, 500)];
        let plan = policy.plan(&stats);
        assert!(plan.contains(&0)); // 90% dead
        assert!(plan.len() >= 2); // and the count cap forces a real merge
    }
}
