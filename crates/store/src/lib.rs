//! # rabitq-store — a WAL-backed, segmented collection engine
//!
//! The paper's IVF-RaBitQ index is built once over a frozen dataset; this
//! crate turns it into a **serving engine**: live ingest, deletes, crash
//! recovery, and compaction, in the mutable-log + immutable-segment shape
//! production vector stores converge on.
//!
//! | Module | Role |
//! |---|---|
//! | [`wal`] | append-only log, checksummed frames, torn-tail recovery |
//! | [`memtable`] | fresh writes, exact-scan search (writer side) |
//! | [`memview`] | persistent, structurally shared memtable view (reader side) |
//! | [`segment`] | sealed IVF-RaBitQ index + global-id remap |
//! | [`snapshot`] | immutable point-in-time views, parallel fan-out, batch search |
//! | [`pool`] | persistent process-wide worker threads behind the parallel paths |
//! | [`manifest`] | atomic (temp + rename) record of the live segment set |
//! | [`compaction`] | threshold policy: dead-weight and fan-out pressure |
//! | [`observe`] | operational counters, duration histograms, event journal |
//! | [`io`] | the [`StorageIo`] VFS every durable write routes through, plus the [`FaultIo`] fault injector |
//! | [`error`] | typed mutation errors and the degraded / read-only health surface |
//! | [`collection`] | the orchestrator tying all of the above together |
//!
//! Reads are concurrent with writes: every mutation publishes an
//! immutable [`Snapshot`], readers (or detached [`CollectionReader`]
//! handles on other threads) search that frozen state, and
//! [`Snapshot::search_many`] fans a query batch over a scoped worker pool
//! with bit-identical results at every thread count.
//!
//! The engine preserves the paper's guarantee end-to-end: segments re-rank
//! with the error-bound rule (exact distances out), the memtable is exact
//! by construction, and the fan-out merge just takes a k-way minimum of
//! exact distances — so a [`Collection`] answers with the same contract as
//! a single [`rabitq_ivf::IvfRabitq`].
//!
//! ```
//! use rabitq_store::{Collection, CollectionConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let dir = std::env::temp_dir().join(format!("store-doc-{}", std::process::id()));
//! std::fs::remove_dir_all(&dir).ok();
//! let mut config = CollectionConfig::new(8);
//! config.memtable_capacity = 64; // tiny, to exercise sealing
//! let mut collection = Collection::open(&dir, config).unwrap();
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let data = rabitq_math::rng::standard_normal_vec(&mut rng, 200 * 8);
//! let ids: Vec<u32> = data.chunks_exact(8).map(|v| collection.insert(v).unwrap()).collect();
//! collection.delete(ids[0]).unwrap();
//!
//! let res = collection.search(&data[8..16], 5, 8, &mut rng);
//! assert_eq!(res.neighbors[0].0, ids[1]); // self-lookup, exact distance 0
//! assert!(res.neighbors[0].1 < 1e-6);
//! std::fs::remove_dir_all(&dir).ok();
//! ```

pub mod collection;
pub mod compaction;
pub mod error;
pub mod io;
pub mod manifest;
pub mod memtable;
pub mod memview;
pub mod observe;
pub mod pool;
pub mod segment;
pub mod snapshot;
pub mod wal;

pub use collection::{Collection, CollectionConfig, QUARANTINE_SUFFIX, WAL_FILE};
pub use compaction::{CompactionPolicy, SegmentStats};
pub use error::{HealthReport, HealthState, StoreError};
pub use io::{atomic_write, disk_io, DiskIo, FaultIo, FaultKind, FaultScript, LogFile, StorageIo};
pub use manifest::{Manifest, SegmentMeta, MANIFEST_FILE};
pub use memtable::Memtable;
pub use memview::MemView;
pub use observe::StoreMetrics;
pub use pool::WorkerPool;
pub use rabitq_ivf::CancelToken;
pub use segment::Segment;
pub use snapshot::{CollectionReader, ParallelOptions, SearchOutcome, Snapshot};
pub use wal::{Wal, WalRecord, WalReplay};
