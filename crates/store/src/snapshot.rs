//! The concurrent read path: immutable [`Snapshot`]s published by the
//! writer, cheap to clone, searched without any lock held.
//!
//! ## Shape
//!
//! A snapshot is the pair (frozen memtable view, `Arc`'d segment list).
//! The writer rebuilds it after **every** mutation and swaps it into a
//! shared slot; readers load the current `Arc<Snapshot>` (a read-lock held
//! only long enough to clone the `Arc`) and then run the entire query on
//! that frozen state. Seal and compaction do their expensive work — IVF
//! builds, file writes — on the writer's private state and only then swap,
//! so **writers never block readers**: the longest a reader can wait is
//! the nanoseconds of an `Arc` pointer swap.
//!
//! The memtable view is a *persistent* (structurally shared) operation
//! list: each insert/delete prepends one node, so publishing a new
//! snapshot is O(1) and older snapshots keep seeing exactly the rows they
//! were created with. Segments are immutable by construction; their only
//! mutation — tombstoning — is an atomic bitmap write that is safe (and
//! immediately visible) under concurrent readers.
//!
//! Memory reclamation is `Arc`-drop: a sealed-away memtable chain or a
//! compacted-away segment lives exactly as long as the last snapshot that
//! references it, then frees without any epoch or GC machinery.
//!
//! ## Parallel execution
//!
//! [`Snapshot::search_many`] (batch) and [`Snapshot::search_parallel`]
//! (single query, segment-parallel) fan work out over the process-wide
//! persistent [`WorkerPool`] — threads are created once and parked
//! between calls, so a batch never pays thread startup (the cost that
//! made the first scoped-spawn implementation scale flat). Each pool
//! thread keeps a thread-local [`SearchScratch`] that is reused across
//! queries *and* across batches, preserving the allocation-free
//! steady state. Both paths derive one RNG per (query, segment) task
//! from a caller seed, so the results are **bit-identical for every
//! thread count** — the scheduler can never change an answer.

use crate::error::HealthReport;
use crate::error::HealthState;
use crate::memview::MemView;
use crate::observe::StoreMetrics;
use crate::pool::WorkerPool;
use crate::segment::Segment;
use rabitq_ivf::{CancelToken, SearchResult, SearchScratch, TopK};
use rabitq_metrics::{Stage, StageNanos};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{RefCell, UnsafeCell};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Nanoseconds since `t0`, saturated to `u64` (the stage-trace unit).
#[inline]
fn ns_since(t0: Instant) -> u64 {
    t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
}

thread_local! {
    /// Per-thread reusable scratch: pool workers are persistent, so this
    /// amortizes to zero allocations per query at steady state.
    static SCRATCH: RefCell<SearchScratch> = RefCell::new(SearchScratch::new());
}

/// Write-once result slots shared with pool workers. Disjointness is
/// guaranteed by the pool's item claiming: each index is handed to exactly
/// one task invocation, and the pool's completion barrier orders all
/// writes before the submitter reads.
struct ResultSlots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: see above — indices are written by their unique claimant only.
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(n: usize) -> Self {
        Self((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// Must be called at most once per index, with no concurrent access
    /// to the same index.
    unsafe fn put(&self, i: usize, value: T) {
        *self.0[i].get() = Some(value);
    }

    fn into_results(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| c.into_inner().expect("every slot filled"))
            .collect()
    }
}

/// Thread-count and determinism knobs for the parallel search paths.
#[derive(Clone, Copy, Debug)]
pub struct ParallelOptions {
    /// Worker threads (clamped to the available work; `0` and `1` both
    /// mean serial).
    pub threads: usize,
    /// Seed from which every (query, segment) task RNG is derived. Two
    /// runs with the same seed return bit-identical results regardless of
    /// `threads`.
    pub seed: u64,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        Self {
            threads: 1,
            seed: 0x5EED_FA17,
        }
    }
}

impl ParallelOptions {
    /// Serial execution with the default seed.
    pub fn serial() -> Self {
        Self::default()
    }

    /// `threads` workers with the default seed.
    pub fn threaded(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }
}

/// How one query of a cancellable batch ended: with a result, or
/// abandoned at a cancellation checkpoint. Cancellation is per query —
/// one expired deadline never poisons its batchmates, whose outcomes
/// (and bits) are identical to an all-healthy batch thanks to the
/// per-(query, segment) RNG seeding.
#[derive(Debug)]
pub enum SearchOutcome {
    /// The query ran to completion.
    Done(SearchResult),
    /// The query's token cancelled mid-scan; partial candidates were
    /// discarded (never returned).
    Cancelled,
}

impl SearchOutcome {
    /// Whether this query was abandoned.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SearchOutcome::Cancelled)
    }

    /// The completed result, if any.
    pub fn into_result(self) -> Option<SearchResult> {
        match self {
            SearchOutcome::Done(res) => Some(res),
            SearchOutcome::Cancelled => None,
        }
    }
}

/// An immutable, searchable view of a collection at one instant.
pub struct Snapshot {
    dim: usize,
    memtable: MemView,
    segments: Vec<Arc<Segment>>,
}

/// The SplitMix64-style finalizer deriving one task seed per
/// (query, segment) pair. Execution order and thread placement therefore
/// cannot change any RNG stream.
fn task_seed(seed: u64, query: usize, segment: usize) -> u64 {
    let mut z = seed
        ^ (query as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (segment as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Snapshot {
    pub(crate) fn new(dim: usize, memtable: MemView, segments: Vec<Arc<Segment>>) -> Self {
        Self {
            dim,
            memtable,
            segments,
        }
    }

    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Live vectors across the frozen memtable view and all segments.
    pub fn len(&self) -> usize {
        self.memtable.len() + self.segments.iter().map(|s| s.n_live()).sum::<usize>()
    }

    /// Whether no live vectors exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of sealed segments in this view.
    #[inline]
    pub fn n_segments(&self) -> usize {
        self.segments.len()
    }

    /// Rows visible in the frozen memtable view.
    #[inline]
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Serial search with a caller-provided RNG — the historical
    /// [`crate::Collection::search`] contract: exact squared distances,
    /// ascending, memtable scanned first, then segments in order sharing
    /// `rng`.
    pub fn search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rng: &mut R,
    ) -> SearchResult {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        let mut top = TopK::new(k);
        let mut stages = StageNanos::new();
        let mut n_estimated = 0usize;
        let mut n_reranked = 0usize;
        if k > 0 {
            let t0 = Instant::now();
            n_reranked += self.memtable.scan_into(query, &mut top);
            stages.add_ns(Stage::Rerank, ns_since(t0));
            for segment in &self.segments {
                let res = segment.search(query, k, nprobe, rng);
                stages.merge(&res.stages);
                n_estimated += res.n_estimated;
                n_reranked += res.n_reranked;
                for (id, dist) in res.neighbors {
                    top.push(id, dist);
                }
            }
        }
        let t0 = Instant::now();
        let neighbors = top.into_sorted();
        stages.add_ns(Stage::Merge, ns_since(t0));
        SearchResult {
            neighbors,
            n_estimated,
            n_reranked,
            stages,
        }
    }

    /// One query, segments scanned **in parallel** by the persistent
    /// worker pool. Per-segment results are merged in segment order on the
    /// calling thread, so the answer is bit-identical for every
    /// `opts.threads` (including serial).
    pub fn search_parallel(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
    ) -> SearchResult {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        let n_segments = self.segments.len();
        let threads = opts.threads.max(1).min(n_segments.max(1));
        let mut per_segment: Vec<SearchResult> = if threads <= 1 || n_segments <= 1 {
            (0..n_segments)
                .map(|si| self.search_segment_seeded(si, 0, query, k, nprobe, opts.seed))
                .collect()
        } else {
            let slots = ResultSlots::new(n_segments);
            WorkerPool::global().run(n_segments, threads - 1, |si| {
                let res = self.search_segment_seeded(si, 0, query, k, nprobe, opts.seed);
                // SAFETY: the pool claims each `si` exactly once.
                unsafe { slots.put(si, res) };
            });
            slots.into_results()
        };
        self.merge_per_segment(query, k, &mut per_segment)
    }

    /// [`Snapshot::search_parallel`] with cooperative cancellation: every
    /// per-segment task (running on pool workers) polls the token at its
    /// probed-bucket boundaries and bails individually. Returns
    /// [`SearchOutcome::Cancelled`] if any segment scan was abandoned — a
    /// single query is all-or-nothing. A completed query is bit-identical
    /// to [`Snapshot::search_parallel`] with the same seed.
    pub fn search_parallel_cancellable(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
        cancel: &CancelToken,
    ) -> SearchOutcome {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        let n_segments = self.segments.len();
        let threads = opts.threads.max(1).min(n_segments.max(1));
        let per_segment: Vec<Option<SearchResult>> = if threads <= 1 || n_segments <= 1 {
            (0..n_segments)
                .map(|si| {
                    self.search_segment_seeded_cancellable(
                        si, 0, query, k, nprobe, opts.seed, cancel,
                    )
                })
                .collect()
        } else {
            let slots = ResultSlots::new(n_segments);
            WorkerPool::global().run(n_segments, threads - 1, |si| {
                let res = self
                    .search_segment_seeded_cancellable(si, 0, query, k, nprobe, opts.seed, cancel);
                // SAFETY: the pool claims each `si` exactly once.
                unsafe { slots.put(si, res) };
            });
            slots.into_results()
        };
        let mut done = Vec::with_capacity(per_segment.len());
        for res in per_segment {
            match res {
                Some(res) => done.push(res),
                None => return SearchOutcome::Cancelled,
            }
        }
        SearchOutcome::Done(self.merge_per_segment(query, k, &mut done))
    }

    /// Merges per-segment results (plus the memtable scan) into one
    /// [`SearchResult`], in segment order — the deterministic tail shared
    /// by every parallel path.
    fn merge_per_segment(
        &self,
        query: &[f32],
        k: usize,
        per_segment: &mut [SearchResult],
    ) -> SearchResult {
        let mut top = TopK::new(k);
        let mut stages = StageNanos::new();
        let mut n_estimated = 0usize;
        let mut n_reranked = 0usize;
        if k > 0 {
            let t0 = Instant::now();
            n_reranked += self.memtable.scan_into(query, &mut top);
            stages.add_ns(Stage::Rerank, ns_since(t0));
            for res in per_segment.iter() {
                stages.merge(&res.stages);
                n_estimated += res.n_estimated;
                n_reranked += res.n_reranked;
                for &(id, dist) in &res.neighbors {
                    top.push(id, dist);
                }
            }
        }
        let t0 = Instant::now();
        let neighbors = top.into_sorted();
        stages.add_ns(Stage::Merge, ns_since(t0));
        SearchResult {
            neighbors,
            n_estimated,
            n_reranked,
            stages,
        }
    }

    /// Batch search: `queries` is a flat `n × dim` buffer; returns one
    /// [`SearchResult`] per query, in query order. Queries are claimed
    /// dynamically by up to `opts.threads` participants of the persistent
    /// [`WorkerPool`] (submitter included), each reusing its thread-local
    /// [`SearchScratch`] across all queries, segments, and batches — the
    /// allocation-free path without per-call thread startup. Results are
    /// bit-identical for every thread count (per-(query, segment) seeded
    /// RNGs, merge in segment order).
    pub fn search_many(
        &self,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
    ) -> Vec<SearchResult> {
        assert!(
            queries.len().is_multiple_of(self.dim),
            "queries buffer must be n × dim"
        );
        let n = queries.len() / self.dim;
        if n == 0 {
            return Vec::new();
        }
        let threads = opts.threads.max(1).min(n);
        if threads <= 1 {
            return SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                (0..n)
                    .map(|qi| {
                        self.search_one_seeded(qi, queries, k, nprobe, opts.seed, &mut scratch)
                    })
                    .collect()
            });
        }
        let slots = ResultSlots::new(n);
        WorkerPool::global().run(n, threads - 1, |qi| {
            let res = SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                self.search_one_seeded(qi, queries, k, nprobe, opts.seed, &mut scratch)
            });
            // SAFETY: the pool claims each `qi` exactly once.
            unsafe { slots.put(qi, res) };
        });
        slots.into_results()
    }

    /// [`Snapshot::search_many`] with per-query cooperative cancellation:
    /// `tokens[qi]` guards query `qi` alone. A query whose token cancels
    /// (deadline passed, client gone) bails at the next probed-bucket or
    /// segment boundary and yields [`SearchOutcome::Cancelled`]; its
    /// batchmates are untouched — their results are bit-identical to an
    /// all-healthy [`Snapshot::search_many`] run with the same seed,
    /// because every (query, segment) task derives its own RNG.
    pub fn search_many_cancellable(
        &self,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
        tokens: &[CancelToken],
    ) -> Vec<SearchOutcome> {
        assert!(
            queries.len().is_multiple_of(self.dim),
            "queries buffer must be n × dim"
        );
        let n = queries.len() / self.dim;
        assert_eq!(tokens.len(), n, "one token per query");
        if n == 0 {
            return Vec::new();
        }
        let threads = opts.threads.max(1).min(n);
        if threads <= 1 {
            return SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                (0..n)
                    .map(|qi| {
                        self.search_one_outcome(
                            qi,
                            queries,
                            k,
                            nprobe,
                            opts.seed,
                            &mut scratch,
                            &tokens[qi],
                        )
                    })
                    .collect()
            });
        }
        let slots = ResultSlots::new(n);
        WorkerPool::global().run(n, threads - 1, |qi| {
            let res = SCRATCH.with(|s| {
                let mut scratch = s.borrow_mut();
                self.search_one_outcome(
                    qi,
                    queries,
                    k,
                    nprobe,
                    opts.seed,
                    &mut scratch,
                    &tokens[qi],
                )
            });
            // SAFETY: the pool claims each `qi` exactly once.
            unsafe { slots.put(qi, res) };
        });
        slots.into_results()
    }

    /// Full fan-out for query `qi` with deterministic per-segment RNGs.
    fn search_one_seeded(
        &self,
        qi: usize,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        seed: u64,
        scratch: &mut SearchScratch,
    ) -> SearchResult {
        self.search_one_seeded_cancellable(
            qi,
            queries,
            k,
            nprobe,
            seed,
            scratch,
            &CancelToken::none(),
        )
        .expect("a never-cancelling token cannot cancel")
    }

    /// [`Snapshot::search_one_seeded`] as a [`SearchOutcome`].
    #[allow(clippy::too_many_arguments)]
    fn search_one_outcome(
        &self,
        qi: usize,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        seed: u64,
        scratch: &mut SearchScratch,
        cancel: &CancelToken,
    ) -> SearchOutcome {
        match self.search_one_seeded_cancellable(qi, queries, k, nprobe, seed, scratch, cancel) {
            Some(res) => SearchOutcome::Done(res),
            None => SearchOutcome::Cancelled,
        }
    }

    /// The cancellable fan-out core: polls the token before the memtable
    /// scan and (via [`Segment::search_into_cancellable`]) at every
    /// probed-bucket boundary within each segment. `None` means the query
    /// was abandoned; nothing partial is returned.
    #[allow(clippy::too_many_arguments)]
    fn search_one_seeded_cancellable(
        &self,
        qi: usize,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        seed: u64,
        scratch: &mut SearchScratch,
        cancel: &CancelToken,
    ) -> Option<SearchResult> {
        let query = &queries[qi * self.dim..(qi + 1) * self.dim];
        let mut top = TopK::new(k);
        let mut stages = StageNanos::new();
        let mut n_estimated = 0usize;
        let mut n_reranked = 0usize;
        if k > 0 {
            if cancel.is_cancelled() {
                return None;
            }
            let t0 = Instant::now();
            n_reranked += self.memtable.scan_into(query, &mut top);
            stages.add_ns(Stage::Rerank, ns_since(t0));
            for (si, segment) in self.segments.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(task_seed(seed, qi, si));
                let (e, r) =
                    segment.search_into_cancellable(query, k, nprobe, scratch, &mut rng, cancel)?;
                stages.merge(&scratch.stages);
                n_estimated += e;
                n_reranked += r;
                for &(id, dist) in &scratch.neighbors {
                    top.push(id, dist);
                }
            }
        }
        let t0 = Instant::now();
        let neighbors = top.into_sorted();
        stages.add_ns(Stage::Merge, ns_since(t0));
        Some(SearchResult {
            neighbors,
            n_estimated,
            n_reranked,
            stages,
        })
    }

    /// Scans one segment for query index `qi` under the derived task seed.
    fn search_segment_seeded(
        &self,
        si: usize,
        qi: usize,
        query: &[f32],
        k: usize,
        nprobe: usize,
        seed: u64,
    ) -> SearchResult {
        let mut rng = StdRng::seed_from_u64(task_seed(seed, qi, si));
        self.segments[si].search(query, k, nprobe, &mut rng)
    }

    /// [`Snapshot::search_segment_seeded`] with cancellation checkpoints;
    /// `None` means the token cancelled mid-scan.
    #[allow(clippy::too_many_arguments)]
    fn search_segment_seeded_cancellable(
        &self,
        si: usize,
        qi: usize,
        query: &[f32],
        k: usize,
        nprobe: usize,
        seed: u64,
        cancel: &CancelToken,
    ) -> Option<SearchResult> {
        let mut rng = StdRng::seed_from_u64(task_seed(seed, qi, si));
        SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            let (n_estimated, n_reranked) = self.segments[si].search_into_cancellable(
                query,
                k,
                nprobe,
                &mut scratch,
                &mut rng,
                cancel,
            )?;
            Some(SearchResult {
                neighbors: scratch.neighbors.clone(),
                n_estimated,
                n_reranked,
                stages: scratch.stages,
            })
        })
    }
}

/// The shared slot a collection publishes snapshots through. Writers
/// replace the `Arc` under a write lock held for one pointer store;
/// readers clone it under a read lock held just as briefly.
pub(crate) struct SnapshotSlot {
    current: RwLock<Arc<Snapshot>>,
}

impl SnapshotSlot {
    pub(crate) fn new(snapshot: Snapshot) -> Self {
        Self {
            current: RwLock::new(Arc::new(snapshot)),
        }
    }

    pub(crate) fn load(&self) -> Arc<Snapshot> {
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    pub(crate) fn store(&self, snapshot: Snapshot) {
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(snapshot);
    }
}

/// A detached read handle: clones freely, lives independently of the
/// writer's `&mut Collection` borrow, and always observes the latest
/// published snapshot. This is how reader threads search concurrently
/// with insert/seal/compact.
#[derive(Clone)]
pub struct CollectionReader {
    pub(crate) slot: Arc<SnapshotSlot>,
    pub(crate) dim: usize,
    pub(crate) health: Arc<HealthState>,
    pub(crate) metrics: Arc<StoreMetrics>,
}

impl CollectionReader {
    /// Vector dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// A point-in-time copy of the collection's health flags (degraded /
    /// read-only / quarantined segments), shared live with the writer —
    /// the serving layer reads this without any writer lock.
    pub fn health(&self) -> HealthReport {
        self.health.report()
    }

    /// The collection's operational metrics and event journal — shared
    /// live with the writer, so the serving layer renders store counters
    /// (and pushes slow-query events) through this handle alone.
    pub fn metrics(&self) -> &Arc<StoreMetrics> {
        &self.metrics
    }

    /// The latest published snapshot (an `Arc` clone — O(1)).
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.slot.load()
    }

    /// Live vectors in the latest snapshot (memtable + segments). The
    /// serving layer's `/stats` accessor — no writer lock involved.
    pub fn len(&self) -> usize {
        self.snapshot().len()
    }

    /// Whether the latest snapshot holds no live vectors.
    pub fn is_empty(&self) -> bool {
        self.snapshot().is_empty()
    }

    /// Sealed segments in the latest snapshot.
    pub fn n_segments(&self) -> usize {
        self.snapshot().n_segments()
    }

    /// Rows visible in the latest snapshot's frozen memtable view.
    pub fn memtable_len(&self) -> usize {
        self.snapshot().memtable_len()
    }

    /// Serial search over the latest snapshot (the
    /// [`crate::Collection::search`] contract).
    pub fn search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rng: &mut R,
    ) -> SearchResult {
        self.snapshot().search(query, k, nprobe, rng)
    }

    /// Batch search over the latest snapshot (see
    /// [`Snapshot::search_many`]).
    pub fn search_many(
        &self,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
    ) -> Vec<SearchResult> {
        self.snapshot().search_many(queries, k, nprobe, opts)
    }

    /// Cancellable batch search over the latest snapshot (see
    /// [`Snapshot::search_many_cancellable`]).
    pub fn search_many_cancellable(
        &self,
        queries: &[f32],
        k: usize,
        nprobe: usize,
        opts: ParallelOptions,
        tokens: &[CancelToken],
    ) -> Vec<SearchOutcome> {
        self.snapshot()
            .search_many_cancellable(queries, k, nprobe, opts, tokens)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_seeds_are_distinct_across_queries_and_segments() {
        let mut seen = std::collections::HashSet::new();
        for qi in 0..50 {
            for si in 0..8 {
                assert!(
                    seen.insert(task_seed(42, qi, si)),
                    "collision at ({qi},{si})"
                );
            }
        }
        // And the derivation is pure: same inputs, same seed.
        assert_eq!(task_seed(7, 3, 1), task_seed(7, 3, 1));
        assert_ne!(task_seed(7, 3, 1), task_seed(8, 3, 1));
    }
}
