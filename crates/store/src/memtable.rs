//! The memtable: fresh writes held in plain `f32` rows and searched by
//! exact scan.
//!
//! Fresh vectors are few (bounded by the seal threshold), so a brute-force
//! scan is both the fastest and the only *unbiased-by-construction* option:
//! exact distances need no estimator, no error bound, and merge directly
//! with the segments' re-ranked exact distances.

use rabitq_ivf::TopK;
use rabitq_math::vecs;

/// In-memory buffer of `(global id, vector)` rows awaiting a seal.
pub struct Memtable {
    dim: usize,
    ids: Vec<u32>,
    data: Vec<f32>,
}

impl Memtable {
    /// An empty memtable for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        Self {
            dim,
            ids: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Number of buffered vectors.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Buffers one vector under `id`.
    pub fn insert(&mut self, id: u32, vector: &[f32]) {
        assert_eq!(vector.len(), self.dim, "vector dimensionality");
        debug_assert!(!self.contains(id), "duplicate id {id} in memtable");
        self.ids.push(id);
        self.data.extend_from_slice(vector);
    }

    /// Whether `id` is buffered here.
    pub fn contains(&self, id: u32) -> bool {
        self.ids.contains(&id)
    }

    /// Drops the vector under `id` (memtable deletes need no tombstone —
    /// the row simply ceases to exist). Returns whether it was present.
    pub fn delete(&mut self, id: u32) -> bool {
        match self.ids.iter().position(|&x| x == id) {
            None => false,
            Some(row) => {
                let last = self.ids.len() - 1;
                self.ids.swap_remove(row);
                if row != last {
                    let (head, tail) = self.data.split_at_mut(last * self.dim);
                    head[row * self.dim..(row + 1) * self.dim].copy_from_slice(tail);
                }
                self.data.truncate(last * self.dim);
                true
            }
        }
    }

    /// Exact-scans every row into `top`, returning the number of exact
    /// distances computed (the memtable's contribution to `n_reranked`).
    pub fn scan_into(&self, query: &[f32], top: &mut TopK) -> usize {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        for (row, &id) in self.ids.iter().enumerate() {
            let base = row * self.dim;
            top.push(id, vecs::l2_sq(&self.data[base..base + self.dim], query));
        }
        self.ids.len()
    }

    /// Iterates `(id, vector)` rows in insertion order (used by the seal).
    pub fn entries(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.ids
            .iter()
            .enumerate()
            .map(|(row, &id)| (id, &self.data[row * self.dim..(row + 1) * self.dim]))
    }

    /// The buffered ids in insertion order.
    pub fn ids(&self) -> &[u32] {
        &self.ids
    }

    /// The buffered rows as one flat `len × dim` buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Empties the memtable (after its contents sealed into a segment).
    pub fn clear(&mut self) {
        self.ids.clear();
        self.data.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_scan_and_delete() {
        let mut mt = Memtable::new(2);
        mt.insert(10, &[0.0, 0.0]);
        mt.insert(11, &[1.0, 0.0]);
        mt.insert(12, &[5.0, 5.0]);
        assert_eq!(mt.len(), 3);

        let mut top = TopK::new(2);
        assert_eq!(mt.scan_into(&[0.1, 0.0], &mut top), 3);
        let got = top.into_sorted();
        assert_eq!(got[0].0, 10);
        assert_eq!(got[1].0, 11);

        // swap_remove path: delete a middle row, survivors stay intact.
        assert!(mt.delete(11));
        assert!(!mt.delete(11));
        assert_eq!(mt.len(), 2);
        let rows: Vec<(u32, Vec<f32>)> = mt.entries().map(|(id, v)| (id, v.to_vec())).collect();
        assert!(rows.contains(&(10, vec![0.0, 0.0])));
        assert!(rows.contains(&(12, vec![5.0, 5.0])));
    }

    #[test]
    fn delete_last_row() {
        let mut mt = Memtable::new(2);
        mt.insert(1, &[1.0, 1.0]);
        mt.insert(2, &[2.0, 2.0]);
        assert!(mt.delete(2));
        assert_eq!(mt.len(), 1);
        assert_eq!(mt.data(), &[1.0, 1.0]);
    }
}
