//! Sealed, immutable segments: an IVF-RaBitQ index plus the remap from its
//! dense local ids to the collection's global ids.
//!
//! A segment is born when the memtable seals (or when compaction merges
//! older segments) and never changes shape again — the only permitted
//! mutation is tombstoning, which the inner [`IvfRabitq`] tracks as a
//! bitmap without disturbing its fast-scan packing. Queries run the
//! paper's error-bound re-ranking inside the segment, so the distances a
//! segment reports are exact and the estimator's unbiasedness guarantee is
//! untouched by the engine layered on top.
//!
//! On disk a segment is `[header][payload length][payload][fnv1a]`: the
//! whole payload (remap table + inner index) is covered by a checksum
//! verified at open, so a bit-flipped or truncated file is detected
//! deterministically and the collection can quarantine it instead of
//! serving silently wrong codes. The original checksum-less layout
//! (tagged [`SEGMENT_SECTION_V1`]) is still readable for segments
//! written by older releases.

use crate::io::{DiskIo, StorageIo};
use rabitq_core::persist as p;
use rabitq_core::RabitqConfig;
use rabitq_ivf::{CancelToken, IvfConfig, IvfRabitq, RerankStrategy, SearchResult, SearchScratch};
use rand::Rng;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::Path;

/// Section tag written by current segments: the checksummed
/// `[header][payload length][payload][fnv1a]` layout.
pub const SEGMENT_SECTION: &str = "store-segment-v2";

/// Section tag of the original format — bare `[header][payload]` with no
/// length prefix or checksum. Still readable: files written by older
/// releases load (without checksum verification) instead of being
/// misparsed as corruption and quarantined; they adopt the current
/// format the next time compaction rewrites them.
pub const SEGMENT_SECTION_V1: &str = "store-segment";

/// One immutable segment of the collection.
pub struct Segment {
    /// File name within the collection directory.
    name: String,
    /// Local (dense, 0-based) id → global collection id.
    ids: Vec<u32>,
    /// Global id → local id, for delete routing.
    lookup: HashMap<u32, u32>,
    index: IvfRabitq,
}

impl Segment {
    /// Builds a fresh segment over `(global id, row)` pairs flattened into
    /// `data`. Cluster count follows the `4√n` rule of the paper's setup;
    /// the remaining knobs come from the caller's templates.
    pub fn build(
        name: String,
        ids: Vec<u32>,
        data: &[f32],
        dim: usize,
        ivf_template: &IvfConfig,
        rabitq: RabitqConfig,
    ) -> Self {
        assert_eq!(ids.len() * dim, data.len(), "ids/data shape");
        let mut ivf = ivf_template.clone();
        ivf.n_clusters = IvfConfig::clusters_for(ids.len()).min(ids.len());
        let index = IvfRabitq::build(data, dim, &ivf, rabitq);
        let lookup = ids
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local as u32))
            .collect();
        Self {
            name,
            ids,
            lookup,
            index,
        }
    }

    /// Serializes the segment: section header, payload length, payload
    /// (remap table + inner index), and an FNV-1a checksum over the
    /// payload that [`Segment::read`] verifies.
    pub fn write<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut payload = Vec::new();
        p::write_u32_slice(&mut payload, &self.ids)?;
        self.index.write(&mut payload)?;

        p::write_header(w, SEGMENT_SECTION)?;
        p::write_u64(w, payload.len() as u64)?;
        w.write_all(&payload)?;
        w.write_all(&crate::wal::fnv1a(&payload).to_le_bytes())
    }

    /// Deserializes a segment written by [`Segment::write`]; `name` is the
    /// file name it was read from. Verifies the payload checksum before
    /// parsing, so corruption anywhere in the file surfaces as an
    /// `InvalidData` error rather than silently wrong codes.
    pub fn read<R: Read>(r: &mut R, name: String) -> io::Result<Self> {
        let section = p::read_header(r)?;
        if section == SEGMENT_SECTION_V1 {
            // Legacy layout: the payload follows the header directly, with
            // nothing to checksum-verify. Corruption inside it still
            // surfaces as `InvalidData` from the inner parsers.
            let ids = p::read_u32_vec(r)?;
            let index = IvfRabitq::read(r)?;
            return Self::from_parts(name, ids, index);
        }
        if section != SEGMENT_SECTION {
            return Err(p::invalid(format!(
                "expected segment file, got {section:?}"
            )));
        }
        let payload_len = p::read_u64(r)?;
        if payload_len > 1 << 40 {
            return Err(p::invalid("unreasonable segment payload length"));
        }
        // Read through `take` rather than allocating `payload_len` up
        // front: a corrupt length field must surface as `InvalidData`
        // (so quarantine can run), not as a huge allocation aborting
        // the process. The buffer only ever grows to the bytes that
        // actually exist.
        let mut payload = Vec::new();
        r.by_ref().take(payload_len).read_to_end(&mut payload)?;
        if payload.len() as u64 != payload_len {
            return Err(p::invalid(format!(
                "segment {name:?} payload truncated ({} of {payload_len} bytes)",
                payload.len()
            )));
        }
        let mut crc = [0u8; 4];
        r.read_exact(&mut crc)?;
        if crate::wal::fnv1a(&payload) != u32::from_le_bytes(crc) {
            return Err(p::invalid(format!(
                "segment {name:?} payload checksum mismatch (corrupted file)"
            )));
        }

        let mut cursor = payload.as_slice();
        let ids = p::read_u32_vec(&mut cursor)?;
        let index = IvfRabitq::read(&mut cursor)?;
        if !cursor.is_empty() {
            return Err(p::invalid("segment payload has trailing bytes"));
        }
        Self::from_parts(name, ids, index)
    }

    /// Assembles a parsed segment, validating the remap/index agreement
    /// shared by both on-disk formats.
    fn from_parts(name: String, ids: Vec<u32>, index: IvfRabitq) -> io::Result<Self> {
        if index.len() != ids.len() {
            return Err(p::invalid("segment remap table disagrees with index"));
        }
        let lookup = ids
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local as u32))
            .collect();
        Ok(Self {
            name,
            ids,
            lookup,
            index,
        })
    }

    /// Loads a segment from `path` on the real filesystem.
    pub fn load(path: &Path) -> io::Result<Self> {
        Self::load_with_io(path, &DiskIo)
    }

    /// Loads (and checksum-verifies) a segment through a [`StorageIo`].
    pub fn load_with_io(path: &Path, io: &dyn StorageIo) -> io::Result<Self> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| p::invalid("segment path has no file name"))?
            .to_string();
        let bytes = io.read(path)?;
        Self::read(&mut bytes.as_slice(), name)
    }

    /// File name within the collection directory.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total rows, live and tombstoned.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the segment holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Live (non-tombstoned) rows.
    pub fn n_live(&self) -> usize {
        self.index.n_live()
    }

    /// Whether `global_id` lives here (present and not tombstoned).
    pub fn contains_live(&self, global_id: u32) -> bool {
        self.lookup
            .get(&global_id)
            .is_some_and(|&local| !self.index.is_deleted(local))
    }

    /// Tombstones `global_id`. Returns whether it was live here.
    ///
    /// Takes `&self`: the inner index's tombstone bitmap is atomic, so a
    /// segment shared behind an `Arc` with concurrent readers (the
    /// [`crate::Snapshot`] read path) can be tombstoned in place.
    pub fn delete(&self, global_id: u32) -> bool {
        match self.lookup.get(&global_id) {
            Some(&local) => self.index.remove(local),
            None => false,
        }
    }

    /// The tombstoned global ids, for the manifest.
    pub fn tombstones(&self) -> Vec<u32> {
        self.ids
            .iter()
            .enumerate()
            .filter(|&(local, _)| self.index.is_deleted(local as u32))
            .map(|(_, &global)| global)
            .collect()
    }

    /// Iterates live `(global id, vector)` rows (used by compaction).
    pub fn live_entries(&self) -> impl Iterator<Item = (u32, &[f32])> {
        self.ids
            .iter()
            .enumerate()
            .filter(|&(local, _)| !self.index.is_deleted(local as u32))
            .map(|(local, &global)| (global, self.index.vector(local as u32)))
    }

    /// Searches the segment, returning **global** ids with exact
    /// (re-ranked) distances; the inner index already skips tombstones.
    pub fn search<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        rng: &mut R,
    ) -> SearchResult {
        let mut res = self.index.search(query, k, nprobe, rng);
        for entry in &mut res.neighbors {
            entry.0 = self.ids[entry.0 as usize];
        }
        res
    }

    /// [`Segment::search`] through a reused [`SearchScratch`]: the
    /// allocation-free path for worker threads that scan many segments per
    /// query. Neighbors (already remapped to **global** ids) land in
    /// `scratch.neighbors`; the return value is `(n_estimated, n_reranked)`.
    pub fn search_into<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        scratch: &mut SearchScratch,
        rng: &mut R,
    ) -> (usize, usize) {
        let counts =
            self.index
                .search_into(query, k, nprobe, RerankStrategy::ErrorBound, scratch, rng);
        for entry in &mut scratch.neighbors {
            entry.0 = self.ids[entry.0 as usize];
        }
        counts
    }

    /// [`Segment::search_into`] with cooperative cancellation: the token
    /// is polled at every probed-bucket boundary inside the index scan.
    /// Returns `None` (with `scratch.neighbors` cleared) if the token
    /// cancelled before the scan finished; a completed scan is
    /// bit-identical to the uncancelled path under the same RNG stream.
    pub fn search_into_cancellable<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        k: usize,
        nprobe: usize,
        scratch: &mut SearchScratch,
        rng: &mut R,
        cancel: &CancelToken,
    ) -> Option<(usize, usize)> {
        let counts = self.index.search_into_cancellable(
            query,
            k,
            nprobe,
            RerankStrategy::ErrorBound,
            scratch,
            rng,
            cancel,
        )?;
        for entry in &mut scratch.neighbors {
            entry.0 = self.ids[entry.0 as usize];
        }
        Some(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_segment(n: usize, dim: usize) -> (Segment, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(7);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        // Global ids deliberately sparse/offset to exercise the remap.
        let ids: Vec<u32> = (0..n as u32).map(|i| i * 3 + 100).collect();
        let seg = Segment::build(
            "seg-000000.rbq".into(),
            ids,
            &data,
            dim,
            &IvfConfig::new(4),
            RabitqConfig::default(),
        );
        (seg, data)
    }

    #[test]
    fn search_reports_global_ids_with_exact_distances() {
        let (seg, data) = sample_segment(200, 16);
        let mut rng = StdRng::seed_from_u64(1);
        let probe = &data[50 * 16..51 * 16];
        let res = seg.search(probe, 3, 64, &mut rng);
        assert_eq!(res.neighbors[0].0, 50 * 3 + 100);
        assert!(res.neighbors[0].1 < 1e-6);
        assert!(res.neighbors.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn deletes_route_through_the_remap_and_round_trip() {
        let (seg, data) = sample_segment(120, 8);
        assert!(seg.contains_live(100)); // local 0
        assert!(seg.delete(100));
        assert!(!seg.delete(100));
        assert!(!seg.delete(99)); // never existed
        assert_eq!(seg.n_live(), 119);
        assert_eq!(seg.tombstones(), vec![100]);

        let mut buf = Vec::new();
        seg.write(&mut buf).unwrap();
        let restored = Segment::read(&mut buf.as_slice(), seg.name().to_string()).unwrap();
        assert_eq!(restored.n_live(), 119);
        assert!(!restored.contains_live(100));
        let mut rng = StdRng::seed_from_u64(2);
        let res = restored.search(&data[0..8], 5, 64, &mut rng);
        assert!(res.neighbors.iter().all(|&(id, _)| id != 100));
    }

    #[test]
    fn corruption_anywhere_fails_the_checksum() {
        let (seg, _) = sample_segment(50, 8);
        let mut pristine = Vec::new();
        seg.write(&mut pristine).unwrap();

        // A single flipped bit in the payload is caught.
        let mut flipped = pristine.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        let err = match Segment::read(&mut flipped.as_slice(), "seg.rbq".into()) {
            Err(e) => e,
            Ok(_) => panic!("bit flip went undetected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");

        // So is a truncated file (torn write of the segment itself).
        let mut torn = pristine.clone();
        torn.truncate(torn.len() - 5);
        assert!(Segment::read(&mut torn.as_slice(), "seg.rbq".into()).is_err());

        // And the pristine bytes still parse.
        assert!(Segment::read(&mut pristine.as_slice(), "seg.rbq".into()).is_ok());
    }

    #[test]
    fn legacy_v1_segments_still_load() {
        let (seg, data) = sample_segment(80, 8);
        // The pre-checksum layout: header, then the payload directly.
        let mut v1 = Vec::new();
        p::write_header(&mut v1, SEGMENT_SECTION_V1).unwrap();
        p::write_u32_slice(&mut v1, &seg.ids).unwrap();
        seg.index.write(&mut v1).unwrap();

        let restored = Segment::read(&mut v1.as_slice(), "seg-legacy.rbq".into()).unwrap();
        assert_eq!(restored.len(), 80);
        let mut rng = StdRng::seed_from_u64(3);
        let res = restored.search(&data[0..8], 1, 64, &mut rng);
        assert_eq!(res.neighbors[0].0, 100); // local 0 → global 100
    }

    #[test]
    fn corrupt_length_field_is_invalid_data_not_a_huge_allocation() {
        let mut evil = Vec::new();
        p::write_header(&mut evil, SEGMENT_SECTION).unwrap();
        p::write_u64(&mut evil, 1 << 39).unwrap(); // 512 GiB claimed
        evil.extend_from_slice(&[0u8; 16]); // ...16 bytes present
        let err = match Segment::read(&mut evil.as_slice(), "seg.rbq".into()) {
            Err(e) => e,
            Ok(_) => panic!("corrupt length field went undetected"),
        };
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    }

    #[test]
    fn live_entries_skip_tombstones() {
        let (seg, _) = sample_segment(10, 4);
        seg.delete(103); // local 1
        let ids: Vec<u32> = seg.live_entries().map(|(id, _)| id).collect();
        assert_eq!(ids.len(), 9);
        assert!(!ids.contains(&103));
    }
}
