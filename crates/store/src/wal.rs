//! The write-ahead log: an append-only file of checksummed insert/delete
//! records.
//!
//! Every mutation hits the WAL before it touches the in-memory state, so a
//! crash at any point loses at most the record being written. Records are
//! framed as `[kind][id][payload][fnv1a-checksum]`; on replay, a torn or
//! corrupted tail (the classic partial-write crash signature) is detected
//! by the checksum, dropped, and the file is truncated back to its last
//! intact record so subsequent appends extend a valid log. If that repair
//! truncation itself fails (disk error mid-recovery), the file is left
//! untouched and the open errors — the next open re-detects the same torn
//! tail and retries, so recovery is idempotent.
//!
//! All file access goes through a [`StorageIo`] VFS, so the crash-matrix
//! tests can fault any individual operation — including the repair.

use crate::io::{atomic_write, disk_io, LogFile, StorageIo};
use rabitq_core::persist as p;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Section tag in the WAL file header.
pub const WAL_SECTION: &str = "store-wal";

const KIND_INSERT: u8 = 1;
const KIND_DELETE: u8 = 2;

/// One logical WAL entry.
#[derive(Clone, Debug, PartialEq)]
pub enum WalRecord {
    /// A vector was appended under `id`.
    Insert { id: u32, vector: Vec<f32> },
    /// The vector under `id` was tombstoned.
    Delete { id: u32 },
}

/// Outcome of replaying a WAL file on open.
pub struct WalReplay {
    /// The intact records, in append order.
    pub records: Vec<WalRecord>,
    /// Whether a torn/corrupt tail was found and truncated away.
    pub recovered_torn_tail: bool,
}

/// An open write-ahead log.
pub struct Wal {
    path: PathBuf,
    file: Box<dyn LogFile>,
    dim: usize,
    header_len: u64,
}

/// 32-bit FNV-1a over a byte slice — cheap, dependency-free corruption
/// detection for record frames (not cryptographic).
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Wal {
    /// Opens (or creates) the log at `path` on the real filesystem; see
    /// [`Wal::open_with_io`].
    pub fn open(path: &Path, dim: usize) -> io::Result<(Self, WalReplay)> {
        Self::open_with_io(path, dim, &disk_io())
    }

    /// Opens (or creates) the log at `path` for `dim`-dimensional vectors
    /// and replays whatever survived the last process. A torn final record
    /// is tolerated: it is dropped and the file truncated to the last
    /// intact frame. A bad magic or a dimension mismatch is a hard error —
    /// that is the wrong file, not a crash artifact.
    pub fn open_with_io(
        path: &Path,
        dim: usize,
        io: &Arc<dyn StorageIo>,
    ) -> io::Result<(Self, WalReplay)> {
        if io.file_len(path)?.unwrap_or(0) == 0 {
            // Fresh log: materialize the header atomically (temp + rename
            // + directory fsync) so a crash during creation can never
            // leave a partial header that later opens would reject as a
            // corrupt file.
            let mut header = Vec::new();
            p::write_header(&mut header, WAL_SECTION)?;
            p::write_usize(&mut header, dim)?;
            atomic_write(io.as_ref(), path, &header)?;
            let file = io.open_log(path)?;
            return Ok((
                Self {
                    path: path.to_path_buf(),
                    file,
                    dim,
                    header_len: header.len() as u64,
                },
                WalReplay {
                    records: Vec::new(),
                    recovered_torn_tail: false,
                },
            ));
        }

        let bytes = io.read(path)?;
        let (records, header_len, good) = scan_bytes(&bytes, dim)?;
        let recovered_torn_tail = good < bytes.len();
        let mut file = io.open_log(path)?;
        if recovered_torn_tail {
            // The repair itself can fail; leave the file as-is in that
            // case so the next open re-runs the same (idempotent) repair.
            file.truncate(good as u64)?;
        }

        Ok((
            Self {
                path: path.to_path_buf(),
                file,
                dim,
                header_len: header_len as u64,
            },
            WalReplay {
                records,
                recovered_torn_tail,
            },
        ))
    }

    /// Reads the log without opening it for writing or repairing it — the
    /// `verify` scrub path. Reports the intact records and whether a torn
    /// tail is present (which a read-write [`Wal::open`] would truncate).
    pub fn scan(path: &Path, dim: usize, io: &dyn StorageIo) -> io::Result<WalReplay> {
        let bytes = io.read(path)?;
        let (records, _header_len, good) = scan_bytes(&bytes, dim)?;
        Ok(WalReplay {
            recovered_torn_tail: good < bytes.len(),
            records,
        })
    }

    /// Path of the underlying file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends an insert record and flushes it to the OS.
    pub fn append_insert(&mut self, id: u32, vector: &[f32]) -> io::Result<()> {
        assert_eq!(vector.len(), self.dim, "vector dimensionality");
        let mut frame = Vec::with_capacity(1 + 4 + 4 * vector.len() + 4);
        frame.push(KIND_INSERT);
        frame.extend_from_slice(&id.to_le_bytes());
        for &v in vector {
            frame.extend_from_slice(&v.to_le_bytes());
        }
        self.append_frame(frame)
    }

    /// Appends a delete record and flushes it to the OS.
    pub fn append_delete(&mut self, id: u32) -> io::Result<()> {
        let mut frame = Vec::with_capacity(1 + 4 + 4);
        frame.push(KIND_DELETE);
        frame.extend_from_slice(&id.to_le_bytes());
        self.append_frame(frame)
    }

    fn append_frame(&mut self, mut frame: Vec<u8>) -> io::Result<()> {
        let crc = fnv1a(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        self.file.append(&frame)
    }

    /// Forces the log to stable storage (`fsync`). Appends only flush to
    /// the OS; call this when a power-loss guarantee is worth the latency.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync()
    }

    /// Discards every record, truncating the log back to its header. Done
    /// after the memtable seals: those records are now durable in a
    /// segment file and the (already-renamed) manifest.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.truncate(self.header_len)
    }
}

/// Parses a WAL image: returns the intact records, the header length,
/// and the byte offset of the first torn/corrupt frame (== `bytes.len()`
/// when the whole log is intact).
fn scan_bytes(bytes: &[u8], dim: usize) -> io::Result<(Vec<WalRecord>, usize, usize)> {
    let mut cursor = bytes;
    let section = p::read_header(&mut cursor)?;
    if section != WAL_SECTION {
        return Err(p::invalid(format!("expected WAL file, got {section:?}")));
    }
    let file_dim = p::read_usize(&mut cursor)?;
    if file_dim != dim {
        return Err(p::invalid(format!(
            "WAL holds {file_dim}-dimensional vectors, collection expects {dim}"
        )));
    }
    let header_len = bytes.len() - cursor.len();

    let mut records = Vec::new();
    let mut good = header_len;
    while good < bytes.len() {
        match parse_record(&bytes[good..], dim) {
            Some((record, frame_len)) => {
                records.push(record);
                good += frame_len;
            }
            None => break,
        }
    }
    Ok((records, header_len, good))
}

/// Parses one record frame from `bytes`; `None` means a torn/corrupt tail.
fn parse_record(bytes: &[u8], dim: usize) -> Option<(WalRecord, usize)> {
    let kind = *bytes.first()?;
    let payload_len = match kind {
        KIND_INSERT => 1 + 4 + 4 * dim,
        KIND_DELETE => 1 + 4,
        _ => return None, // unknown kind ⇒ corruption
    };
    if bytes.len() < payload_len + 4 {
        return None;
    }
    let stored = u32::from_le_bytes(bytes[payload_len..payload_len + 4].try_into().unwrap());
    if fnv1a(&bytes[..payload_len]) != stored {
        return None;
    }
    let id = u32::from_le_bytes(bytes[1..5].try_into().unwrap());
    let record = match kind {
        KIND_INSERT => WalRecord::Insert {
            id,
            vector: bytes[5..payload_len]
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        },
        _ => WalRecord::Delete { id },
    };
    Some((record, payload_len + 4))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::DiskIo;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rabitq-wal-{name}-{}.log", std::process::id()))
    }

    #[test]
    fn records_round_trip_across_reopen() {
        let path = tmp("roundtrip");
        std::fs::remove_file(&path).ok();
        let (mut wal, replay) = Wal::open(&path, 3).unwrap();
        assert!(replay.records.is_empty());
        wal.append_insert(0, &[1.0, 2.0, 3.0]).unwrap();
        wal.append_delete(0).unwrap();
        wal.append_insert(1, &[-1.0, 0.5, 9.0]).unwrap();
        drop(wal);

        let (_, replay) = Wal::open(&path, 3).unwrap();
        assert!(!replay.recovered_torn_tail);
        assert_eq!(
            replay.records,
            vec![
                WalRecord::Insert {
                    id: 0,
                    vector: vec![1.0, 2.0, 3.0]
                },
                WalRecord::Delete { id: 0 },
                WalRecord::Insert {
                    id: 1,
                    vector: vec![-1.0, 0.5, 9.0]
                },
            ]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_continue() {
        let path = tmp("torn");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 2).unwrap();
        wal.append_insert(0, &[1.0, 1.0]).unwrap();
        wal.append_insert(1, &[2.0, 2.0]).unwrap();
        drop(wal);

        // Simulate a crash mid-write: chop 3 bytes off the final record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        // A read-only scan sees the damage without repairing it.
        let scanned = Wal::scan(&path, 2, &DiskIo).unwrap();
        assert!(scanned.recovered_torn_tail);
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(std::fs::read(&path).unwrap().len(), bytes.len() - 3);

        let (mut wal, replay) = Wal::open(&path, 2).unwrap();
        assert!(replay.recovered_torn_tail);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(
            replay.records[0],
            WalRecord::Insert {
                id: 0,
                vector: vec![1.0, 1.0]
            }
        );
        // The log is healthy again: appends land on the truncated tail.
        wal.append_delete(0).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, 2).unwrap();
        assert!(!replay.recovered_torn_tail);
        assert_eq!(replay.records.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_middle_byte_drops_the_suffix() {
        let path = tmp("corrupt");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 2).unwrap();
        wal.append_insert(0, &[1.0, 1.0]).unwrap();
        wal.append_insert(1, &[2.0, 2.0]).unwrap();
        wal.append_insert(2, &[3.0, 3.0]).unwrap();
        drop(wal);

        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2; // inside record 1 or 2
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = Wal::open(&path, 2).unwrap();
        assert!(replay.recovered_torn_tail);
        assert!(replay.records.len() < 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reset_empties_the_log() {
        let path = tmp("reset");
        std::fs::remove_file(&path).ok();
        let (mut wal, _) = Wal::open(&path, 2).unwrap();
        wal.append_insert(0, &[1.0, 1.0]).unwrap();
        wal.reset().unwrap();
        wal.append_insert(1, &[2.0, 2.0]).unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path, 2).unwrap();
        assert_eq!(
            replay.records,
            vec![WalRecord::Insert {
                id: 1,
                vector: vec![2.0, 2.0]
            }]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_dimension_is_a_hard_error() {
        let path = tmp("dim");
        std::fs::remove_file(&path).ok();
        let (_, _) = Wal::open(&path, 4).unwrap();
        assert!(Wal::open(&path, 8).is_err());
        std::fs::remove_file(&path).ok();
    }
}
