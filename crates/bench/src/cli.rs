//! Minimal flag parser shared by every experiment binary.
//!
//! Kept dependency-free on purpose: `--flag value` pairs only, with typed
//! accessors and defaults chosen per binary.

use rabitq_data::registry::PaperDataset;
use std::collections::HashMap;

/// Parsed command-line arguments.
#[derive(Clone, Debug, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parses `--key value` pairs from `std::env::args()`.
    ///
    /// # Panics
    /// Panics (with a usage hint) on a dangling `--key` or a token that is
    /// not part of a pair.
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit token stream (testable).
    pub fn from_iter<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut values = HashMap::new();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            let key = tok
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --flag, got {tok:?}"));
            let val = iter
                .next()
                .unwrap_or_else(|| panic!("flag --{key} needs a value"));
            values.insert(key.to_string(), val);
        }
        Self { values }
    }

    /// A string flag with a default.
    pub fn str(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// A `usize` flag with a default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// A `u64` flag with a default.
    pub fn u64(&self, key: &str, default: u64) -> u64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be an integer, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// An `f64` flag with a default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.values
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} must be a number, got {v:?}"))
            })
            .unwrap_or(default)
    }

    /// The `--datasets` flag: comma-separated paper-dataset names, or the
    /// provided default list.
    pub fn datasets(&self, default: &[PaperDataset]) -> Vec<PaperDataset> {
        match self.values.get("datasets") {
            None => default.to_vec(),
            Some(spec) if spec == "all" => PaperDataset::ALL.to_vec(),
            Some(spec) => spec
                .split(',')
                .map(|name| {
                    PaperDataset::parse(name).unwrap_or_else(|| panic!("unknown dataset {name:?}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|t| t.to_string()))
    }

    #[test]
    fn parses_typed_flags_with_defaults() {
        let a = args(&["--n", "5000", "--seed", "9"]);
        assert_eq!(a.usize("n", 100), 5000);
        assert_eq!(a.u64("seed", 1), 9);
        assert_eq!(a.usize("queries", 42), 42);
    }

    #[test]
    fn dataset_list_parses_names_and_all() {
        let a = args(&["--datasets", "sift,gist"]);
        let ds = a.datasets(&[PaperDataset::Msong]);
        assert_eq!(ds, vec![PaperDataset::Sift, PaperDataset::Gist]);
        let all = args(&["--datasets", "all"]).datasets(&[]);
        assert_eq!(all.len(), 6);
        let def = args(&[]).datasets(&[PaperDataset::Deep]);
        assert_eq!(def, vec![PaperDataset::Deep]);
    }

    #[test]
    #[should_panic(expected = "needs a value")]
    fn dangling_flag_panics() {
        args(&["--n"]);
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn bad_dataset_panics() {
        args(&["--datasets", "imagenet"]).datasets(&[]);
    }
}
