//! **Figure 5** — verification of the confidence parameter `ε₀`.
//!
//! Following Section 5.2.4: estimate distances for *all* data vectors
//! (every bucket probed), re-rank by the error-bound rule at varying `ε₀`,
//! and measure recall@K. The theory predicts a dataset-independent curve
//! saturating near `ε₀ ≈ 1.9` — which is why the parameter needs no
//! tuning.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig5_epsilon0 -- \
//!     --datasets sift,gist --n 10000 --queries 20
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_data::exact_knn;
use rabitq_data::registry::PaperDataset;
use rabitq_ivf::{IvfConfig, IvfRabitq, RerankStrategy};
use rabitq_metrics::recall_at_k;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let queries = args.usize("queries", 20);
    let k = args.usize("k", 100);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Gist]);

    println!("# Figure 5: recall@{k} vs epsilon0 (all buckets probed)");
    println!("# n = {n}, queries = {queries}\n");

    for dataset in datasets {
        let clusters = args.usize("clusters", (n / 256).max(16));
        let ds = dataset.generate(n, queries, seed);
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);
        let ivf_cfg = IvfConfig::new(clusters);
        let index = IvfRabitq::build(&ds.data, ds.dim, &ivf_cfg, RabitqConfig::default());
        println!("## {} (D = {})", ds.name, ds.dim);

        let mut table = Table::new(&["epsilon0", "recall@k", "rerank-fraction"]);
        for step in 0..=16 {
            let epsilon0 = step as f32 * 0.25;
            let mut rng = StdRng::seed_from_u64(seed ^ 0xE95);
            let mut recall = 0.0;
            let mut reranked = 0usize;
            let mut estimated = 0usize;
            for qi in 0..queries {
                let res = index.search_with(
                    ds.query(qi),
                    k,
                    clusters,
                    RerankStrategy::ErrorBoundWithEpsilon(epsilon0),
                    &mut rng,
                );
                let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
                let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
                recall += recall_at_k(&want, &got);
                reranked += res.n_reranked;
                estimated += res.n_estimated;
            }
            table.row(&[
                format!("{epsilon0:.2}"),
                format!("{:.4}", recall / queries as f64),
                format!("{:.4}", reranked as f64 / estimated.max(1) as f64),
            ]);
        }
        table.print();
        println!();
    }
}
