//! **Figure 1 (right panel)** — concentration of the projection of the
//! quantized vector `ō` onto the plane spanned by `o` and `q`.
//!
//! The paper fixes a pair `o, q` in D = 128 and resamples the random
//! orthogonal matrix `P` 10⁵ times, plotting `(⟨ō,o⟩, ⟨ō,e₁⟩)`. Two
//! samplers are used here and must agree:
//!
//! * `matrix` — the literal protocol: sample `P`, encode `o`, measure.
//! * `sphere` — the rotation-invariance shortcut: `P⁻¹o` is uniform on the
//!   sphere and `P⁻¹e₁` is uniform on the subsphere orthogonal to it, so
//!   the pair can be sampled directly in O(D). This is what makes 10⁵
//!   samples cheap.
//!
//! Expected (Section 3.2.1): `⟨ō,o⟩` concentrated around 0.8, `⟨ō,e₁⟩`
//! symmetric around 0 with spread `O(1/√D)`.

use rabitq_bench::{Args, Table};
use rabitq_core::{Rabitq, RabitqConfig};
use rabitq_math::rng::standard_normal_vec;
use rabitq_math::special::expected_code_alignment;
use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dim = args.usize("dim", 128);
    let sphere_samples = args.usize("samples", 100_000);
    let matrix_samples = args.usize("matrix-samples", 2_000);
    let seed = args.u64("seed", 42);

    println!("# Figure 1 (right): concentration of (⟨ō,o⟩, ⟨ō,e1⟩), D = {dim}");
    println!(
        "# sphere sampler: {sphere_samples} samples; matrix sampler: {matrix_samples} samples\n"
    );

    let mut rng = StdRng::seed_from_u64(seed);

    // --- Sphere sampler. ---
    let mut stats_fast = Moments2::default();
    for _ in 0..sphere_samples {
        // u = P⁻¹o uniform on S^{D−1}.
        let mut u = standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut u);
        // w = P⁻¹e₁ uniform on the subsphere orthogonal to u.
        let mut w = standard_normal_vec(&mut rng, dim);
        let proj = vecs::dot(&w, &u);
        vecs::axpy(-proj, &u, &mut w);
        vecs::normalize(&mut w);
        // x̄ = sign(u)/√D; ⟨ō,o⟩ = ⟨x̄,u⟩ = ‖u‖₁/√D; ⟨ō,e₁⟩ = ⟨x̄,w⟩.
        let inv_sqrt_d = 1.0 / (dim as f32).sqrt();
        let ip_oo = (vecs::l1_norm_f64(&u) * inv_sqrt_d as f64) as f32;
        let ip_e1: f32 = u
            .iter()
            .zip(w.iter())
            .map(|(&ui, &wi)| if ui >= 0.0 { wi } else { -wi })
            .sum::<f32>()
            * inv_sqrt_d;
        stats_fast.push(ip_oo as f64, ip_e1 as f64);
    }

    // --- Matrix sampler (literal protocol, fewer samples). ---
    let o = {
        let mut v = standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut v);
        v
    };
    let q = {
        let mut v = standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut v);
        v
    };
    // e₁ = (q − ⟨q,o⟩o) normalized (Lemma 3.1).
    let mut e1 = q.clone();
    let qo = vecs::dot(&q, &o);
    vecs::axpy(-qo, &o, &mut e1);
    vecs::normalize(&mut e1);

    let mut stats_matrix = Moments2::default();
    for s in 0..matrix_samples {
        let cfg = RabitqConfig {
            seed: seed.wrapping_add(s as u64).wrapping_mul(0x9E37_79B9),
            padded_dim: Some(dim),
            ..RabitqConfig::default()
        };
        let quantizer = Rabitq::new(dim, cfg);
        let zero = vec![0.0f32; dim];
        let codes = quantizer.encode_set(std::iter::once(o.as_slice()), &zero);
        // ō = P·x̄; ⟨ō, v⟩ = ⟨x̄, P⁻¹v⟩.
        let xbar = codes.reconstruct_rotated(0);
        let rot_o = quantizer.rotate(&o);
        let rot_e1 = quantizer.rotate(&e1);
        let ip_oo = vecs::dot(&xbar, &rot_o);
        let ip_e1 = vecs::dot(&xbar, &rot_e1);
        stats_matrix.push(ip_oo as f64, ip_e1 as f64);
    }

    let theory = expected_code_alignment(dim);
    let mut table = Table::new(&["sampler", "E[<o-bar,o>]", "std", "E[<o-bar,e1>]", "std"]);
    for (name, st) in [
        ("sphere (fast)", &stats_fast),
        ("matrix (literal)", &stats_matrix),
    ] {
        table.row(&[
            name.to_string(),
            format!("{:.4}", st.mean_x()),
            format!("{:.4}", st.std_x()),
            format!("{:+.4}", st.mean_y()),
            format!("{:.4}", st.std_y()),
        ]);
    }
    table.row(&[
        "theory".to_string(),
        format!("{theory:.4}"),
        format!("O(1/sqrt(D)) = {:.4}", 1.0 / (dim as f64).sqrt()),
        "0.0000".to_string(),
        format!("~1/sqrt(D) = {:.4}", 1.0 / (dim as f64).sqrt()),
    ]);
    table.print();

    // ASCII density of the point cloud, mirroring the scatter plot.
    println!("\nPoint-cloud density (x: <o-bar,o> in [0.7,0.9], y: <o-bar,e1> in [-0.15,0.15]):");
    render_cloud(&stats_fast.samples, 0.7, 0.9, -0.15, 0.15);
}

/// Streaming 2-D moments plus retained samples for the ASCII plot.
#[derive(Default)]
struct Moments2 {
    n: u64,
    sx: f64,
    sxx: f64,
    sy: f64,
    syy: f64,
    samples: Vec<(f64, f64)>,
}

impl Moments2 {
    fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        self.sx += x;
        self.sxx += x * x;
        self.sy += y;
        self.syy += y * y;
        if self.samples.len() < 50_000 {
            self.samples.push((x, y));
        }
    }
    fn mean_x(&self) -> f64 {
        self.sx / self.n as f64
    }
    fn mean_y(&self) -> f64 {
        self.sy / self.n as f64
    }
    fn std_x(&self) -> f64 {
        (self.sxx / self.n as f64 - self.mean_x().powi(2))
            .max(0.0)
            .sqrt()
    }
    fn std_y(&self) -> f64 {
        (self.syy / self.n as f64 - self.mean_y().powi(2))
            .max(0.0)
            .sqrt()
    }
}

fn render_cloud(samples: &[(f64, f64)], x0: f64, x1: f64, y0: f64, y1: f64) {
    const W: usize = 64;
    const H: usize = 16;
    let mut grid = vec![0u32; W * H];
    for &(x, y) in samples {
        if x < x0 || x >= x1 || y < y0 || y >= y1 {
            continue;
        }
        let cx = ((x - x0) / (x1 - x0) * W as f64) as usize;
        let cy = ((y - y0) / (y1 - y0) * H as f64) as usize;
        grid[cy.min(H - 1) * W + cx.min(W - 1)] += 1;
    }
    let max = grid.iter().copied().max().unwrap_or(1).max(1);
    let shades = [' ', '.', ':', '+', '*', '#', '@'];
    for row in (0..H).rev() {
        let line: String = (0..W)
            .map(|col| {
                let v = grid[row * W + col] as f64 / max as f64;
                shades[(v * (shades.len() - 1) as f64).ceil() as usize]
            })
            .collect();
        println!("|{line}|");
    }
}
