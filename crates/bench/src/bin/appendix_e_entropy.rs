//! **Appendix E** — uniformity of the normalized data, measured as the
//! bit entropy of the quantization codes.
//!
//! For each dataset: build IVF-RaBitQ, sum the per-bit-position Shannon
//! entropy of the codes, and normalize by the code length. The paper
//! reports > 99.9% on all datasets — i.e. after per-bucket normalization
//! and random rotation, every code bit is a nearly unbiased coin,
//! confirming the IVF-centroid normalization spreads vectors evenly on
//! the hypersphere.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin appendix_e_entropy -- --datasets all
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_data::registry::PaperDataset;
use rabitq_ivf::{IvfConfig, IvfRabitq};

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&PaperDataset::ALL);

    println!("# Appendix E: normalized bit entropy of quantization codes");
    println!("# paper: > 99.9% of the code length on all datasets\n");

    let mut table = Table::new(&["dataset", "D", "normalized-entropy"]);
    for dataset in datasets {
        let clusters = args.usize("clusters", (n / 256).max(16));
        let ds = dataset.generate(n, 1, seed);
        let index = IvfRabitq::build(
            &ds.data,
            ds.dim,
            &IvfConfig::new(clusters),
            RabitqConfig::default(),
        );
        let h = index.normalized_code_entropy();
        table.row(&[
            ds.name.clone(),
            ds.dim.to_string(),
            format!("{:.3}%", h * 100.0),
        ]);
    }
    table.print();
}
