//! **Table 5 (appendix)** — the error of randomized uniform scalar
//! quantization is `O(Δ)`, not the trivial `O(√D·Δ)`.
//!
//! Measures `|⟨x̄, q'⟩ − ⟨x̄, q̄⟩|` across dimensions and `B_q` values and
//! reports the ratio `error/Δ`. Appendix D proves the randomized rounding
//! concentrates this ratio to O(1) independently of D (Hoeffding), while
//! deterministic worst-case reasoning would allow it to grow as √D — the
//! gap that lets `B_q = Θ(log log D)` suffice (Theorem 3.3).
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin table5_bq_error_scaling
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::kernels::ip_code_query;
use rabitq_core::QuantizedQuery;
use rabitq_math::rng::standard_normal_vec;
use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::parse();
    let trials = args.usize("trials", 400);
    let seed = args.u64("seed", 42);

    println!("# Table 5: scalar-quantization error scaling (|<x,q'> - <x,q-bar>|)");
    println!("# randomized rounding => error/Delta stays O(1) as D grows\n");

    let mut table = Table::new(&[
        "D",
        "B_q",
        "mean |err|",
        "mean Delta",
        "mean |err|/Delta",
        "trivial bound sqrt(D)",
    ]);
    let mut rng = StdRng::seed_from_u64(seed);
    for &dim in &[128usize, 512, 2048] {
        for &bq in &[2u8, 4, 6] {
            let mut err_sum = 0.0f64;
            let mut delta_sum = 0.0f64;
            let mut ratio_sum = 0.0f64;
            for _ in 0..trials {
                // Random unit residual and random sign code.
                let residual = standard_normal_vec(&mut rng, dim);
                let norm = vecs::norm(&residual);
                let query = QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng);
                let words = dim / 64;
                let code: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
                // Exact ⟨x̄, q'⟩ with x̄ = ±1/√D signs from the code.
                let inv_sqrt_d = 1.0 / (dim as f32).sqrt();
                let mut exact = 0.0f64;
                for (d, &raw) in residual.iter().enumerate() {
                    let sign = if (code[d / 64] >> (d % 64)) & 1 == 1 {
                        inv_sqrt_d
                    } else {
                        -inv_sqrt_d
                    };
                    exact += (sign * (raw / norm)) as f64;
                }
                // Quantized ⟨x̄, q̄⟩ via the integer identity (Eq. 20).
                let ip_bin = ip_code_query(&code, &query);
                let popcount: u32 = code.iter().map(|w| w.count_ones()).sum();
                let approx =
                    rabitq_core::estimator::ip_quantized(ip_bin, popcount, &query, dim) as f64;
                let err = (exact - approx).abs();
                let delta = query.delta as f64;
                err_sum += err;
                delta_sum += delta;
                if delta > 0.0 {
                    ratio_sum += err / delta;
                }
            }
            let t = trials as f64;
            table.row(&[
                dim.to_string(),
                bq.to_string(),
                format!("{:.2e}", err_sum / t),
                format!("{:.2e}", delta_sum / t),
                format!("{:.3}", ratio_sum / t),
                format!("{:.1}", (dim as f64).sqrt()),
            ]);
        }
    }
    table.print();
    println!("\nReading: |err|/Delta is O(1) and does not grow with D, unlike the trivial sqrt(D) bound.");
}
