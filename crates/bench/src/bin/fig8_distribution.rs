//! **Figure 8 (appendix)** — verification of Lemma B.3.
//!
//! Two checks against closed forms:
//! 1. `⟨ō,e₁⟩ / √(1 − ⟨ō,o⟩²)` must follow the sphere-coordinate density
//!    `p_{D−1}` (histogram vs theoretical pdf, reported as max deviation
//!    and a side-by-side table on the central bins);
//! 2. `⟨ō,o⟩` must concentrate around the closed-form expectation
//!    `√(D/π)·2Γ(D/2)/((D−1)Γ((D−1)/2))` ≈ 0.8.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig8_distribution -- --samples 100000
//! ```

use rabitq_bench::{Args, Table};
use rabitq_math::rng::standard_normal_vec;
use rabitq_math::special::{expected_code_alignment, sphere_coordinate_density};
use rabitq_math::vecs;
use rabitq_metrics::Histogram;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let dim = args.usize("dim", 128);
    let samples = args.usize("samples", 100_000);
    let seed = args.u64("seed", 42);

    println!("# Figure 8: distribution verification of Lemma B.3 (D = {dim}, {samples} samples)\n");

    let mut rng = StdRng::seed_from_u64(seed);
    let lim = 4.0 / (dim as f64 - 1.0).sqrt();
    let mut hist = Histogram::new(-lim, lim, 32);
    let mut alignment_sum = 0.0f64;
    let mut alignment_sq = 0.0f64;

    for _ in 0..samples {
        // Rotation-invariance sampler (see fig1_concentration).
        let mut u = standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut u);
        let mut w = standard_normal_vec(&mut rng, dim);
        let proj = vecs::dot(&w, &u);
        vecs::axpy(-proj, &u, &mut w);
        vecs::normalize(&mut w);
        let inv_sqrt_d = 1.0 / (dim as f32).sqrt();
        let ip_oo = vecs::l1_norm_f64(&u) * inv_sqrt_d as f64;
        let ip_e1: f64 = u
            .iter()
            .zip(w.iter())
            .map(|(&ui, &wi)| if ui >= 0.0 { wi as f64 } else { -(wi as f64) })
            .sum::<f64>()
            * inv_sqrt_d as f64;
        alignment_sum += ip_oo;
        alignment_sq += ip_oo * ip_oo;
        let x1 = ip_e1 / (1.0 - ip_oo * ip_oo).max(1e-12).sqrt();
        hist.record(x1);
    }

    // ---- Panel 1: X₁ histogram vs p_{D−1}. ----
    println!("## X1 = <o-bar,e1>/sqrt(1-<o-bar,o>^2) vs theoretical p_(D-1)");
    let mut table = Table::new(&["bin-center", "empirical-density", "theory-density"]);
    let mut max_dev: f64 = 0.0;
    for b in 0..hist.bins() {
        let x = hist.bin_center(b);
        let emp = hist.density(b);
        let th = sphere_coordinate_density(dim - 1, x);
        // Relative deviation is only meaningful where the density carries
        // mass; extreme-tail bins hold a handful of samples.
        if th >= 0.05 {
            max_dev = max_dev.max((emp - th).abs() / th);
        }
        if b % 4 == 0 {
            table.row(&[format!("{x:+.4}"), format!("{emp:.3}"), format!("{th:.3}")]);
        }
    }
    table.print();
    println!(
        "max relative deviation over bins with density >= 0.05: {:.2}%",
        max_dev * 100.0
    );
    println!("samples outside +/-4 sigma window: {}\n", hist.outside());

    // ---- Panel 2: ⟨ō,o⟩ concentration. ----
    let mean = alignment_sum / samples as f64;
    let std = (alignment_sq / samples as f64 - mean * mean)
        .max(0.0)
        .sqrt();
    let theory = expected_code_alignment(dim);
    println!("## <o-bar,o> concentration");
    let mut t2 = Table::new(&["quantity", "empirical", "theory"]);
    t2.row(&["mean".into(), format!("{mean:.5}"), format!("{theory:.5}")]);
    t2.row(&[
        "std".into(),
        format!("{std:.5}"),
        format!("O(1/sqrt(D)) = {:.5}", 1.0 / (dim as f64).sqrt()),
    ]);
    t2.print();
}
