//! **Extension experiment** — recall and throughput of the segmented
//! collection engine (`rabitq-store`) versus a monolithic IVF-RaBitQ
//! index over the same live rows.
//!
//! The collection ingests the base vectors through its WAL/memtable path
//! (sealing a segment every `--memtable` rows), deletes `--dead-fraction`
//! of them, and is then measured three ways: multi-segment fan-out before
//! compaction, single segment after compaction, and a fresh-built
//! monolithic index as the baseline. The claim under test: segmenting and
//! compacting are recall-neutral — every layer re-ranks with the paper's
//! error bound, so only QPS moves.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin ext_collection_recall -- \
//!     --datasets sift --n 20000 --queries 50 --k 10 --nprobe 64
//! ```

use rabitq_bench::{Args, Table};
use rabitq_data::exact_knn;
use rabitq_data::registry::PaperDataset;
use rabitq_ivf::{IvfConfig, IvfRabitq, SearchResult};
use rabitq_metrics::{recall_at_k, Stopwatch};
use rabitq_store::{Collection, CollectionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let queries = args.usize("queries", 50);
    let k = args.usize("k", 10);
    let nprobe = args.usize("nprobe", 64);
    let memtable = args.usize("memtable", 4_096);
    let dead_fraction = args.f64("dead-fraction", 0.2);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift]);

    println!("# Extension: segmented collection vs monolithic IVF-RaBitQ (recall@{k})");
    println!(
        "# n = {n}, queries = {queries}, nprobe = {nprobe}, memtable = {memtable}, \
         dead fraction = {dead_fraction}\n"
    );

    for dataset in datasets {
        let ds = dataset.generate(n, queries, seed);
        println!("## {} (D = {})", ds.name, ds.dim);

        let dir =
            std::env::temp_dir().join(format!("ext-collection-{}-{}", ds.name, std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut config = CollectionConfig::new(ds.dim);
        config.memtable_capacity = memtable;
        config.auto_compact = false;
        let mut collection = Collection::open(&dir, config).expect("open collection");

        let mut sw = Stopwatch::new();
        sw.start();
        for row in ds.data.chunks_exact(ds.dim) {
            collection.insert(row).expect("insert");
        }
        collection.seal().expect("seal");
        sw.stop();
        println!(
            "ingested {n} rows in {:.1}s -> {} segments",
            sw.elapsed().as_secs_f64(),
            collection.n_segments()
        );

        // Tombstone a prefix of every segment's id range.
        let n_dead = (n as f64 * dead_fraction) as u32;
        for id in 0..n_dead {
            collection.delete(id).expect("delete");
        }

        // Survivor ground truth (exact, over the live rows only).
        let live: Vec<f32> = ds.data[n_dead as usize * ds.dim..].to_vec();
        let gt = exact_knn(&live, ds.dim, &ds.queries, k, 1);
        let want: Vec<Vec<u32>> = gt
            .iter()
            .map(|nbrs| nbrs.iter().map(|&(id, _)| id + n_dead).collect())
            .collect();

        let mut table = Table::new(&["engine", "segments", "QPS", "recall@k", "rerank/query"]);
        let measure =
            |label: &str,
             segments: usize,
             table: &mut Table,
             search: &mut dyn FnMut(&[f32], &mut StdRng) -> SearchResult| {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x715);
                let mut sw = Stopwatch::new();
                let mut recall = 0.0f64;
                let mut reranked = 0usize;
                for (qi, want_q) in want.iter().enumerate() {
                    let query = ds.query(qi);
                    sw.start();
                    let res = search(query, &mut rng);
                    sw.stop();
                    reranked += res.n_reranked;
                    let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
                    assert!(
                        got.iter().all(|&id| id >= n_dead),
                        "{label}: tombstoned id in results"
                    );
                    recall += recall_at_k(want_q, &got);
                }
                table.row(&[
                    label.into(),
                    format!("{segments}"),
                    format!("{:.0}", sw.per_second(queries as u64)),
                    format!("{:.4}", recall / queries as f64),
                    format!("{:.0}", reranked as f64 / queries as f64),
                ]);
            };

        measure(
            "collection (pre-compact)",
            collection.n_segments(),
            &mut table,
            &mut |q, rng| collection.search(q, k, nprobe, rng),
        );

        let mut sw = Stopwatch::new();
        sw.start();
        collection.compact().expect("compact");
        sw.stop();
        let compact_secs = sw.elapsed().as_secs_f64();
        measure(
            "collection (compacted)",
            collection.n_segments(),
            &mut table,
            &mut |q, rng| collection.search(q, k, nprobe, rng),
        );

        // Monolithic baseline: fresh build over exactly the live rows.
        let fresh = IvfRabitq::build(
            &live,
            ds.dim,
            &IvfConfig::new(IvfConfig::clusters_for(live.len() / ds.dim)),
            rabitq_core::RabitqConfig::default(),
        );
        measure("monolithic rebuild", 1, &mut table, &mut |q, rng| {
            let mut res = fresh.search(q, k, nprobe, rng);
            for entry in &mut res.neighbors {
                entry.0 += n_dead; // align ids with the collection's
            }
            res
        });

        table.print();
        println!("(compaction itself took {compact_secs:.1}s)\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
