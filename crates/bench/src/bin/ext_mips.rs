//! **Extension experiment** — maximum-inner-product and cosine search
//! over RaBitQ codes (footnote 8 of the paper; not a paper figure).
//!
//! For each dataset, measures recall@k of [`FlatMips`] against the exact
//! brute-force MIPS/cosine answer, and the fraction of the scan the
//! inner-product upper bound prunes away from exact re-scoring.
//!
//! The claim under test: the unit-residual estimator lifts to raw inner
//! products without losing its unbiasedness or its bound, so bound-gated
//! re-ranking gives near-perfect MIPS recall while re-scoring only a few
//! percent of the base exactly.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin ext_mips -- \
//!     --datasets sift,gist --n 20000 --queries 50 --k 10
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_data::registry::PaperDataset;
use rabitq_ivf::FlatMips;
use rabitq_math::vecs;
use rabitq_metrics::{recall_at_k, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let queries = args.usize("queries", 50);
    let k = args.usize("k", 10);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Gist]);

    println!("# Extension: MIPS & cosine search over RaBitQ codes (recall@{k})");
    println!("# n = {n}, queries = {queries}, single-thread\n");

    for dataset in datasets {
        let ds = dataset.generate(n, queries, seed);
        println!("## {} (D = {})", ds.name, ds.dim);
        let index = FlatMips::build(&ds.data, ds.dim, RabitqConfig::default());

        let mut table = Table::new(&["mode", "QPS", "recall@k", "rerank fraction"]);
        for mode in ["inner-product", "cosine"] {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x317);
            let mut sw = Stopwatch::new();
            let mut recall = 0.0f64;
            let mut reranked = 0usize;
            for qi in 0..queries {
                let query = ds.query(qi);
                sw.start();
                let res = if mode == "inner-product" {
                    index.search_ip(query, k, &mut rng)
                } else {
                    index.search_cosine(query, k, &mut rng)
                };
                sw.stop();
                reranked += res.n_reranked;
                let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
                let want = brute_force(&ds.data, ds.dim, query, k, mode == "cosine");
                recall += recall_at_k(&want, &got);
            }
            table.row(&[
                mode.into(),
                format!("{:.0}", sw.per_second(queries as u64)),
                format!("{:.4}", recall / queries as f64),
                format!("{:.4}", reranked as f64 / (queries * n) as f64),
            ]);
        }
        table.print();
        println!();
    }
}

fn brute_force(data: &[f32], dim: usize, query: &[f32], k: usize, cosine: bool) -> Vec<u32> {
    let norm_q = vecs::norm(query);
    let mut all: Vec<(u32, f32)> = data
        .chunks_exact(dim)
        .enumerate()
        .map(|(i, row)| {
            let ip = vecs::dot(row, query);
            let score = if cosine {
                let denom = vecs::norm(row) * norm_q;
                if denom <= f32::EPSILON {
                    0.0
                } else {
                    ip / denom
                }
            } else {
                ip
            };
            (i as u32, score)
        })
        .collect();
    all.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
    all.truncate(k);
    all.into_iter().map(|(id, _)| id).collect()
}
