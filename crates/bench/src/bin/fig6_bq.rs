//! **Figure 6** — verification of the query quantization width `B_q`.
//!
//! Average relative error of the estimated distances as `B_q` sweeps 1..8
//! (Section 5.2.5). The codes are `B_q`-independent, so one index serves
//! every setting; only query preparation changes. The curve must converge
//! by `B_q = 4` — and `B_q = 1` (binarizing the query too, as binary
//! hashing does) must be visibly worse.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig6_bq -- \
//!     --datasets sift,gist --n 10000 --queries 20
//! ```

use rabitq_bench::{Args, Table, Testbed};
use rabitq_core::{Rabitq, RabitqConfig};
use rabitq_data::registry::PaperDataset;
use rabitq_metrics::RelativeErrorStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let queries = args.usize("queries", 20);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Gist]);

    println!("# Figure 6: average relative error vs B_q");
    println!("# n = {n}, queries = {queries}\n");

    for dataset in datasets {
        let clusters = args.usize("clusters", (n / 256).max(16));
        let tb = Testbed::paper(dataset, n, queries, clusters, seed);
        let dim = tb.ds.dim;
        let quantizer = Rabitq::new(
            dim,
            RabitqConfig {
                seed,
                ..RabitqConfig::default()
            },
        );
        // Encode once (codes are shared across B_q settings).
        let buckets: Vec<_> = tb
            .buckets
            .iter()
            .enumerate()
            .map(|(c, ids)| {
                let mut set = quantizer.new_code_set();
                for &id in ids {
                    quantizer.encode_into(
                        tb.ds.vector(id as usize),
                        tb.coarse.centroid(c),
                        &mut set,
                    );
                }
                set
            })
            .collect();
        let exact: Vec<Vec<f32>> = (0..queries)
            .map(|qi| tb.exact_distances(tb.ds.query(qi)))
            .collect();

        println!("## {} (D = {dim})", tb.ds.name);
        let mut table = Table::new(&["B_q", "avg-rel-err", "max-rel-err"]);
        for bq in 1..=8u8 {
            let mut rng = StdRng::seed_from_u64(seed ^ 0xB9);
            let mut err = RelativeErrorStats::new();
            for qi in 0..queries {
                let query = tb.ds.query(qi);
                for (c, ids) in tb.buckets.iter().enumerate() {
                    if ids.is_empty() {
                        continue;
                    }
                    let prepared =
                        quantizer.prepare_query_bq(query, tb.coarse.centroid(c), bq, &mut rng);
                    for (slot, &id) in ids.iter().enumerate() {
                        let est = quantizer.estimate(&prepared, &buckets[c], slot);
                        err.record(est.dist_sq, exact[qi][id as usize]);
                    }
                }
            }
            table.row(&[
                bq.to_string(),
                format!("{:.3}%", err.average() * 100.0),
                format!("{:.2}%", err.maximum() * 100.0),
            ]);
        }
        table.print();
        println!();
    }
}
