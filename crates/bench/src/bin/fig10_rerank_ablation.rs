//! **Figure 10 (appendix F.3)** — ANN search with and without re-ranking.
//!
//! Four configurations over an `nprobe` sweep:
//! * `IVF-RaBitQ (with re-ranking)` — the paper's full method;
//! * `IVF-RaBitQ (w/o re-ranking)` — rank by estimated distances only;
//! * `IVF-OPQx4fs (D bits, w/o re-ranking)` — `M = D/4`;
//! * `IVF-OPQx4fs (2D bits, w/o re-ranking)` — `M = D/2`.
//!
//! Re-ranking is what converts RaBitQ's bounded estimates into robust
//! high recall; without it, recall plateaus once estimation error
//! dominates inter-candidate gaps.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig10_rerank_ablation -- \
//!     --datasets sift,msong,gist --n 20000
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_data::exact_knn;
use rabitq_data::registry::PaperDataset;
use rabitq_ivf::{IvfConfig, IvfPq, IvfRabitq, RerankStrategy, ScanMode};
use rabitq_metrics::{recall_at_k, Stopwatch};
use rabitq_pq::PqConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let queries = args.usize("queries", 30);
    let k = args.usize("k", 100);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Msong, PaperDataset::Gist]);
    let nprobes = [4usize, 8, 16, 32, 64];

    println!("# Figure 10: ANN with vs without re-ranking (recall@{k})");
    println!("# n = {n}, queries = {queries}\n");

    for dataset in datasets {
        let clusters = args.usize("clusters", IvfConfig::clusters_for(n));
        let ds = dataset.generate(n, queries, seed);
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);
        let want: Vec<Vec<u32>> = gt
            .iter()
            .map(|nbrs| nbrs.iter().map(|&(id, _)| id).collect())
            .collect();
        println!("## {} (D = {})", ds.name, ds.dim);

        let ivf_cfg = IvfConfig::new(clusters);
        let rabitq = IvfRabitq::build(&ds.data, ds.dim, &ivf_cfg, RabitqConfig::default());
        let m_d = largest_divisor_at_most(ds.dim, ds.dim / 4);
        let m_2d = largest_divisor_at_most(ds.dim, ds.dim / 2);
        let build_opq = |m: usize| {
            let cfg = PqConfig {
                m,
                k_bits: 4,
                train_iters: 10,
                training_sample: Some(10_000),
                seed,
            };
            IvfPq::build(&ds.data, ds.dim, &ivf_cfg, &cfg, true)
        };
        let opq_d = build_opq(m_d);
        let opq_2d = build_opq(m_2d);

        let mut table = Table::new(&["method", "nprobe", "QPS", "recall@k"]);
        for &nprobe in &nprobes {
            if nprobe > clusters {
                continue;
            }
            // RaBitQ with bound-based re-ranking.
            run_rabitq(
                &mut table,
                "IVF-RaBitQ (rerank)",
                &rabitq,
                &ds,
                &want,
                k,
                nprobe,
                RerankStrategy::ErrorBound,
                seed,
            );
            // RaBitQ without re-ranking.
            run_rabitq(
                &mut table,
                "IVF-RaBitQ (no rerank)",
                &rabitq,
                &ds,
                &want,
                k,
                nprobe,
                RerankStrategy::None,
                seed,
            );
            // OPQ without re-ranking at two code lengths.
            for (label, index) in [
                (format!("IVF-OPQx4fs ({} bits, no rerank)", 4 * m_d), &opq_d),
                (
                    format!("IVF-OPQx4fs ({} bits, no rerank)", 4 * m_2d),
                    &opq_2d,
                ),
            ] {
                let mut sw = Stopwatch::new();
                let mut recall = 0.0;
                for qi in 0..queries {
                    sw.start();
                    let res = index.search(ds.query(qi), k, nprobe, 0, ScanMode::FastScanBatch);
                    sw.stop();
                    let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
                    recall += recall_at_k(&want[qi], &got);
                }
                table.row(&[
                    label,
                    nprobe.to_string(),
                    format!("{:.0}", sw.per_second(queries as u64)),
                    format!("{:.4}", recall / queries as f64),
                ]);
            }
        }
        table.print();
        println!();
    }
}

fn largest_divisor_at_most(dim: usize, target: usize) -> usize {
    (1..=target.max(1))
        .rev()
        .find(|m| dim.is_multiple_of(*m))
        .unwrap_or(1)
}

#[allow(clippy::too_many_arguments)]
fn run_rabitq(
    table: &mut Table,
    label: &str,
    index: &IvfRabitq,
    ds: &rabitq_data::Dataset,
    want: &[Vec<u32>],
    k: usize,
    nprobe: usize,
    strategy: RerankStrategy,
    seed: u64,
) {
    let queries = ds.n_queries();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF10);
    let mut sw = Stopwatch::new();
    let mut recall = 0.0;
    for qi in 0..queries {
        sw.start();
        let res = index.search_with(ds.query(qi), k, nprobe, strategy, &mut rng);
        sw.stop();
        let got: Vec<u32> = res.neighbors.iter().map(|&(id, _)| id).collect();
        recall += recall_at_k(&want[qi], &got);
    }
    table.row(&[
        label.to_string(),
        nprobe.to_string(),
        format!("{:.0}", sw.per_second(queries as u64)),
        format!("{:.4}", recall / queries as f64),
    ]);
}
