//! **Extension benchmark** — raw fastscan kernel throughput per SIMD level.
//!
//! Sweeps dim ∈ {64, 128, 768, 1024} × every kernel the host can run
//! (scalar reference, AVX2, AVX-512, NEON — see
//! `rabitq_core::fastscan::raw`), measuring codes scanned per second on
//! the 32-code packed-block layout with RaBitQ-range LUT entries. Each
//! kernel's output is asserted bit-identical to the scalar reference
//! before it is timed, so the numbers can only come from a correct kernel.
//!
//! Results print as a table and land in one JSON object (default
//! `BENCH_kernels.json`) with the host's `cpu_features`/`cores` so
//! archived artifacts from different machines stay comparable.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin kernel_bench -- \
//!     --n 20000 --ms 200 --out BENCH_kernels.json
//! ```

use rabitq_bench::{hw, Args, Table};
use rabitq_core::fastscan::{raw, BLOCK, MAX_U8_LUT_ENTRY};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let ms = args.usize("ms", 200);
    let seed = args.u64("seed", 42);
    let out_path = args.str("out", "BENCH_kernels.json");

    let kernels = raw::supported_kernels();
    let kernel_names: Vec<&str> = kernels.iter().map(|k| k.name()).collect();
    println!("# Extension: fastscan kernel throughput per SIMD level");
    println!(
        "# n = {n} codes, window = {ms} ms, kernels = [{}], active = {}\n",
        kernel_names.join(", "),
        hw::active_kernel()
    );

    let dims = [64usize, 128, 768, 1024];
    let mut table = Table::new(&["dim", "kernel", "codes/sec", "vs scalar"]);
    // (dim, kernel name, codes/sec, speedup) rows for the JSON artifact.
    let mut rows: Vec<(usize, &str, f64, f64)> = Vec::new();

    for &dim in &dims {
        let segments = dim / 4;
        let mut rng = StdRng::seed_from_u64(seed ^ dim as u64);
        let blocks = raw::pack_nibbles(n, segments, |_, _| rng.gen::<u8>() & 0x0F);
        let lut: Vec<u8> = (0..segments * 16)
            .map(|_| (rng.gen::<u32>() % (MAX_U8_LUT_ENTRY + 1)) as u8)
            .collect();
        let n_blocks = n.div_ceil(BLOCK);
        let block_at = |b: usize| -> &[u8] { &blocks[b * segments * 16..(b + 1) * segments * 16] };

        // Scalar reference outputs, for the bit-identity gate.
        let reference: Vec<[u32; BLOCK]> = (0..n_blocks)
            .map(|b| {
                let mut out = [0u32; BLOCK];
                raw::scan_u8_scalar(block_at(b), &lut, segments, &mut out);
                out
            })
            .collect();

        let mut scalar_rate = 0.0f64;
        for &kernel in &kernels {
            // Correctness first: every block must match the scalar pass.
            let mut out = [0u32; BLOCK];
            for (b, expect) in reference.iter().enumerate() {
                raw::scan_u8_with(
                    kernel,
                    block_at(b),
                    &lut,
                    segments,
                    MAX_U8_LUT_ENTRY,
                    &mut out,
                );
                assert_eq!(
                    &out,
                    expect,
                    "{} kernel diverged from scalar at dim {dim} block {b}",
                    kernel.name()
                );
            }

            // Timed passes over the whole set until the window elapses.
            let window = Duration::from_millis(ms as u64);
            let start = Instant::now();
            let mut scanned = 0u64;
            let mut sink = 0u32;
            while start.elapsed() < window {
                for b in 0..n_blocks {
                    raw::scan_u8_with(
                        kernel,
                        block_at(b),
                        &lut,
                        segments,
                        MAX_U8_LUT_ENTRY,
                        &mut out,
                    );
                    sink = sink.wrapping_add(out[0]);
                }
                scanned += n as u64;
            }
            std::hint::black_box(sink);
            let rate = scanned as f64 / start.elapsed().as_secs_f64();
            if kernel == raw::Kernel::Scalar {
                scalar_rate = rate;
            }
            let speedup = rate / scalar_rate;
            table.row(&[
                format!("{dim}"),
                kernel.name().into(),
                format!("{rate:.3e}"),
                format!("{speedup:.2}x"),
            ]);
            rows.push((dim, kernel.name(), rate, speedup));
        }
    }
    table.print();
    for &(dim, name, _, speedup) in &rows {
        if dim >= 128 && name != "scalar" && speedup <= 1.0 {
            println!("warning: {name} did not beat scalar at dim {dim} ({speedup:.2}x)");
        }
    }

    // --- JSON artifact -----------------------------------------------------
    let result_objs: Vec<String> = rows
        .iter()
        .map(|&(dim, name, rate, speedup)| {
            format!(
                "    {{\"dim\": {dim}, \"kernel\": \"{name}\", \
                 \"codes_per_sec\": {rate:.1}, \"speedup_over_scalar\": {speedup:.3}}}"
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"kernel_bench\",\n  \"n\": {n},\n  \"window_ms\": {ms},\n  \
         {hw},\n  \"results\": [\n{results}\n  ]\n}}\n",
        hw = hw::json_fields(),
        results = result_objs.join(",\n"),
    );
    let mut file = std::fs::File::create(&out_path).expect("create bench json");
    file.write_all(json.as_bytes()).expect("write bench json");
    println!("\nwrote {out_path}");
}
