//! **Figure 7** — unbiasedness verification.
//!
//! Collects (estimated, true) squared-distance pairs for RaBitQ and for
//! OPQ on the GIST-like dataset, normalizes by the maximum true squared
//! distance, and fits a least-squares line (Section 5.2.6). An unbiased
//! estimator gives slope ≈ 1, intercept ≈ 0; OPQ's PQ-style estimator is
//! visibly biased.
//!
//! Also fits the deliberately biased RaBitQ variant `⟨ō,q⟩` (Appendix F.2,
//! Figure 11) whose slope-deficit is exactly the ≈0.8 alignment factor.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig7_unbiasedness -- --n 10000
//! ```

use rabitq_bench::{Args, Table, Testbed};
use rabitq_core::kernels::ip_code_query;
use rabitq_core::{estimator, Rabitq, RabitqConfig};
use rabitq_data::registry::PaperDataset;
use rabitq_math::vecs;
use rabitq_metrics::linear_regression;
use rabitq_pq::{Opq, OpqConfig, PqConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let queries = args.usize("queries", 10);
    let seed = args.u64("seed", 42);
    let dataset = args
        .datasets(&[PaperDataset::Gist])
        .into_iter()
        .next()
        .expect("one dataset");

    let clusters = args.usize("clusters", (n / 256).max(16));
    let tb = Testbed::paper(dataset, n, queries, clusters, seed);
    let dim = tb.ds.dim;
    println!(
        "# Figure 7: unbiasedness fit over {} (est, true) pairs, {} (D = {dim})",
        n * queries,
        tb.ds.name
    );
    println!("# unbiased estimator => slope ~ 1.0, intercept ~ 0.0\n");

    // ---- RaBitQ (unbiased and biased variants share codes). ----
    let quantizer = Rabitq::new(
        dim,
        RabitqConfig {
            seed,
            ..RabitqConfig::default()
        },
    );
    let code_sets: Vec<_> = tb
        .buckets
        .iter()
        .enumerate()
        .map(|(c, ids)| {
            let mut set = quantizer.new_code_set();
            for &id in ids {
                quantizer.encode_into(tb.ds.vector(id as usize), tb.coarse.centroid(c), &mut set);
            }
            set
        })
        .collect();

    // ---- OPQ baseline. ----
    let pq_cfg = PqConfig {
        m: dim / 2,
        k_bits: 4,
        train_iters: 10,
        training_sample: Some(8_000),
        seed,
    };
    let mut ocfg = OpqConfig::new(pq_cfg);
    ocfg.outer_iters = 3;
    ocfg.procrustes_sample = 8_000;
    let opq = Opq::train(&tb.residuals, dim, &ocfg);
    let opq_codes: Vec<_> = tb
        .buckets
        .iter()
        .map(|ids| opq.encode_set(ids.iter().map(|&id| tb.residual(id))))
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0xF7);
    let mut truth: Vec<f64> = Vec::new();
    let mut est_rabitq: Vec<f64> = Vec::new();
    let mut est_rabitq_biased: Vec<f64> = Vec::new();
    let mut est_opq: Vec<f64> = Vec::new();

    for qi in 0..queries {
        let query = tb.ds.query(qi);
        for (c, ids) in tb.buckets.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let prepared = quantizer.prepare_query(query, tb.coarse.centroid(c), &mut rng);
            let mut residual_q = vec![0.0f32; dim];
            vecs::sub(query, tb.coarse.centroid(c), &mut residual_q);
            let luts = opq.build_luts(&residual_q);
            for (slot, &id) in ids.iter().enumerate() {
                let set = &code_sets[c];
                let unbiased = quantizer.estimate(&prepared, set, slot).dist_sq;
                let ip_bin = ip_code_query(set.code_bits(slot), &prepared);
                let biased = estimator::estimate_biased(
                    ip_bin,
                    set.factors(slot),
                    &prepared,
                    quantizer.padded_dim(),
                )
                .dist_sq;
                let opq_est = opq.pq().adc_distance(&luts, opq_codes[c].code(slot));
                let exact = vecs::l2_sq(tb.ds.vector(id as usize), query);
                truth.push(exact as f64);
                est_rabitq.push(unbiased as f64);
                est_rabitq_biased.push(biased as f64);
                est_opq.push(opq_est as f64);
            }
        }
    }

    // Normalize by the maximum true squared distance (the paper's axes).
    let max_true = truth.iter().cloned().fold(0.0, f64::max).max(1e-30);
    for v in truth
        .iter_mut()
        .chain(est_rabitq.iter_mut())
        .chain(est_rabitq_biased.iter_mut())
        .chain(est_opq.iter_mut())
    {
        *v /= max_true;
    }

    let mut table = Table::new(&["estimator", "slope", "intercept", "R^2"]);
    for (name, est) in [
        ("RaBitQ <o,q>/<o-bar,o> (unbiased)", &est_rabitq),
        ("RaBitQ <o-bar,q> (biased ablation)", &est_rabitq_biased),
        ("OPQ ADC (biased)", &est_opq),
    ] {
        let fit = linear_regression(&truth, est);
        table.row(&[
            name.to_string(),
            format!("{:.4}", fit.slope),
            format!("{:+.4}", fit.intercept),
            format!("{:.4}", fit.r_squared),
        ]);
    }
    table.print();
}
