//! **Extension experiment** — graph-based ANN search over RaBitQ codes
//! (Section 7's future-work combination; not a paper figure).
//!
//! Compares, on the same graph and datasets:
//!
//! * `HNSW` — exact-distance traversal (the paper's Figure 4 baseline);
//! * `Graph-RaBitQ` — the same graph traversed with the single-code
//!   bitwise estimator, exact re-ranking gated by the error bound;
//! * `Graph-RaBitQ (no rerank)` — ablation: ranking by estimates alone,
//!   the graph analogue of Figure 10;
//! * `IVF-RaBitQ` — the paper's Section 4 system, for reference.
//!
//! The claim under test: the quantized traversal preserves the recall of
//! the exact traversal (the bound-gated re-rank recovers what 1-bit
//! estimates blur) while touching raw vectors for only a fraction of the
//! visited vertices — the access-pattern win that motivates pairing
//! RaBitQ with graphs in production systems.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin ext_graph_ann -- \
//!     --datasets sift,word2vec --n 30000 --queries 50 --k 10
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_data::registry::PaperDataset;
use rabitq_data::{exact_knn, Neighbors};
use rabitq_graph::{GraphRabitq, GraphRabitqConfig, GraphRerank};
use rabitq_hnsw::HnswConfig;
use rabitq_ivf::{IvfConfig, IvfRabitq};
use rabitq_metrics::{recall_at_k, Stopwatch};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 30_000);
    let queries = args.usize("queries", 50);
    let k = args.usize("k", 10);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Word2Vec]);
    let ef_searches = [20usize, 40, 80, 160, 320];
    let nprobes = [4usize, 8, 16, 32, 64];

    println!("# Extension: graph-based ANN over RaBitQ codes (QPS vs recall@{k})");
    println!("# n = {n}, queries = {queries}, single-thread\n");

    for dataset in datasets {
        let ds = dataset.generate(n, queries, seed);
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);
        println!("## {} (D = {})", ds.name, ds.dim);

        let mut table = Table::new(&[
            "method",
            "param",
            "QPS",
            "recall@k",
            "est/query",
            "rerank/query",
        ]);

        let hnsw_cfg = HnswConfig {
            m: 16,
            ef_construction: args.usize("ef-construction", 500),
            seed,
        };
        let graph_cfg = GraphRabitqConfig {
            hnsw: hnsw_cfg,
            rabitq: RabitqConfig::default(),
            rerank: GraphRerank::ErrorBound,
            centroids: 1,
        };
        let graph = GraphRabitq::build(&ds.data, ds.dim, graph_cfg);

        // ---- HNSW, exact traversal of the very same graph ----
        for &ef in &ef_searches {
            let mut sw = Stopwatch::new();
            let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
            std::hint::black_box(graph.search_exact(ds.query(0), k, ef));
            for qi in 0..queries {
                sw.start();
                let res = graph.search_exact(ds.query(qi), k, ef);
                sw.stop();
                results.push(res.iter().map(|&(id, _)| id).collect());
            }
            table.row(&[
                "HNSW (exact)".into(),
                format!("efSearch={ef}"),
                format!("{:.0}", sw.per_second(queries as u64)),
                format!("{:.4}", mean_recall(&gt, &results)),
                "-".into(),
                "-".into(),
            ]);
        }

        // ---- Graph-RaBitQ: global centroid vs per-cluster normalization
        // (Section 3.1.1) ----
        let n_centroids = args.usize("centroids", 64);
        let mut multi_cfg = graph_cfg;
        multi_cfg.centroids = n_centroids;
        let graph_multi = GraphRabitq::build(&ds.data, ds.dim, multi_cfg);
        for (label, index) in [
            ("Graph-RaBitQ (c=1)", &graph),
            ("Graph-RaBitQ (multi-c)", &graph_multi),
        ] {
            for &ef in &ef_searches {
                let mut rng = StdRng::seed_from_u64(seed ^ 0x6AF);
                let mut sw = Stopwatch::new();
                let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
                let (mut est_total, mut rerank_total) = (0usize, 0usize);
                std::hint::black_box(index.search(ds.query(0), k, ef, &mut rng));
                for qi in 0..queries {
                    sw.start();
                    let res = index.search(ds.query(qi), k, ef, &mut rng);
                    sw.stop();
                    est_total += res.n_estimated;
                    rerank_total += res.n_reranked;
                    results.push(res.neighbors.iter().map(|&(id, _)| id).collect());
                }
                table.row(&[
                    label.into(),
                    format!("efSearch={ef}"),
                    format!("{:.0}", sw.per_second(queries as u64)),
                    format!("{:.4}", mean_recall(&gt, &results)),
                    format!("{:.0}", est_total as f64 / queries as f64),
                    format!("{:.0}", rerank_total as f64 / queries as f64),
                ]);
            }
        }

        // ---- Ablation: no re-ranking ----
        let mut no_rerank_cfg = graph_cfg;
        no_rerank_cfg.rerank = GraphRerank::None;
        let graph_nr = GraphRabitq::build(&ds.data, ds.dim, no_rerank_cfg);
        for &ef in &[80usize, 320] {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x6AF);
            let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
            for qi in 0..queries {
                let res = graph_nr.search(ds.query(qi), k, ef, &mut rng);
                results.push(res.neighbors.iter().map(|&(id, _)| id).collect());
            }
            table.row(&[
                "Graph-RaBitQ (no rerank)".into(),
                format!("efSearch={ef}"),
                "-".into(),
                format!("{:.4}", mean_recall(&gt, &results)),
                "-".into(),
                "0".into(),
            ]);
        }

        // ---- IVF-RaBitQ reference ----
        let clusters = args.usize("clusters", IvfConfig::clusters_for(n));
        let ivf_cfg = IvfConfig {
            threads: 1,
            ..IvfConfig::new(clusters)
        };
        let ivf = IvfRabitq::build(&ds.data, ds.dim, &ivf_cfg, RabitqConfig::default());
        for &nprobe in &nprobes {
            if nprobe > clusters {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF14);
            let mut sw = Stopwatch::new();
            let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
            std::hint::black_box(ivf.search(ds.query(0), k, nprobe, &mut rng));
            for qi in 0..queries {
                sw.start();
                let res = ivf.search(ds.query(qi), k, nprobe, &mut rng);
                sw.stop();
                results.push(res.neighbors.iter().map(|&(id, _)| id).collect());
            }
            table.row(&[
                "IVF-RaBitQ".into(),
                format!("nprobe={nprobe}"),
                format!("{:.0}", sw.per_second(queries as u64)),
                format!("{:.4}", mean_recall(&gt, &results)),
                "-".into(),
                "-".into(),
            ]);
        }

        table.print();
        println!();
    }
}

fn mean_recall(gt: &[Neighbors], results: &[Vec<u32>]) -> f64 {
    let mut recall = 0.0;
    for (qi, ids) in results.iter().enumerate() {
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        recall += recall_at_k(&want, ids);
    }
    recall / results.len() as f64
}
