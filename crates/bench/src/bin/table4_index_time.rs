//! **Table 4** — index-phase wall time on the GIST-like dataset.
//!
//! Times the full quantizer index phase (codebook training + encoding +
//! auxiliary precomputation) for RaBitQ, PQ, OPQ, and the LSQ-style AQ.
//! The paper's machine ran 32 threads; this harness is single-threaded, so
//! the *ratios* are the comparable quantity. The AQ/LSQ row is measured on
//! an encode subsample and extrapolated to the full set, reproducing the
//! paper's ">24 hours" time-out finding honestly without burning a day.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin table4_index_time -- --n 20000
//! ```

use rabitq_aq::{AdditiveQuantizer, AqConfig};
use rabitq_bench::{Args, Table, Testbed};
use rabitq_core::{Rabitq, RabitqConfig};
use rabitq_data::registry::PaperDataset;
use rabitq_metrics::timer::time_once;
use rabitq_pq::{Opq, OpqConfig, PqConfig, ProductQuantizer};

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let seed = args.u64("seed", 42);
    let aq_encode_sample = args.usize("aq-sample", 300);
    let dataset = args
        .datasets(&[PaperDataset::Gist])
        .into_iter()
        .next()
        .expect("one dataset");

    let clusters = args.usize("clusters", (n / 256).max(16));
    let tb = Testbed::paper(dataset, n, 1, clusters, seed);
    let dim = tb.ds.dim;
    println!(
        "# Table 4: indexing time, {} (D = {dim}, n = {n}, 1 thread)",
        tb.ds.name
    );
    println!("# (paper: RaBitQ 117s, PQ 105s, OPQ 291s, LSQ >24h — on 1M vectors, 32 threads)\n");

    let mut table = Table::new(&["method", "train+encode", "notes"]);

    // ---- RaBitQ: sample rotation, rotate + sign every vector. ----
    let (_, rabitq_time) = time_once(|| {
        let q = Rabitq::new(
            dim,
            RabitqConfig {
                seed,
                ..RabitqConfig::default()
            },
        );
        for (c, ids) in tb.buckets.iter().enumerate() {
            let mut set = q.new_code_set();
            for &id in ids {
                q.encode_into(tb.ds.vector(id as usize), tb.coarse.centroid(c), &mut set);
            }
            std::hint::black_box(q.pack(&set));
        }
    });
    table.row(&[
        "RaBitQ".into(),
        format!("{:.1}s", rabitq_time.as_secs_f64()),
        "full dataset".into(),
    ]);

    // ---- PQ (k = 4, M = D/2): KMeans sub-codebooks + encode. ----
    let pq_cfg = PqConfig {
        m: dim / 2,
        k_bits: 4,
        train_iters: 10,
        training_sample: Some(10_000),
        seed,
    };
    let (_, pq_time) = time_once(|| {
        let pq = ProductQuantizer::train(&tb.residuals, dim, &pq_cfg);
        std::hint::black_box(pq.encode_set(tb.residuals.chunks_exact(dim)));
    });
    table.row(&[
        "PQ".into(),
        format!("{:.1}s", pq_time.as_secs_f64()),
        "full dataset".into(),
    ]);

    // ---- OPQ: alternating rotation + PQ. ----
    let (_, opq_time) = time_once(|| {
        let mut ocfg = OpqConfig::new(pq_cfg.clone());
        ocfg.outer_iters = 3;
        ocfg.procrustes_sample = 8_000;
        let opq = Opq::train(&tb.residuals, dim, &ocfg);
        std::hint::black_box(opq.encode_set(tb.residuals.chunks_exact(dim)));
    });
    table.row(&[
        "OPQ".into(),
        format!("{:.1}s", opq_time.as_secs_f64()),
        "full dataset".into(),
    ]);

    // ---- LSQ-style AQ: train on a sample, time a small encode batch,
    // extrapolate. ----
    let aq_cfg = AqConfig {
        m: dim / 2,
        k_bits: 4,
        refine_iters: 1,
        icm_passes: 2,
        kmeans_iters: 8,
        training_sample: Some(1_000),
        seed,
    };
    let (aq, aq_train_time) =
        time_once(|| AdditiveQuantizer::train(&tb.ds.data[..2_000.min(n) * dim], dim, &aq_cfg));
    let sample = aq_encode_sample.min(n);
    let (_, aq_encode_time) = time_once(|| {
        std::hint::black_box(aq.encode_set(tb.ds.data[..sample * dim].chunks_exact(dim)))
    });
    let per_vec = aq_encode_time.as_secs_f64() / sample as f64;
    let extrapolated = aq_train_time.as_secs_f64() + per_vec * n as f64;
    table.row(&[
        "LSQ(AQ)".into(),
        format!("{extrapolated:.1}s (extrapolated)"),
        format!(
            "measured {:.2}ms/vector on {sample} vectors; {:.0}x PQ",
            per_vec * 1e3,
            extrapolated / pq_time.as_secs_f64().max(1e-9)
        ),
    ]);

    table.print();
}
