//! **Extension benchmark** — serving throughput of the `rabitq-serve`
//! HTTP front end, batched vs unbatched, plus behaviour under
//! saturation.
//!
//! Starts an in-process server over a multi-segment collection and
//! drives it with raw TCP clients:
//!
//! 1. **direct** phase: every search carries `"mode": "direct"` and runs
//!    per-request on a connection worker — the unbatched baseline;
//! 2. **batched** phase: the same load with `"mode": "batched"`, so
//!    concurrent searches coalesce through the batching queue into
//!    `search_many` calls;
//! 3. **saturation** phase: 3× the connections against a server with a
//!    deliberately tiny admission queue — measures shed rate (`429`s)
//!    and that everything still drains cleanly;
//! 4. **impatient** phase: every search carries a tight `timeout_ms`
//!    (shorter than the batch linger, so deadlines bite) and every 8th
//!    client disconnects without reading its answer — measures the
//!    deadline-hit rate and the wasted-work ratio (server-side time
//!    spent on searches that were answered `504`).
//!
//! After phases 1 + 2 the harness also scrapes `/metrics` raw off the
//! socket, validates it against the exposition-format checker, checks
//! that the pipeline-stage seconds reconcile with the edge latency the
//! server observed, and saves the scrape as an artifact (default
//! `BENCH_serving_metrics.prom`, override with `--metrics-out`).
//!
//! Latency percentiles are exact (client-side, every request recorded).
//! Results go to stdout and one JSON object (default
//! `BENCH_serving.json`).
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin serving_load -- \
//!     --n 20000 --connections 8 --requests 200 --out BENCH_serving.json
//! ```

use rabitq_bench::{Args, Table};
use rabitq_serve::{json_obj, Json, ServeConfig, Server};
use rabitq_store::{Collection, CollectionConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let connections = args.usize("connections", 8).max(1);
    let requests = args.usize("requests", 200);
    let k = args.usize("k", 10);
    let nprobe = args.usize("nprobe", 32);
    let segments = args.usize("segments", 4).max(1);
    let max_batch = args.usize("max-batch", 64);
    let linger_us = args.u64("linger-us", 100);
    let seed = args.u64("seed", 42);
    let timeout_ms = args.u64("timeout-ms", 2);
    let impatient_linger_ms = args.u64("impatient-linger-ms", 5);
    let out_path = args.str("out", "BENCH_serving.json");
    let metrics_out = args.str("metrics-out", "BENCH_serving_metrics.prom");

    let dim = 64usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let queries = rabitq_math::rng::standard_normal_vec(&mut rng, 512 * dim);

    println!("# Extension: rabitq-serve throughput, batched vs unbatched");
    println!(
        "# n = {n}, dim = {dim}, connections = {connections}, requests/conn = {requests}, \
         k = {k}, nprobe = {nprobe}, max_batch = {max_batch}, linger = {linger_us}us\n"
    );

    let dir = std::env::temp_dir().join(format!("bench-serving-{}", std::process::id()));
    let build = |tag: &str| {
        let d = dir.join(tag);
        std::fs::remove_dir_all(&d).ok();
        let mut config = CollectionConfig::new(dim);
        config.memtable_capacity = n.div_ceil(segments);
        config.auto_compact = false;
        let mut collection = Collection::open(&d, config).expect("open collection");
        for row in data.chunks_exact(dim) {
            collection.insert(row).expect("insert");
        }
        collection.seal().expect("seal");
        collection
    };

    // --- Phases 1 + 2: direct vs batched on the same server ---------------
    let mut config = ServeConfig {
        workers: connections.max(8),
        default_k: k,
        default_nprobe: nprobe,
        ..ServeConfig::default()
    };
    config.batch.max_batch = max_batch;
    config.batch.linger = Duration::from_micros(linger_us);
    let server =
        Server::start(config.clone(), vec![("bench".into(), build("main"))]).expect("start server");
    let addr = server.addr();

    // Warm up both execution paths (JIT-free, but populates caches and
    // thread-local scratch).
    run_phase(addr, &queries, dim, 2, 20, k, "direct", 0, 0);
    run_phase(addr, &queries, dim, 2, 20, k, "batched", 0, 0);

    let direct = run_phase(
        addr,
        &queries,
        dim,
        connections,
        requests,
        k,
        "direct",
        0,
        0,
    );
    let batched = run_phase(
        addr,
        &queries,
        dim,
        connections,
        requests,
        k,
        "batched",
        0,
        0,
    );

    let stats = fetch_stats(addr);
    let metrics = stats.get("metrics").expect("stats.metrics");
    let mean_batch = metrics
        .get("mean_batch_size")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let batch_histogram = metrics
        .get("batch_size_histogram")
        .cloned()
        .unwrap_or(Json::Arr(Vec::new()));

    // --- Observability check: /metrics must be valid and reconcile --------
    let scrape = fetch_metrics(addr);
    let series = rabitq_metrics::prometheus::validate(&scrape)
        .unwrap_or_else(|e| panic!("/metrics failed exposition-format validation: {e}"));
    let edge_sum = prom_sum(&scrape, "rabitq_search_latency_seconds_sum");
    let stage_sum = prom_sum(&scrape, "rabitq_search_stage_seconds_sum{");
    assert!(
        stage_sum > 0.0,
        "stage timers recorded nothing over {series} series"
    );
    // Stages are timed per query; segments scan in parallel inside one
    // query, so summed stage time may exceed wall time by up to the
    // worker count — but never more.
    let slack = config.workers as f64;
    assert!(
        stage_sum <= edge_sum * slack,
        "stage seconds {stage_sum:.3} exceed edge seconds {edge_sum:.3} x {slack} workers"
    );
    std::fs::write(&metrics_out, &scrape).expect("write metrics artifact");
    println!(
        "/metrics: {series} series, stage seconds {stage_sum:.3} vs edge seconds \
         {edge_sum:.3} -> {metrics_out}\n"
    );
    server.shutdown();

    // --- Phase 3: saturation against a tiny admission queue ---------------
    let mut stress = config.clone();
    stress.batch.queue_depth = 4;
    stress.batch.max_batch = 4;
    stress.batch.linger = Duration::from_millis(2);
    stress.workers = connections * 3;
    let server = Server::start(stress, vec![("bench".into(), build("stress"))])
        .expect("start stress server");
    let sat = run_phase(
        server.addr(),
        &queries,
        dim,
        connections * 3,
        requests,
        k,
        "batched",
        0,
        0,
    );
    let sat_shed = server
        .metrics()
        .shed_overload
        .load(std::sync::atomic::Ordering::Relaxed);
    server.shutdown(); // must drain cleanly even after heavy shedding
    let sat_total = (connections * 3 * requests) as u64;
    let shed_rate = sat_shed as f64 / sat_total as f64;

    // --- Phase 4: impatient clients (tight deadlines + abandonment) --------
    // A linger longer than the timeout makes queued expiry the common
    // case; every 8th request's client hangs up without reading. The
    // server must still answer all of them (the counters prove it), and
    // the wasted-work ratio says how much search-path time the 504s cost.
    let mut impatient_config = config.clone();
    impatient_config.batch.linger = Duration::from_millis(impatient_linger_ms);
    let server = Server::start(impatient_config, vec![("bench".into(), build("impatient"))])
        .expect("start impatient server");
    let imp = run_phase(
        server.addr(),
        &queries,
        dim,
        connections,
        requests,
        k,
        "batched",
        timeout_ms,
        8,
    );
    let m = server.metrics();
    let imp_total = (connections * requests) as u64;
    // Every admitted request — including the abandoned ones — is
    // answered; wait for the response counters to account for all.
    let settle = Instant::now() + Duration::from_secs(30);
    while m.ok_responses.load(std::sync::atomic::Ordering::Relaxed)
        + m.client_errors.load(std::sync::atomic::Ordering::Relaxed)
        + m.server_errors.load(std::sync::atomic::Ordering::Relaxed)
        < imp_total
    {
        assert!(
            Instant::now() < settle,
            "abandoned requests were never answered"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let deadline_hits = m
        .deadline_exceeded
        .load(std::sync::atomic::Ordering::Relaxed);
    let deadline_hit_rate = deadline_hits as f64 / imp_total as f64;
    let wasted_us = m.cancelled_after.sum_us();
    let useful_us = m.search_latency.sum_us();
    let wasted_work_ratio = if wasted_us + useful_us == 0 {
        0.0
    } else {
        wasted_us as f64 / (wasted_us + useful_us) as f64
    };
    server.shutdown();
    assert!(
        deadline_hits > 0,
        "a {timeout_ms}ms timeout under a {impatient_linger_ms}ms linger must expire searches"
    );

    // --- Report ------------------------------------------------------------
    let mut table = Table::new(&[
        "phase", "conns", "QPS", "p50 us", "p95 us", "p99 us", "ok", "shed", "504",
    ]);
    for (name, conns, phase) in [
        ("direct", connections, &direct),
        ("batched", connections, &batched),
        ("saturation", connections * 3, &sat),
        ("impatient", connections, &imp),
    ] {
        table.row(&[
            name.into(),
            format!("{conns}"),
            format!("{:.0}", phase.qps),
            format!("{}", phase.p50),
            format!("{}", phase.p95),
            format!("{}", phase.p99),
            format!("{}", phase.ok),
            format!("{}", phase.shed),
            format!("{}", phase.expired),
        ]);
    }
    table.print();
    let batching_gain = batched.qps / direct.qps;
    println!(
        "\nbatched vs direct QPS: {batching_gain:.2}x (mean executed batch \
         size {mean_batch:.1})"
    );
    println!(
        "saturation: {sat_shed}/{sat_total} shed ({:.1}%), drained clean",
        shed_rate * 100.0
    );
    println!(
        "impatient: {deadline_hits}/{imp_total} deadline-expired ({:.1}%), \
         {} abandoned, wasted-work ratio {:.3}",
        deadline_hit_rate * 100.0,
        imp.abandoned,
        wasted_work_ratio
    );
    assert!(
        direct.shed == 0 && batched.shed == 0,
        "unsaturated phases must not shed"
    );
    assert!(sat.ok > 0, "saturation must not starve every client");

    let json = json_obj! {
        "bench" => "serving_load",
        "n" => n,
        "dim" => dim,
        "connections" => connections,
        "requests_per_connection" => requests,
        "k" => k,
        "nprobe" => nprobe,
        "max_batch" => max_batch,
        "linger_us" => linger_us,
        "cpu_features" => Json::Arr(
            rabitq_bench::hw::cpu_features()
                .into_iter()
                .map(Json::from)
                .collect()
        ),
        "cores" => rabitq_bench::hw::cores(),
        "kernel" => rabitq_bench::hw::active_kernel(),
        "direct" => direct.to_json(),
        "batched" => batched.to_json(),
        "saturation" => sat.to_json(),
        "impatient" => imp.to_json(),
        "impatient_timeout_ms" => timeout_ms,
        "impatient_linger_ms" => impatient_linger_ms,
        "deadline_hit_rate" => deadline_hit_rate,
        "wasted_work_ratio" => wasted_work_ratio,
        "batching_speedup" => batching_gain,
        "mean_batch_size" => mean_batch,
        "batch_size_histogram" => batch_histogram,
        "saturation_shed_rate" => shed_rate,
        "metrics_series" => series,
        "stage_seconds_sum" => stage_sum,
        "edge_seconds_sum" => edge_sum
    };
    std::fs::write(&out_path, json.encode() + "\n").expect("write bench json");
    println!("\nwrote {out_path}");

    std::fs::remove_dir_all(&dir).ok();
}

/// One measured load phase.
struct PhaseResult {
    qps: f64,
    p50: u64,
    p95: u64,
    p99: u64,
    ok: u64,
    shed: u64,
    /// Requests answered `504` (deadline expired) — client-observed, so
    /// abandoned requests' 504s are not counted here.
    expired: u64,
    /// Requests whose client disconnected without reading the answer.
    abandoned: u64,
}

impl PhaseResult {
    fn to_json(&self) -> Json {
        json_obj! {
            "qps" => self.qps,
            "p50_us" => self.p50,
            "p95_us" => self.p95,
            "p99_us" => self.p99,
            "ok" => self.ok,
            "shed" => self.shed,
            "expired" => self.expired,
            "abandoned" => self.abandoned
        }
    }
}

/// Drives `conns` keep-alive connections, each sending `requests`
/// searches in `mode`, and aggregates exact client-side latencies.
///
/// `timeout_ms > 0` attaches that deadline to every search (504s are
/// tallied as `expired`); `abandon_every > 0` makes each client drop its
/// connection unread after every that-many-th request — an impatient
/// client — then reconnect for the next one.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    addr: SocketAddr,
    queries: &[f32],
    dim: usize,
    conns: usize,
    requests: usize,
    k: usize,
    mode: &str,
    timeout_ms: u64,
    abandon_every: usize,
) -> PhaseResult {
    let n_queries = queries.len() / dim;
    let started = Instant::now();
    let threads: Vec<_> = (0..conns)
        .map(|c| {
            let mode = mode.to_string();
            let queries = queries.to_vec();
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
                let mut buf = Vec::new();
                let mut latencies = Vec::with_capacity(requests);
                let (mut ok, mut shed, mut expired, mut abandoned) = (0u64, 0u64, 0u64, 0u64);
                for r in 0..requests {
                    let qi = (c * requests + r) % n_queries;
                    let body =
                        search_body(&queries[qi * dim..(qi + 1) * dim], k, &mode, timeout_ms);
                    let req = format!(
                        "POST /search HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
                        body.len()
                    );
                    let t0 = Instant::now();
                    stream.write_all(req.as_bytes()).expect("write");
                    if abandon_every > 0 && (r + 1) % abandon_every == 0 {
                        // Hang up without reading the answer, like a
                        // client whose own deadline already fired.
                        stream = TcpStream::connect(addr).expect("reconnect");
                        stream.set_nodelay(true).ok();
                        stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
                        buf.clear();
                        abandoned += 1;
                        continue;
                    }
                    let status = read_response(&mut stream, &mut buf);
                    latencies.push(t0.elapsed().as_micros() as u64);
                    match status {
                        200 => ok += 1,
                        429 => shed += 1,
                        504 => expired += 1,
                        other => panic!("unexpected status {other}"),
                    }
                }
                (latencies, ok, shed, expired, abandoned)
            })
        })
        .collect();

    let mut latencies = Vec::with_capacity(conns * requests);
    let (mut ok, mut shed, mut expired, mut abandoned) = (0u64, 0u64, 0u64, 0u64);
    for t in threads {
        let (lat, o, s, e, a) = t.join().expect("client thread");
        latencies.extend(lat);
        ok += o;
        shed += s;
        expired += e;
        abandoned += a;
    }
    let elapsed = started.elapsed().as_secs_f64();
    latencies.sort_unstable();
    let pct = |q: f64| latencies[((latencies.len() - 1) as f64 * q) as usize];
    PhaseResult {
        qps: latencies.len() as f64 / elapsed,
        p50: pct(0.50),
        p95: pct(0.95),
        p99: pct(0.99),
        ok,
        shed,
        expired,
        abandoned,
    }
}

fn search_body(vector: &[f32], k: usize, mode: &str, timeout_ms: u64) -> String {
    let vec_json: Vec<String> = vector.iter().map(|v| format!("{v}")).collect();
    let timeout = if timeout_ms > 0 {
        format!(",\"timeout_ms\":{timeout_ms}")
    } else {
        String::new()
    };
    format!(
        "{{\"vector\":[{}],\"k\":{k},\"mode\":\"{mode}\"{timeout}}}",
        vec_json.join(",")
    )
}

/// Reads one HTTP response off the stream; returns the status code.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> u16 {
    loop {
        if let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = std::str::from_utf8(&buf[..head_end]).expect("ascii head");
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .expect("status line")
                .parse()
                .expect("status code");
            let content_length: usize = head
                .lines()
                .find_map(|l| {
                    let (name, value) = l.split_once(':')?;
                    name.eq_ignore_ascii_case("content-length")
                        .then(|| value.trim().parse().expect("content-length"))
                })
                .unwrap_or(0);
            let total = head_end + 4 + content_length;
            if buf.len() >= total {
                buf.drain(..total);
                return status;
            }
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed mid-response");
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Fetches `/metrics` and returns the raw exposition text.
fn fetch_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n")
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read metrics");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("metrics head");
    String::from_utf8(raw[head_end + 4..].to_vec()).expect("utf8 metrics")
}

/// Sums the values of every sample line starting with `prefix`.
fn prom_sum(scrape: &str, prefix: &str) -> f64 {
    scrape
        .lines()
        .filter(|l| l.starts_with(prefix))
        .map(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<f64>().ok())
                .unwrap_or_else(|| panic!("unparsable sample line {l:?}"))
        })
        .sum()
}

/// Fetches and parses `/stats`.
fn fetch_stats(addr: SocketAddr) -> Json {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"GET /stats HTTP/1.1\r\nhost: bench\r\nconnection: close\r\n\r\n")
        .expect("write");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read stats");
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("stats head");
    let body = std::str::from_utf8(&raw[head_end + 4..]).expect("utf8 stats");
    Json::parse(body).expect("stats json")
}
