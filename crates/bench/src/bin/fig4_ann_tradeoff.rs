//! **Figure 4** — QPS vs recall@100 and QPS vs average distance ratio for
//! in-memory ANN search.
//!
//! Methods, as in the paper:
//! * `IVF-RaBitQ` — error-bound re-ranking, swept over `nprobe`;
//! * `IVF-OPQx4fs` — fixed re-ranking counts (three settings, none of
//!   which the paper found to work across datasets), swept over `nprobe`;
//! * `HNSW` — swept over `efSearch`.
//!
//! Single-thread, one query at a time (the paper's protocol). Distance
//! ratios are computed from exact distances of the returned ids, outside
//! the timed region.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig4_ann_tradeoff -- \
//!     --datasets sift,msong --n 30000 --queries 50 --k 100
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_data::registry::PaperDataset;
use rabitq_data::{exact_knn, Neighbors};
use rabitq_hnsw::{Hnsw, HnswConfig};
use rabitq_ivf::{IvfConfig, IvfPq, IvfRabitq, ScanMode};
use rabitq_math::vecs;
use rabitq_metrics::{average_distance_ratio, recall_at_k, Stopwatch};
use rabitq_pq::PqConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 30_000);
    let queries = args.usize("queries", 50);
    let k = args.usize("k", 100);
    let seed = args.u64("seed", 42);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Msong, PaperDataset::Gist]);
    let nprobes = [2usize, 4, 8, 16, 32, 64, 128];
    let ef_searches = [20usize, 40, 80, 160, 320, 640];
    let reranks = [100usize, 500, 2500];

    println!("# Figure 4: QPS vs recall@{k} and average distance ratio");
    println!("# n = {n}, queries = {queries}, single-thread\n");

    for dataset in datasets {
        let clusters = args.usize("clusters", IvfConfig::clusters_for(n));
        let ds = dataset.generate(n, queries, seed);
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, k, 1);
        println!("## {} (D = {}, {} clusters)", ds.name, ds.dim, clusters);

        let mut table = Table::new(&["method", "param", "QPS", "recall@k", "avg-dist-ratio"]);

        // ---- IVF-RaBitQ ----
        let ivf_cfg = IvfConfig {
            threads: 1,
            ..IvfConfig::new(clusters)
        };
        let rabitq = IvfRabitq::build(&ds.data, ds.dim, &ivf_cfg, RabitqConfig::default());
        for &nprobe in &nprobes {
            if nprobe > clusters {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF14);
            let mut sw = Stopwatch::new();
            let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
            std::hint::black_box(rabitq.search(ds.query(0), k, nprobe, &mut rng));
            for qi in 0..queries {
                sw.start();
                let res = rabitq.search(ds.query(qi), k, nprobe, &mut rng);
                sw.stop();
                results.push(res.neighbors.iter().map(|&(id, _)| id).collect());
            }
            let (recall, ratio) = score(&ds, &gt, &results, k);
            table.row(&[
                "IVF-RaBitQ".into(),
                format!("nprobe={nprobe}"),
                format!("{:.0}", sw.per_second(queries as u64)),
                format!("{:.4}", recall),
                format!("{:.4}", ratio),
            ]);
        }

        // ---- IVF-OPQx4fs with the three re-ranking settings ----
        let pq_cfg = PqConfig {
            m: largest_divisor_at_most(ds.dim, ds.dim / 2),
            k_bits: 4,
            train_iters: 10,
            training_sample: Some(10_000),
            seed,
        };
        let opq = IvfPq::build(&ds.data, ds.dim, &ivf_cfg, &pq_cfg, true);
        for &rerank in &reranks {
            for &nprobe in &nprobes {
                if nprobe > clusters {
                    continue;
                }
                let mut sw = Stopwatch::new();
                let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
                std::hint::black_box(opq.search(
                    ds.query(0),
                    k,
                    nprobe,
                    rerank,
                    ScanMode::FastScanBatch,
                ));
                for qi in 0..queries {
                    sw.start();
                    let res = opq.search(ds.query(qi), k, nprobe, rerank, ScanMode::FastScanBatch);
                    sw.stop();
                    results.push(res.neighbors.iter().map(|&(id, _)| id).collect());
                }
                let (recall, ratio) = score(&ds, &gt, &results, k);
                table.row(&[
                    format!("IVF-OPQx4fs(rerank={rerank})"),
                    format!("nprobe={nprobe}"),
                    format!("{:.0}", sw.per_second(queries as u64)),
                    format!("{:.4}", recall),
                    format!("{:.4}", ratio),
                ]);
            }
        }

        // ---- HNSW ----
        let hnsw_cfg = HnswConfig {
            m: 16,
            ef_construction: args.usize("ef-construction", 500),
            seed,
        };
        let hnsw = Hnsw::build(&ds.data, ds.dim, hnsw_cfg);
        for &ef in &ef_searches {
            let mut sw = Stopwatch::new();
            let mut results: Vec<Vec<u32>> = Vec::with_capacity(queries);
            std::hint::black_box(hnsw.search(ds.query(0), k, ef));
            for qi in 0..queries {
                sw.start();
                let res = hnsw.search(ds.query(qi), k, ef);
                sw.stop();
                results.push(res.iter().map(|&(id, _)| id).collect());
            }
            let (recall, ratio) = score(&ds, &gt, &results, k);
            table.row(&[
                "HNSW".into(),
                format!("efSearch={ef}"),
                format!("{:.0}", sw.per_second(queries as u64)),
                format!("{:.4}", recall),
                format!("{:.4}", ratio),
            ]);
        }

        table.print();
        println!();
    }
}

fn largest_divisor_at_most(dim: usize, target: usize) -> usize {
    (1..=target.max(1))
        .rev()
        .find(|m| dim.is_multiple_of(*m))
        .unwrap_or(1)
}

/// Recall@k and average distance ratio over all queries, with exact
/// distances recomputed from ids (estimation-independent).
fn score(
    ds: &rabitq_data::Dataset,
    gt: &[Neighbors],
    results: &[Vec<u32>],
    k: usize,
) -> (f64, f64) {
    let mut recall = 0.0;
    let mut ratio = 0.0;
    for (qi, ids) in results.iter().enumerate() {
        let want: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
        recall += recall_at_k(&want, ids);
        let truth_sq: Vec<f32> = gt[qi].iter().map(|&(_, d)| d).collect();
        let mut got_sq: Vec<f32> = ids
            .iter()
            .map(|&id| vecs::l2_sq(ds.vector(id as usize), ds.query(qi)))
            .collect();
        got_sq.sort_by(|a, b| a.total_cmp(b));
        got_sq.truncate(k);
        ratio += average_distance_ratio(&truth_sq, &got_sq);
    }
    (recall / results.len() as f64, ratio / results.len() as f64)
}
