//! **Figure 3** — time-accuracy trade-off of distance estimation.
//!
//! For each dataset, every method estimates the squared distance between
//! each query and *every* base vector, scanning buckets in IVF probe order
//! (the paper's cache-realistic protocol). Reported per method/code-length:
//! average time per vector (including query preparation, amortized), and
//! the average and maximum relative error — the two panels of Figure 3.
//!
//! Methods: RaBitQ-single (bitwise), RaBitQ-batch (fast scan), PQx8-single,
//! PQx4fs-batch, OPQx8-single, OPQx4fs-batch, LSQ-style AQx4fs-batch.
//! Code lengths sweep via zero-padding (RaBitQ) or segment count (PQ/OPQ).
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin fig3_distance_estimation -- \
//!     --datasets sift,msong,gist --n 10000 --queries 20
//! ```

use rabitq_aq::{AdditiveQuantizer, AqConfig};
use rabitq_bench::{Args, Table, Testbed};
use rabitq_core::{CodeSet, PackedCodes, Rabitq, RabitqConfig};
use rabitq_data::registry::PaperDataset;
use rabitq_math::vecs;
use rabitq_metrics::{RelativeErrorStats, Stopwatch};
use rabitq_pq::{Opq, OpqConfig, PqCodes, PqConfig, PqPacked, ProductQuantizer, QuantizedLuts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let queries = args.usize("queries", 20);
    let seed = args.u64("seed", 42);
    let aq_sample = args.usize("aq-sample", 3_000);
    let datasets = args.datasets(&[PaperDataset::Sift, PaperDataset::Msong, PaperDataset::Gist]);

    println!("# Figure 3: time-accuracy trade-off for distance estimation");
    println!("# n = {n}, queries = {queries}, seed = {seed}\n");

    for dataset in datasets {
        // Match the paper's per-bucket workload (1M vectors / 4096 buckets
        // ≈ 256 per bucket) rather than its absolute bucket count.
        let clusters = args.usize("clusters", (n / 256).max(16));
        let tb = Testbed::paper(dataset, n, queries, clusters, seed);
        let dim = tb.ds.dim;
        println!("## {} (D = {dim}, {} buckets)", tb.ds.name, tb.coarse.k());

        // Exact distances per query (reference for the error metrics).
        let exact: Vec<Vec<f32>> = (0..queries)
            .map(|qi| tb.exact_distances(tb.ds.query(qi)))
            .collect();

        let mut table = Table::new(&["method", "bits/vec", "ns/vec", "avg-rel-err", "max-rel-err"]);

        // --- RaBitQ at 1× and 2× code length, single and batch. ---
        for pad in [1usize, 2] {
            let padded = (dim * pad).div_ceil(64) * 64;
            let (codes, quantizer) = build_rabitq(&tb, padded, seed);
            for single in [true, false] {
                let (sw, err) = eval_rabitq(&tb, &quantizer, &codes, &exact, single, seed);
                table.row(&[
                    format!("RaBitQ-{}", if single { "single" } else { "batch" }),
                    padded.to_string(),
                    format!("{:.1}", sw.nanos_per((queries * n) as u64)),
                    format!("{:.3}%", err.average() * 100.0),
                    format!("{:.2}%", err.maximum() * 100.0),
                ]);
            }
        }

        // --- PQ / OPQ at D-bit and 2D-bit budgets. ---
        // k=8: bits = 8M → M targets D/8, D/4. k=4: bits = 4M → D/4, D/2.
        for (k_bits, m_div) in [(8u8, 8usize), (8, 4), (4, 4), (4, 2)] {
            let m = largest_divisor_at_most(dim, dim / m_div);
            let bits = m * k_bits as usize;
            for use_opq in [false, true] {
                let label = format!(
                    "{}x{}{}",
                    if use_opq { "OPQ" } else { "PQ" },
                    k_bits,
                    if k_bits == 4 { "fs-batch" } else { "-single" }
                );
                let (sw, err) = eval_pq(&tb, m, k_bits, use_opq, &exact, seed);
                table.row(&[
                    label,
                    bits.to_string(),
                    format!("{:.1}", sw.nanos_per((queries * n) as u64)),
                    format!("{:.3}%", err.average() * 100.0),
                    format!("{:.2}%", err.maximum() * 100.0),
                ]);
            }
        }

        // --- LSQ-style AQ (4-bit fast scan), on a subsample: its ICM
        // encoder is the paper's ">24h on GIST" method. ---
        let aq_n = aq_sample.min(n);
        let m_aq = dim / 4; // bits ≈ D, matching RaBitQ's budget
        let (sw, err) = eval_aq(&tb, m_aq, aq_n, &exact, seed);
        table.row(&[
            format!("LSQ(AQ)x4fs-batch [first {aq_n}]"),
            (4 * m_aq).to_string(),
            format!("{:.1}", sw.nanos_per((queries * aq_n) as u64)),
            format!("{:.3}%", err.average() * 100.0),
            format!("{:.2}%", err.maximum() * 100.0),
        ]);

        table.print();
        println!();
    }
}

/// Largest divisor of `dim` that is ≤ `target` (PQ requires M | D).
fn largest_divisor_at_most(dim: usize, target: usize) -> usize {
    (1..=target.max(1))
        .rev()
        .find(|m| dim.is_multiple_of(*m))
        .unwrap_or(1)
}

struct RabitqIndex {
    buckets: Vec<(CodeSet, PackedCodes)>,
    rotated_centroids: Vec<f32>,
}

fn build_rabitq(tb: &Testbed, padded: usize, seed: u64) -> (RabitqIndex, Rabitq) {
    let dim = tb.ds.dim;
    let cfg = RabitqConfig {
        padded_dim: Some(padded),
        seed,
        ..RabitqConfig::default()
    };
    let quantizer = Rabitq::new(dim, cfg);
    let mut rotated_centroids = vec![0.0f32; tb.coarse.k() * padded];
    for c in 0..tb.coarse.k() {
        rotated_centroids[c * padded..(c + 1) * padded]
            .copy_from_slice(&quantizer.rotate(tb.coarse.centroid(c)));
    }
    let buckets = tb
        .buckets
        .iter()
        .enumerate()
        .map(|(c, ids)| {
            let mut set = quantizer.new_code_set();
            for &id in ids {
                quantizer.encode_into(tb.ds.vector(id as usize), tb.coarse.centroid(c), &mut set);
            }
            let packed = quantizer.pack(&set);
            (set, packed)
        })
        .collect();
    (
        RabitqIndex {
            buckets,
            rotated_centroids,
        },
        quantizer,
    )
}

fn eval_rabitq(
    tb: &Testbed,
    quantizer: &Rabitq,
    index: &RabitqIndex,
    exact: &[Vec<f32>],
    single: bool,
    seed: u64,
) -> (Stopwatch, RelativeErrorStats) {
    let padded = quantizer.padded_dim();
    let n = tb.ds.n();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF16_3);
    let mut est_buf = vec![0.0f32; n];
    let mut batch = Vec::new();
    let mut sw = Stopwatch::new();
    let mut err = RelativeErrorStats::new();
    for qi in 0..tb.ds.n_queries() {
        let query = tb.ds.query(qi);
        let order = tb.probe_order(query);
        sw.start();
        let rotated_q = quantizer.rotate(query);
        for &c in &order {
            let ids = &tb.buckets[c];
            if ids.is_empty() {
                continue;
            }
            let rc = &index.rotated_centroids[c * padded..(c + 1) * padded];
            let prepared = quantizer.prepare_query_prerotated(&rotated_q, rc, &mut rng);
            let (set, packed) = &index.buckets[c];
            if single {
                for (slot, &id) in ids.iter().enumerate() {
                    est_buf[id as usize] = quantizer.estimate(&prepared, set, slot).dist_sq;
                }
            } else {
                quantizer.estimate_batch(&prepared, packed, set, &mut batch);
                for (e, &id) in batch.iter().zip(ids.iter()) {
                    est_buf[id as usize] = e.dist_sq;
                }
            }
        }
        std::hint::black_box(&est_buf);
        sw.stop();
        for (i, &e) in est_buf.iter().enumerate() {
            err.record(e, exact[qi][i]);
        }
    }
    (sw, err)
}

fn eval_pq(
    tb: &Testbed,
    m: usize,
    k_bits: u8,
    use_opq: bool,
    exact: &[Vec<f32>],
    seed: u64,
) -> (Stopwatch, RelativeErrorStats) {
    let dim = tb.ds.dim;
    let n = tb.ds.n();
    let pq_cfg = PqConfig {
        m,
        k_bits,
        train_iters: 10,
        training_sample: Some(10_000),
        seed,
    };
    // Train on residuals; encode residuals per bucket.
    enum Q {
        Pq(ProductQuantizer),
        Opq(Opq),
    }
    let quantizer = if use_opq {
        let mut ocfg = OpqConfig::new(pq_cfg.clone());
        ocfg.outer_iters = 3;
        ocfg.procrustes_sample = 8_000;
        Q::Opq(Opq::train(&tb.residuals, dim, &ocfg))
    } else {
        Q::Pq(ProductQuantizer::train(&tb.residuals, dim, &pq_cfg))
    };
    let inner = match &quantizer {
        Q::Pq(p) => p,
        Q::Opq(o) => o.pq(),
    };
    // Pre-rotate centroids for the OPQ rotate-once path.
    let rotated_centroids: Vec<f32> = match &quantizer {
        Q::Pq(_) => Vec::new(),
        Q::Opq(o) => {
            let mut out = vec![0.0f32; tb.coarse.k() * dim];
            for c in 0..tb.coarse.k() {
                out[c * dim..(c + 1) * dim].copy_from_slice(&o.rotate(tb.coarse.centroid(c)));
            }
            out
        }
    };
    // Encode per bucket (rotating residuals for OPQ).
    let buckets: Vec<(PqCodes, Option<PqPacked>)> = tb
        .buckets
        .iter()
        .map(|ids| {
            let mut codes = PqCodes {
                m,
                codes: Vec::new(),
            };
            for &id in ids {
                match &quantizer {
                    Q::Pq(p) => p.encode(tb.residual(id), &mut codes.codes),
                    Q::Opq(o) => o.encode(tb.residual(id), &mut codes.codes),
                }
            }
            let packed = (k_bits == 4).then(|| PqPacked::pack(&codes));
            (codes, packed)
        })
        .collect();

    let mut est_buf = vec![0.0f32; n];
    let mut fast = Vec::new();
    let mut residual_q = vec![0.0f32; dim];
    let mut sw = Stopwatch::new();
    let mut err = RelativeErrorStats::new();
    for qi in 0..tb.ds.n_queries() {
        let query = tb.ds.query(qi);
        let order = tb.probe_order(query);
        sw.start();
        // OPQ: rotate the query once.
        let rotated_q: Vec<f32> = match &quantizer {
            Q::Pq(_) => Vec::new(),
            Q::Opq(o) => o.rotate(query),
        };
        for &c in &order {
            let ids = &tb.buckets[c];
            if ids.is_empty() {
                continue;
            }
            // LUTs on the (rotated) residual query.
            let luts = match &quantizer {
                Q::Pq(p) => {
                    vecs::sub(query, tb.coarse.centroid(c), &mut residual_q);
                    p.build_luts(&residual_q)
                }
                Q::Opq(_) => {
                    let rc = &rotated_centroids[c * dim..(c + 1) * dim];
                    vecs::sub(&rotated_q, rc, &mut residual_q);
                    inner.build_luts(&residual_q)
                }
            };
            let (codes, packed) = &buckets[c];
            if k_bits == 4 {
                let qluts = QuantizedLuts::from_f32_luts(&luts, m, 16);
                packed
                    .as_ref()
                    .expect("packed codes exist for k=4")
                    .scan_all(&qluts, &mut fast);
                for (&e, &id) in fast.iter().zip(ids.iter()) {
                    est_buf[id as usize] = e;
                }
            } else {
                for (slot, &id) in ids.iter().enumerate() {
                    est_buf[id as usize] = inner.adc_distance(&luts, codes.code(slot));
                }
            }
        }
        std::hint::black_box(&est_buf);
        sw.stop();
        for (i, &e) in est_buf.iter().enumerate() {
            err.record(e, exact[qi][i]);
        }
    }
    (sw, err)
}

fn eval_aq(
    tb: &Testbed,
    m: usize,
    aq_n: usize,
    exact: &[Vec<f32>],
    seed: u64,
) -> (Stopwatch, RelativeErrorStats) {
    let dim = tb.ds.dim;
    let cfg = AqConfig {
        m,
        k_bits: 4,
        refine_iters: 1,
        icm_passes: 1,
        kmeans_iters: 8,
        training_sample: Some(2_000.min(aq_n)),
        seed,
    };
    let aq = AdditiveQuantizer::train(&tb.ds.data[..aq_n * dim], dim, &cfg);
    let codes = aq.encode_set(tb.ds.data[..aq_n * dim].chunks_exact(dim));
    let packed = PqPacked::pack(&codes.codes);

    let mut est = Vec::new();
    let mut sw = Stopwatch::new();
    let mut err = RelativeErrorStats::new();
    for qi in 0..tb.ds.n_queries() {
        let query = tb.ds.query(qi);
        sw.start();
        aq.fastscan_distances(query, &packed, &codes, &mut est);
        std::hint::black_box(&est);
        sw.stop();
        for (i, &e) in est.iter().enumerate() {
            err.record(e, exact[qi][i]);
        }
    }
    (sw, err)
}
