//! **Table 6 (appendix F.1)** — ablation of the codebook construction.
//!
//! The paper swaps RaBitQ's randomized codebook for a learned (PQ-style)
//! codebook and observes degraded accuracy. This reproduction ablates the
//! randomization itself: the rotation is replaced with the identity, i.e.
//! the *deterministic* hypercube codebook `C` of Eq. 3 — precisely the
//! construction Section 3.1.2 argues is broken because it favors some
//! directions (and it voids the error bound). The randomized codebook must
//! win on both average and maximum relative error.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin table6_ablation_codebook -- --n 10000
//! ```

use rabitq_bench::{Args, Table, Testbed};
use rabitq_core::{Rabitq, RabitqConfig, RotatorKind};
use rabitq_data::registry::PaperDataset;
use rabitq_metrics::RelativeErrorStats;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let queries = args.usize("queries", 20);
    let seed = args.u64("seed", 42);
    // Default to msong-like: the deterministic codebook's weakness is that
    // it favors specific directions (Section 3.1.2), which only bites when
    // coordinates are skewed. On near-Gaussian data (gist-like) the
    // ablation is mild because Gaussians are rotation-invariant.
    let dataset = args
        .datasets(&[PaperDataset::Msong])
        .into_iter()
        .next()
        .expect("one dataset");

    let clusters = args.usize("clusters", (n / 256).max(16));
    let tb = Testbed::paper(dataset, n, queries, clusters, seed);
    let dim = tb.ds.dim;
    println!(
        "# Table 6: codebook ablation on {} (D = {dim}, n = {n})",
        tb.ds.name
    );
    println!("# paper: randomized 1.675%/13.04% vs learned 3.049%/34.38% (avg/max)\n");

    let exact: Vec<Vec<f32>> = (0..queries)
        .map(|qi| tb.exact_distances(tb.ds.query(qi)))
        .collect();

    let mut table = Table::new(&["codebook", "avg-rel-err", "max-rel-err"]);
    for (label, kind) in [
        ("randomized rotation (paper)", RotatorKind::DenseOrthogonal),
        ("deterministic hypercube (ablation)", RotatorKind::Identity),
    ] {
        let quantizer = Rabitq::new(
            dim,
            RabitqConfig {
                rotator: kind,
                seed,
                ..RabitqConfig::default()
            },
        );
        let sets: Vec<_> = tb
            .buckets
            .iter()
            .enumerate()
            .map(|(c, ids)| {
                let mut set = quantizer.new_code_set();
                for &id in ids {
                    quantizer.encode_into(
                        tb.ds.vector(id as usize),
                        tb.coarse.centroid(c),
                        &mut set,
                    );
                }
                set
            })
            .collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7AB6);
        let mut err = RelativeErrorStats::new();
        for qi in 0..queries {
            let query = tb.ds.query(qi);
            for (c, ids) in tb.buckets.iter().enumerate() {
                if ids.is_empty() {
                    continue;
                }
                let prepared = quantizer.prepare_query(query, tb.coarse.centroid(c), &mut rng);
                for (slot, &id) in ids.iter().enumerate() {
                    let est = quantizer.estimate(&prepared, &sets[c], slot);
                    err.record(est.dist_sq, exact[qi][id as usize]);
                }
            }
        }
        table.row(&[
            label.to_string(),
            format!("{:.3}%", err.average() * 100.0),
            format!("{:.2}%", err.maximum() * 100.0),
        ]);
    }
    table.print();
}
