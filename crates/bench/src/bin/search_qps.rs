//! **Extension benchmark** — query throughput of the concurrent read path
//! and the allocation discipline of the scratch-based query engine.
//!
//! Builds a multi-segment collection (the "4-segment benchmark
//! collection" of the read-path work), then measures:
//!
//! * serial QPS through the legacy `Collection::search` loop;
//! * batch QPS through `search_many` at 1 thread and at `--threads`
//!   (auto-detected when 0), verifying the two are **bit-identical**;
//! * heap allocations per query on a monolithic `IvfRabitq`, before
//!   (allocating `search_with`) and after (reused-`SearchScratch`
//!   `search_into`) — the latter must be 0 at steady state.
//!
//! Results are printed as a table and written as one JSON object (default
//! `BENCH_search.json`) so CI can archive throughput over time.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin search_qps -- \
//!     --n 20000 --queries 200 --k 10 --nprobe 32 --threads 0 \
//!     --out BENCH_search.json
//! ```

use rabitq_bench::{Args, Table};
use rabitq_core::RabitqConfig;
use rabitq_ivf::{IvfConfig, IvfRabitq, RerankStrategy, SearchScratch};
use rabitq_metrics::Stopwatch;
use rabitq_store::{Collection, CollectionConfig, ParallelOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Counts every `alloc`/`realloc` while armed, so allocations-per-query
/// is a measured number, not a claim.
struct CountingAllocator;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    f();
    ARMED.store(false, Ordering::SeqCst);
    ALLOCS.load(Ordering::SeqCst)
}

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 20_000);
    let n_queries = args.usize("queries", 100);
    let k = args.usize("k", 10);
    let nprobe = args.usize("nprobe", 32);
    let segments = args.usize("segments", 4).max(1);
    let seed = args.u64("seed", 42);
    let mut threads = args.usize("threads", 0);
    if threads == 0 {
        threads = std::thread::available_parallelism().map_or(2, |p| p.get());
    }
    let out_path = args.str("out", "BENCH_search.json");

    let mut rng = StdRng::seed_from_u64(seed);
    let dim = 64usize;
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let queries = rabitq_math::rng::standard_normal_vec(&mut rng, n_queries * dim);

    println!("# Extension: concurrent snapshot read path QPS + allocation discipline");
    println!(
        "# n = {n}, dim = {dim}, queries = {n_queries}, k = {k}, nprobe = {nprobe}, \
         target segments = {segments}, threads = {threads}\n"
    );

    // --- The multi-segment benchmark collection ---------------------------
    let dir = std::env::temp_dir().join(format!("bench-search-qps-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut config = CollectionConfig::new(dim);
    config.memtable_capacity = n.div_ceil(segments);
    config.auto_compact = false;
    let mut collection = Collection::open(&dir, config).expect("open collection");
    for row in data.chunks_exact(dim) {
        collection.insert(row).expect("insert");
    }
    collection.seal().expect("seal");
    println!(
        "ingested {n} rows -> {} segments\n",
        collection.n_segments()
    );

    // --- QPS: serial loop vs batch engine ---------------------------------
    let measure_serial = || {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51);
        let mut sw = Stopwatch::new();
        sw.start();
        for q in queries.chunks_exact(dim) {
            std::hint::black_box(collection.search(q, k, nprobe, &mut rng));
        }
        sw.stop();
        sw.per_second(n_queries as u64)
    };
    let measure_many = |t: usize| {
        let opts = ParallelOptions { threads: t, seed };
        let mut sw = Stopwatch::new();
        sw.start();
        let res = collection.search_many(&queries, k, nprobe, opts);
        sw.stop();
        (sw.per_second(n_queries as u64), res)
    };

    // Warm-up pass, then measure.
    measure_serial();
    let qps_serial = measure_serial();
    measure_many(1);
    let (qps_many_1, res_1) = measure_many(1);
    let (qps_many_t, res_t) = measure_many(threads);
    let bit_identical = res_1
        .iter()
        .zip(res_t.iter())
        .all(|(a, b)| a.neighbors == b.neighbors);
    assert!(
        bit_identical,
        "search_many must be bit-identical across thread counts"
    );
    let speedup = qps_many_t / qps_many_1;

    let mut table = Table::new(&["engine", "threads", "QPS", "vs serial"]);
    table.row(&[
        "Collection::search (serial loop)".into(),
        "1".into(),
        format!("{qps_serial:.0}"),
        "1.00x".into(),
    ]);
    table.row(&[
        "Snapshot::search_many".into(),
        "1".into(),
        format!("{qps_many_1:.0}"),
        format!("{:.2}x", qps_many_1 / qps_serial),
    ]);
    table.row(&[
        "Snapshot::search_many".into(),
        format!("{threads}"),
        format!("{qps_many_t:.0}"),
        format!("{:.2}x", qps_many_t / qps_serial),
    ]);
    table.print();
    println!(
        "\nmulti-thread vs single-thread search_many: {speedup:.2}x \
         (bit-identical: {bit_identical})"
    );
    if threads > 1 && speedup < 2.0 {
        println!(
            "note: < 2x speedup — expected on machines with few free cores \
             (available parallelism here: {})",
            std::thread::available_parallelism().map_or(1, |p| p.get())
        );
    }

    // --- Allocations per query: before vs after scratch reuse -------------
    let index = IvfRabitq::build(
        &data,
        dim,
        &IvfConfig::new(segments * 8),
        RabitqConfig::default(),
    );
    let mut scratch = SearchScratch::new();
    let mut rng_a = StdRng::seed_from_u64(seed ^ 0x71);
    let mut rng_b = StdRng::seed_from_u64(seed ^ 0x71);
    // Warm both paths (grows the scratch to its steady-state shape).
    for q in queries.chunks_exact(dim) {
        std::hint::black_box(index.search(q, k, nprobe, &mut rng_a));
        index.search_into(
            q,
            k,
            nprobe,
            RerankStrategy::ErrorBound,
            &mut scratch,
            &mut rng_b,
        );
    }
    let allocs_before = count_allocs(|| {
        for q in queries.chunks_exact(dim) {
            std::hint::black_box(index.search(q, k, nprobe, &mut rng_a));
        }
    }) as f64
        / n_queries as f64;
    let allocs_after = count_allocs(|| {
        for q in queries.chunks_exact(dim) {
            index.search_into(
                q,
                k,
                nprobe,
                RerankStrategy::ErrorBound,
                &mut scratch,
                &mut rng_b,
            );
        }
    }) as f64
        / n_queries as f64;
    println!(
        "\nallocations per query (monolithic IvfRabitq, nprobe = {nprobe}): \
         {allocs_before:.1} allocating path -> {allocs_after:.1} scratch path"
    );
    assert_eq!(
        allocs_after, 0.0,
        "steady-state scratch path must not allocate"
    );

    // --- JSON artifact -----------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"search_qps\",\n  \"n\": {n},\n  \"dim\": {dim},\n  \
         \"queries\": {n_queries},\n  \"k\": {k},\n  \"nprobe\": {nprobe},\n  \
         \"segments\": {segs},\n  \"threads\": {threads},\n  {hw},\n  \
         \"qps_serial\": {qps_serial:.2},\n  \"qps_search_many_1t\": {qps_many_1:.2},\n  \
         \"qps_search_many_mt\": {qps_many_t:.2},\n  \"speedup_mt_over_1t\": {speedup:.3},\n  \
         \"bit_identical\": {bit_identical},\n  \
         \"allocs_per_query_before_scratch\": {allocs_before:.2},\n  \
         \"allocs_per_query_after_scratch\": {allocs_after:.2}\n}}\n",
        segs = collection.n_segments(),
        hw = rabitq_bench::hw::json_fields(),
    );
    let mut file = std::fs::File::create(&out_path).expect("create bench json");
    file.write_all(json.as_bytes()).expect("write bench json");
    println!("\nwrote {out_path}");

    std::fs::remove_dir_all(&dir).ok();
}
