//! **Table 7 / Figure 11 (appendix F.2)** — ablation of the estimator.
//!
//! Same codes, two read-outs: the paper's unbiased `⟨ō,q⟩/⟨ō,o⟩` versus
//! the PQ-style `⟨ō,q⟩` (treating the quantized vector as the data
//! vector). Reports the relative-error table (Table 7) and the
//! inner-product-level regression of Figure 11, where the biased variant's
//! slope collapses to ≈ E[⟨ō,o⟩] ≈ 0.8.
//!
//! ```text
//! cargo run --release -p rabitq-bench --bin table7_ablation_estimator -- --n 10000
//! ```

use rabitq_bench::{Args, Table, Testbed};
use rabitq_core::kernels::ip_code_query;
use rabitq_core::{estimator, Rabitq, RabitqConfig};
use rabitq_data::registry::PaperDataset;
use rabitq_math::vecs;
use rabitq_metrics::{linear_regression, RelativeErrorStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = args.usize("n", 10_000);
    let queries = args.usize("queries", 20);
    let seed = args.u64("seed", 42);
    let dataset = args
        .datasets(&[PaperDataset::Gist])
        .into_iter()
        .next()
        .expect("one dataset");

    let clusters = args.usize("clusters", (n / 256).max(16));
    let tb = Testbed::paper(dataset, n, queries, clusters, seed);
    let dim = tb.ds.dim;
    println!(
        "# Table 7 / Figure 11: estimator ablation on {} (D = {dim}, n = {n})",
        tb.ds.name
    );
    println!("# paper (Table 7): unbiased 1.675%/13.04% vs biased 2.196%/52.40% (avg/max)\n");

    let quantizer = Rabitq::new(
        dim,
        RabitqConfig {
            seed,
            ..RabitqConfig::default()
        },
    );
    let sets: Vec<_> = tb
        .buckets
        .iter()
        .enumerate()
        .map(|(c, ids)| {
            let mut set = quantizer.new_code_set();
            for &id in ids {
                quantizer.encode_into(tb.ds.vector(id as usize), tb.coarse.centroid(c), &mut set);
            }
            set
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7AB7);
    let mut err_unbiased = RelativeErrorStats::new();
    let mut err_biased = RelativeErrorStats::new();
    // Inner-product-level pairs for the Figure 11 regression.
    let mut true_ip: Vec<f64> = Vec::new();
    let mut ip_unbiased: Vec<f64> = Vec::new();
    let mut ip_biased: Vec<f64> = Vec::new();

    for qi in 0..queries {
        let query = tb.ds.query(qi);
        for (c, ids) in tb.buckets.iter().enumerate() {
            if ids.is_empty() {
                continue;
            }
            let centroid = tb.coarse.centroid(c);
            let prepared = quantizer.prepare_query(query, centroid, &mut rng);
            let mut q_res = vec![0.0f32; dim];
            vecs::sub(query, centroid, &mut q_res);
            let q_norm = vecs::normalize(&mut q_res);
            for (slot, &id) in ids.iter().enumerate() {
                let set = &sets[c];
                let exact = vecs::l2_sq(tb.ds.vector(id as usize), query);
                let unbiased = quantizer.estimate(&prepared, set, slot);
                let ip_bin = ip_code_query(set.code_bits(slot), &prepared);
                let biased = estimator::estimate_biased(
                    ip_bin,
                    set.factors(slot),
                    &prepared,
                    quantizer.padded_dim(),
                );
                err_unbiased.record(unbiased.dist_sq, exact);
                err_biased.record(biased.dist_sq, exact);
                // True ⟨o,q⟩ of unit residuals, recovered from exacts.
                let f = set.factors(slot);
                if f.norm > 0.0 && q_norm > 0.0 {
                    let mut o_res = tb.residual(id).to_vec();
                    vecs::normalize(&mut o_res);
                    true_ip.push(vecs::dot(&o_res, &q_res) as f64);
                    ip_unbiased.push(unbiased.ip_est as f64);
                    ip_biased.push(biased.ip_est as f64);
                }
            }
        }
    }

    let mut table = Table::new(&["estimator", "avg-rel-err", "max-rel-err"]);
    table.row(&[
        "<o-bar,q>/<o-bar,o> (unbiased)".into(),
        format!("{:.3}%", err_unbiased.average() * 100.0),
        format!("{:.2}%", err_unbiased.maximum() * 100.0),
    ]);
    table.row(&[
        "<o-bar,q> (biased, PQ-style)".into(),
        format!("{:.3}%", err_biased.average() * 100.0),
        format!("{:.2}%", err_biased.maximum() * 100.0),
    ]);
    table.print();

    println!("\n## Figure 11: inner-product regression (slope 1 = unbiased; biased slope ~ 0.8)");
    let mut t2 = Table::new(&["estimator", "slope", "intercept", "R^2"]);
    for (name, est) in [("unbiased", &ip_unbiased), ("biased", &ip_biased)] {
        let fit = linear_regression(&true_ip, est);
        t2.row(&[
            name.to_string(),
            format!("{:.4}", fit.slope),
            format!("{:+.5}", fit.intercept),
            format!("{:.4}", fit.r_squared),
        ]);
    }
    t2.print();
}
