//! Column-aligned table printing for experiment output.

/// A simple left-aligned text table with a header row.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "cell count");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with `digits` decimal places.
pub fn fmt(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a percentage with two decimals.
pub fn pct(v: f64) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["a".into(), "1".into()]);
        t.row(&["longer-name".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    #[should_panic(expected = "cell count")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(pct(0.9512), "95.12%");
    }
}
