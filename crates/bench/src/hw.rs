//! Hardware context for bench artifacts.
//!
//! Every bench JSON records the SIMD levels the host actually supports and
//! its available parallelism, so numbers archived from different machines
//! (or a 1-core CI box with a flat `speedup_mt_over_1t`) are
//! self-explaining and comparable across the trajectory.

pub use rabitq_core::hw::{active_kernel, cores, cpu_features};

/// `"cpu_features": [...], "cores": N, "kernel": "..."` as a JSON fragment
/// for the hand-formatted bench artifacts (two-space indented, no trailing
/// comma).
pub fn json_fields() -> String {
    let feats = cpu_features()
        .iter()
        .map(|f| format!("\"{f}\""))
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "\"cpu_features\": [{feats}],\n  \"cores\": {},\n  \"kernel\": \"{}\"",
        cores(),
        active_kernel()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_fragment_names_both_fields() {
        let j = json_fields();
        assert!(j.contains("\"cpu_features\""));
        assert!(j.contains("\"cores\""));
        assert!(j.contains("\"kernel\""));
    }
}
