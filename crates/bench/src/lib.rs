//! # rabitq-bench — experiment harness
//!
//! One binary per table/figure of the paper's evaluation (see `DESIGN.md`
//! §4 for the full index). Every binary accepts the flags parsed by
//! [`cli::Args`] (`--n`, `--queries`, `--k`, `--clusters`, `--seed`,
//! `--datasets`, `--samples`) so experiments scale from smoke tests to the
//! paper's 10⁶ regime. Results print as aligned TSV-ish tables recorded in
//! `EXPERIMENTS.md`.

pub mod cli;
pub mod hw;
pub mod table;
pub mod testbed;

pub use cli::Args;
pub use table::Table;
pub use testbed::Testbed;
