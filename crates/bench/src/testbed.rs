//! Shared experiment scaffolding: a generated dataset clustered by the IVF
//! coarse quantizer, with vectors scanned in probe order — the measurement
//! protocol of Section 5.1 ("to simulate the order when the methods are
//! used in practice, we build the IVF index for all methods and estimate
//! the distances in the order that the IVF index probes the clusters").

use rabitq_data::registry::PaperDataset;
use rabitq_data::Dataset;
use rabitq_kmeans::{train as kmeans_train, KMeans, KMeansConfig};
use rabitq_math::vecs;

/// A dataset plus its coarse clustering.
pub struct Testbed {
    /// The generated dataset.
    pub ds: Dataset,
    /// IVF coarse quantizer trained on it.
    pub coarse: KMeans,
    /// Vector ids per bucket.
    pub buckets: Vec<Vec<u32>>,
    /// Residuals `o_r − c` per vector (flat `n × dim`), aligned with ids.
    pub residuals: Vec<f32>,
}

impl Testbed {
    /// Generates a paper-analogue dataset and clusters it.
    pub fn paper(
        dataset: PaperDataset,
        n: usize,
        n_queries: usize,
        clusters: usize,
        seed: u64,
    ) -> Self {
        let ds = dataset.generate(n, n_queries, seed);
        Self::from_dataset(ds, clusters, seed)
    }

    /// Clusters an existing dataset.
    pub fn from_dataset(ds: Dataset, clusters: usize, seed: u64) -> Self {
        let mut cfg = KMeansConfig::new(clusters.min(ds.n()));
        cfg.max_iters = 10;
        cfg.seed = seed ^ 0xC0A5;
        cfg.training_sample = Some(30_000);
        let coarse = kmeans_train(&ds.data, ds.dim, &cfg);
        let assignment = coarse.assign_all(&ds.data, 1);
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); coarse.k()];
        for (i, &c) in assignment.iter().enumerate() {
            buckets[c as usize].push(i as u32);
        }
        let mut residuals = vec![0.0f32; ds.data.len()];
        for (i, &c) in assignment.iter().enumerate() {
            vecs::sub(
                ds.vector(i),
                coarse.centroid(c as usize),
                &mut residuals[i * ds.dim..(i + 1) * ds.dim],
            );
        }
        Self {
            ds,
            coarse,
            buckets,
            residuals,
        }
    }

    /// Bucket indices in nearest-centroid-first order for a query.
    pub fn probe_order(&self, query: &[f32]) -> Vec<usize> {
        self.coarse
            .assign_top_n(query, self.coarse.k())
            .into_iter()
            .map(|(c, _)| c)
            .collect()
    }

    /// The residual of vector `id` w.r.t. its bucket centroid.
    pub fn residual(&self, id: u32) -> &[f32] {
        &self.residuals[id as usize * self.ds.dim..(id as usize + 1) * self.ds.dim]
    }

    /// Exact squared distances from `query` to every base vector.
    pub fn exact_distances(&self, query: &[f32]) -> Vec<f32> {
        (0..self.ds.n())
            .map(|i| vecs::l2_sq(self.ds.vector(i), query))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_dataset() {
        let tb = Testbed::paper(PaperDataset::Sift, 500, 4, 8, 1);
        let total: usize = tb.buckets.iter().map(|b| b.len()).sum();
        assert_eq!(total, 500);
        let mut seen = vec![false; 500];
        for b in &tb.buckets {
            for &id in b {
                assert!(!seen[id as usize], "vector {id} in two buckets");
                seen[id as usize] = true;
            }
        }
    }

    #[test]
    fn probe_order_starts_with_nearest_centroid() {
        let tb = Testbed::paper(PaperDataset::Sift, 300, 4, 6, 2);
        let order = tb.probe_order(tb.ds.query(0));
        assert_eq!(order.len(), tb.coarse.k());
        let d_first = vecs::l2_sq(tb.coarse.centroid(order[0]), tb.ds.query(0));
        let d_last = vecs::l2_sq(tb.coarse.centroid(order[order.len() - 1]), tb.ds.query(0));
        assert!(d_first <= d_last);
    }

    #[test]
    fn residuals_reconstruct_vectors() {
        let tb = Testbed::paper(PaperDataset::Sift, 200, 2, 4, 3);
        let assignment = tb.coarse.assign_all(&tb.ds.data, 1);
        for i in [0usize, 57, 199] {
            let c = assignment[i] as usize;
            let r = tb.residual(i as u32);
            for d in 0..tb.ds.dim {
                let want = tb.ds.vector(i)[d];
                let got = r[d] + tb.coarse.centroid(c)[d];
                assert!((want - got).abs() < 1e-5);
            }
        }
    }
}
