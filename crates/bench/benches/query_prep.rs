//! Criterion benches for per-bucket query preparation: randomized scalar
//! quantization of the rotated residual plus fast-scan LUT construction —
//! the O(B) work each probed IVF bucket pays (Section 3.3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rabitq_core::{Lut, QuantizedQuery};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_query_prep(c: &mut Criterion) {
    for &dim in &[128usize, 960] {
        let mut group = c.benchmark_group(&format!("query-prep/D={dim}"));
        let mut rng = StdRng::seed_from_u64(5);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, dim);

        group.bench_function(BenchmarkId::new("quantize-bq4", dim), |b| {
            b.iter(|| QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng).sum_qu)
        });

        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        group.bench_function(BenchmarkId::new("lut-build", dim), |b| {
            b.iter(|| Lut::build(&query).segments())
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_query_prep
}
criterion_main!(benches);
