//! Criterion bench for the extension indexes: graph traversal over RaBitQ
//! codes (single-code bitwise kernel per visited vertex, bound-gated
//! re-ranking) and flat MIPS/cosine search (batch fast-scan + footnote-8
//! lift). Complements `ivf_search.rs`, which covers the paper's own
//! Figure 4 systems.

use criterion::{criterion_group, criterion_main, Criterion};
use rabitq_core::RabitqConfig;
use rabitq_data::registry::PaperDataset;
use rabitq_graph::{GraphRabitq, GraphRabitqConfig};
use rabitq_hnsw::HnswConfig;
use rabitq_ivf::FlatMips;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_graph_search(c: &mut Criterion) {
    let n = 10_000;
    let ds = PaperDataset::Sift.generate(n, 8, 42);
    let k = 10;

    let mut group = c.benchmark_group("graph-search/sift-like-10k");

    let base_cfg = GraphRabitqConfig {
        hnsw: HnswConfig {
            m: 16,
            ef_construction: 200,
            seed: 42,
        },
        ..GraphRabitqConfig::default()
    };
    let graph = GraphRabitq::build(&ds.data, ds.dim, base_cfg);
    for ef in [40usize, 160] {
        group.bench_function(format!("graph-rabitq/c=1/ef={ef}"), |b| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 1) % ds.n_queries();
                graph.search(ds.query(qi), k, ef, &mut rng).neighbors.len()
            })
        });
        group.bench_function(format!("hnsw-exact/ef={ef}"), |b| {
            let mut qi = 0usize;
            b.iter(|| {
                qi = (qi + 1) % ds.n_queries();
                graph.search_exact(ds.query(qi), k, ef).len()
            })
        });
    }

    let multi = GraphRabitq::build(
        &ds.data,
        ds.dim,
        GraphRabitqConfig {
            centroids: 64,
            ..base_cfg
        },
    );
    group.bench_function("graph-rabitq/c=64/ef=160", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % ds.n_queries();
            multi.search(ds.query(qi), k, 160, &mut rng).neighbors.len()
        })
    });
    group.finish();
}

fn bench_mips_search(c: &mut Criterion) {
    let n = 10_000;
    let ds = PaperDataset::Sift.generate(n, 8, 42);
    let k = 10;
    let index = FlatMips::build(&ds.data, ds.dim, RabitqConfig::default());

    let mut group = c.benchmark_group("mips-search/sift-like-10k");
    group.bench_function("flat-mips/ip", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % ds.n_queries();
            index.search_ip(ds.query(qi), k, &mut rng).neighbors.len()
        })
    });
    group.bench_function("flat-mips/cosine", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % ds.n_queries();
            index
                .search_cosine(ds.query(qi), k, &mut rng)
                .neighbors
                .len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_graph_search, bench_mips_search
}
criterion_main!(benches);
