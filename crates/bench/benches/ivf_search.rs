//! Criterion bench for end-to-end IVF query latency: IVF-RaBitQ with
//! error-bound re-ranking vs IVF-OPQ fast scan with fixed re-ranking vs
//! HNSW — the per-query cost behind Figure 4's QPS axis.

use criterion::{criterion_group, criterion_main, Criterion};
use rabitq_core::RabitqConfig;
use rabitq_data::registry::PaperDataset;
use rabitq_hnsw::{Hnsw, HnswConfig};
use rabitq_ivf::{IvfConfig, IvfPq, IvfRabitq, ScanMode};
use rabitq_pq::PqConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ivf_search(c: &mut Criterion) {
    let n = 10_000;
    let ds = PaperDataset::Sift.generate(n, 8, 42);
    let ivf_cfg = IvfConfig::new(IvfConfig::clusters_for(n));
    let k = 100;
    let nprobe = 16;

    let mut group = c.benchmark_group("ivf-search/sift-like-10k");

    let rabitq = IvfRabitq::build(&ds.data, ds.dim, &ivf_cfg, RabitqConfig::default());
    group.bench_function("ivf-rabitq/nprobe=16", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % ds.n_queries();
            rabitq
                .search(ds.query(qi), k, nprobe, &mut rng)
                .neighbors
                .len()
        })
    });

    let pq_cfg = PqConfig {
        m: ds.dim / 2,
        k_bits: 4,
        train_iters: 8,
        training_sample: Some(8_000),
        seed: 42,
    };
    let opq = IvfPq::build(&ds.data, ds.dim, &ivf_cfg, &pq_cfg, true);
    group.bench_function("ivf-opqx4fs/nprobe=16,rerank=500", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % ds.n_queries();
            opq.search(ds.query(qi), k, nprobe, 500, ScanMode::FastScanBatch)
                .neighbors
                .len()
        })
    });

    let hnsw = Hnsw::build(
        &ds.data,
        ds.dim,
        HnswConfig {
            m: 16,
            ef_construction: 200,
            seed: 42,
        },
    );
    group.bench_function("hnsw/efSearch=160", |b| {
        let mut qi = 0usize;
        b.iter(|| {
            qi = (qi + 1) % ds.n_queries();
            hnsw.search(ds.query(qi), k, 160).len()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3));
    targets = bench_ivf_search
}
criterion_main!(benches);
