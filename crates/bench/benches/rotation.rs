//! Criterion benches for the two rotator constructions: the paper's dense
//! Haar-orthogonal matrix (O(D²)) vs the randomized-Hadamard JLT
//! (O(D log D)) used by production ports.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rabitq_core::{Rotator, RotatorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_rotation(c: &mut Criterion) {
    for &dim in &[128usize, 960] {
        let mut group = c.benchmark_group(&format!("rotation/D={dim}"));
        let mut rng = StdRng::seed_from_u64(3);
        let input = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        for (name, kind) in [
            ("dense", RotatorKind::DenseOrthogonal),
            ("hadamard", RotatorKind::RandomizedHadamard),
        ] {
            let rot = Rotator::sample(kind, dim, None, 11);
            let mut out = vec![0.0f32; rot.padded_dim()];
            group.bench_function(BenchmarkId::new(name, dim), |b| {
                b.iter(|| {
                    rot.rotate(&input, &mut out);
                    out[0]
                })
            });
        }
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_rotation
}
criterion_main!(benches);
