//! Criterion benches for the PQ baselines' scan kernels: the x8 in-RAM
//! f32-LUT scan vs the x4 u8-LUT fast scan — the efficiency gap that made
//! fast scan "an important component in many popular libraries"
//! (Section 2 of the paper).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rabitq_pq::{PqConfig, PqPacked, ProductQuantizer, QuantizedLuts};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pq_adc(c: &mut Criterion) {
    let dim = 128usize;
    let n = 1024usize;
    let mut rng = StdRng::seed_from_u64(9);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);

    let mut group = c.benchmark_group(&format!("pq-adc/D={dim}"));
    group.throughput(Throughput::Elements(n as u64));

    // ---- x8-single: M = D/2, 8-bit codes, f32 LUTs in RAM. ----
    let cfg8 = PqConfig {
        m: dim / 2,
        k_bits: 8,
        train_iters: 8,
        training_sample: Some(1024),
        seed: 1,
    };
    let pq8 = ProductQuantizer::train(&data, dim, &cfg8);
    let codes8 = pq8.encode_set(data.chunks_exact(dim));
    let luts8 = pq8.build_luts(&query);
    group.bench_function(BenchmarkId::new("x8-single-f32lut", n), |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for i in 0..n {
                acc += pq8.adc_distance(&luts8, codes8.code(i));
            }
            acc
        })
    });

    // ---- x4fs-batch: M = D/2, 4-bit codes, u8 LUTs via fast scan. ----
    let cfg4 = PqConfig {
        m: dim / 2,
        k_bits: 4,
        train_iters: 8,
        training_sample: Some(1024),
        seed: 1,
    };
    let pq4 = ProductQuantizer::train(&data, dim, &cfg4);
    let codes4 = pq4.encode_set(data.chunks_exact(dim));
    let packed = PqPacked::pack(&codes4);
    let qluts = QuantizedLuts::build(&pq4, &query);
    group.bench_function(BenchmarkId::new("x4fs-batch-u8lut", n), |b| {
        let mut out = Vec::new();
        b.iter(|| {
            packed.scan_all(&qluts, &mut out);
            out.iter().sum::<f32>()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_pq_adc
}
criterion_main!(benches);
