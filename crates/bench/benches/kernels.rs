//! Criterion micro-benches for the distance-estimation kernels backing
//! Figure 3: single-code bitwise AND+popcount vs the 32-code fast-scan
//! (portable scalar and runtime-dispatched SIMD).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rabitq_core::fastscan::{raw, Lut, PackedCodes, BLOCK};
use rabitq_core::kernels::ip_code_query;
use rabitq_core::{CodeSet, QuantizedQuery};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(padded_dim: usize, n: usize) -> (CodeSet, PackedCodes, QuantizedQuery, Lut) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut set = CodeSet::new(padded_dim);
    let words = padded_dim / 64;
    for _ in 0..n {
        let code: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        set.push(&code, 1.0, 0.8);
    }
    let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded_dim);
    let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
    let lut = Lut::build(&query);
    let packed = PackedCodes::pack(&set);
    (set, packed, query, lut)
}

fn bench_kernels(c: &mut Criterion) {
    for &dim in &[128usize, 960] {
        let n = 1024;
        let (set, packed, query, lut) = setup(dim, n);
        let mut group = c.benchmark_group(&format!("ip-kernels/D={dim}"));
        group.throughput(Throughput::Elements(n as u64));

        group.bench_function(BenchmarkId::new("bitwise-single", n), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for i in 0..n {
                    acc = acc.wrapping_add(ip_code_query(set.code_bits(i), &query));
                }
                acc
            })
        });

        group.bench_function(BenchmarkId::new("fastscan-dispatch", n), |b| {
            let mut out = Vec::new();
            b.iter(|| {
                packed.scan_all(&lut, &mut out);
                out.iter().copied().sum::<u32>()
            })
        });

        group.bench_function(BenchmarkId::new("fastscan-scalar", n), |b| {
            // Force the portable path through the raw scalar kernel.
            let mut lut_bytes = vec![0u8; (dim / 4) * 16];
            for (i, b8) in lut_bytes.iter_mut().enumerate() {
                *b8 = (i % 61) as u8;
            }
            let blocks = raw::pack_nibbles(n, dim / 4, |i, s| {
                let bit = s * 4;
                ((set.code_bits(i)[bit / 64] >> (bit % 64)) & 0xF) as u8
            });
            let mut out = [0u32; BLOCK];
            b.iter(|| {
                let mut acc = 0u32;
                for blk in 0..n / BLOCK {
                    let base = blk * (dim / 4) * 16;
                    raw::scan_u8_scalar(
                        &blocks[base..base + (dim / 4) * 16],
                        &lut_bytes,
                        dim / 4,
                        &mut out,
                    );
                    acc = acc.wrapping_add(out.iter().sum::<u32>());
                }
                acc
            })
        });
        group.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_kernels
}
criterion_main!(benches);
