//! A lock-free log-bucketed latency histogram for serving metrics.
//!
//! The serving front end records one sample per request from many threads
//! concurrently, so the histogram is a fixed array of atomic counters:
//! `record` is two relaxed atomic adds, never a lock. Buckets are
//! log-spaced with 4 linear sub-buckets per octave (HDR-style with 2 bits
//! of precision), so any reported quantile is within ~12.5% of the true
//! sample value — plenty for p50/p95/p99 dashboards, at 2 KiB per
//! histogram.
//!
//! Values are recorded in microseconds; anything above ~2³⁸ µs (~3 days)
//! saturates into the last bucket.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-buckets per octave (2 precision bits).
const SUB: usize = 4;
/// Octaves covered beyond the linear range (indices 0..SUB are exact).
const OCTAVES: usize = 36;
/// Total bucket count.
const BUCKETS: usize = SUB + OCTAVES * SUB;

/// Bucket index for a microsecond value. Values `< SUB` map exactly;
/// larger values map to (octave, top-2-mantissa-bits).
#[inline]
fn bucket_of(us: u64) -> usize {
    if us < SUB as u64 {
        return us as usize;
    }
    let octave = 63 - us.leading_zeros() as usize; // >= 2 here
    let sub = ((us >> (octave - 2)) & 3) as usize; // top 2 bits below the MSB
    let idx = (octave - 1) * SUB + sub;
    idx.min(BUCKETS - 1)
}

/// Representative (geometric-ish midpoint) microsecond value of a bucket.
#[inline]
fn bucket_value(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = idx / SUB + 1;
    let sub = (idx % SUB) as u64;
    let lo = (1u64 << octave) + (sub << (octave - 2));
    let width = 1u64 << (octave - 2);
    lo + width / 2
}

/// Inclusive upper bound (µs) of a bucket: the largest integer value that
/// maps into it. Strictly increasing in `idx`, which is what a Prometheus
/// `le` ladder needs.
#[inline]
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = idx / SUB + 1;
    let sub = (idx % SUB) as u64;
    let lo = (1u64 << octave) + (sub << (octave - 2));
    let width = 1u64 << (octave - 2);
    lo + width - 1
}

/// A concurrent latency histogram: microsecond samples, approximate
/// quantiles, exact count/mean.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: [const { AtomicU64::new(0) }; BUCKETS],
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }

    /// Records one sample, in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Records one sample from a [`Duration`].
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean sample in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) in microseconds, approximated by
    /// the representative value of the bucket holding that rank. Returns 0
    /// when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(idx);
            }
        }
        bucket_value(BUCKETS - 1)
    }

    /// Sum of all recorded samples in microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Adds every sample recorded in `other` into `self`. Concurrent
    /// `record` calls on either side are safe; a merge racing a `record`
    /// lands the sample on exactly one side of the merge.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_us
            .fetch_add(other.sum_us.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The occupied buckets as `(inclusive upper bound µs, count)`, in
    /// ascending bound order — the raw material for a Prometheus `le`
    /// ladder (cumulate the counts; the last real bucket is a saturation
    /// catch-all, so render it as `+Inf` alongside an explicit one).
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(idx, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(idx), n))
            })
            .collect()
    }

    /// Resets every counter to zero. Not atomic with respect to concurrent
    /// `record` calls — samples landing mid-reset may straddle the wipe.
    pub fn reset(&self) {
        for c in &self.counts {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_us.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_small_values_exactly() {
        for us in 0..4u64 {
            assert_eq!(bucket_of(us), us as usize);
            assert_eq!(bucket_value(us as usize), us);
        }
        let mut last = 0;
        for us in [4u64, 5, 7, 8, 100, 1_000, 65_536, 1 << 30, u64::MAX] {
            let b = bucket_of(us);
            assert!(b >= last, "bucket index must not decrease ({us})");
            last = b;
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn bucket_value_stays_within_its_bucket() {
        for us in [4u64, 6, 10, 100, 999, 12_345, 1_000_000] {
            let idx = bucket_of(us);
            let rep = bucket_value(idx);
            assert_eq!(bucket_of(rep), idx, "representative of {us} moved bucket");
        }
    }

    #[test]
    fn quantiles_track_a_known_distribution() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_us(0.50) as f64;
        let p99 = h.quantile_us(0.99) as f64;
        // Log-bucketed: within 12.5% of the true order statistic.
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50 = {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.15, "p99 = {p99}");
        assert!((h.mean_us() - 500.5).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert_eq!(h.mean_us(), 0.0);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_us(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn reset_wipes_counts() {
        let h = LatencyHistogram::new();
        h.record_us(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile_us(0.5), 0);
    }

    #[test]
    fn single_sample_answers_every_quantile() {
        let h = LatencyHistogram::new();
        h.record_us(1234);
        let rep = bucket_value(bucket_of(1234));
        for q in [0.0, 0.001, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), rep, "q = {q}");
        }
        assert_eq!(h.mean_us(), 1234.0);
        assert_eq!(h.sum_us(), 1234);
    }

    #[test]
    fn saturating_samples_land_in_the_top_bucket() {
        let h = LatencyHistogram::new();
        h.record_us(u64::MAX);
        h.record_us(u64::MAX / 2);
        // Both saturate into the final catch-all bucket; the quantile is
        // that bucket's representative value, and it stays in-bucket.
        let top = bucket_value(BUCKETS - 1);
        assert_eq!(h.quantile_us(0.5), top);
        assert_eq!(h.quantile_us(1.0), top);
        assert_eq!(bucket_of(top), BUCKETS - 1);
        // The exact sum is preserved even though the buckets saturate.
        assert_eq!(h.sum_us(), u64::MAX.wrapping_add(u64::MAX / 2));
    }

    #[test]
    fn merge_combines_counts_sums_and_quantiles() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        for us in 1..=500u64 {
            a.record_us(us);
        }
        for us in 501..=1000u64 {
            b.record_us(us);
        }
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.sum_us(), (1..=1000u64).sum::<u64>());
        let p50 = a.quantile_us(0.50) as f64;
        assert!((p50 - 500.0).abs() / 500.0 < 0.15, "p50 = {p50}");
        // b is untouched.
        assert_eq!(b.count(), 500);
    }

    #[test]
    fn concurrent_merge_and_record_lose_no_samples() {
        // Recorders hammer the shared histogram while merger threads fold
        // pre-filled per-worker histograms into it — the pattern the serve
        // layer uses when draining worker-local stats. Every sample must
        // land exactly once: counts, sums, and bucket totals all conserve.
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let sources: Vec<std::sync::Arc<LatencyHistogram>> = (0..3)
            .map(|s| {
                let src = LatencyHistogram::new();
                for i in 0..500u64 {
                    src.record_us(s * 10_000 + i);
                }
                std::sync::Arc::new(src)
            })
            .collect();
        let expected_sum: u64 = (0..4u64)
            .flat_map(|t| (0..1000u64).map(move |i| t * 1000 + i))
            .sum::<u64>()
            + sources.iter().map(|s| s.sum_us()).sum::<u64>();

        let mut threads: Vec<_> = (0..4u64)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_us(t * 1000 + i);
                    }
                })
            })
            .collect();
        for src in &sources {
            let (h, src) = (h.clone(), src.clone());
            threads.push(std::thread::spawn(move || h.merge(&src)));
        }
        for t in threads {
            t.join().unwrap();
        }

        assert_eq!(h.count(), 4 * 1000 + 3 * 500);
        assert_eq!(h.sum_us(), expected_sum);
        // The per-bucket counts agree with the total — no sample was
        // double-counted or dropped by a merge racing a record.
        let bucket_total: u64 = h.nonzero_buckets().iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, h.count());
        // The sources themselves are untouched by the merges.
        for src in &sources {
            assert_eq!(src.count(), 500);
        }
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let a = LatencyHistogram::new();
        a.record_us(7);
        let before = (a.count(), a.sum_us(), a.quantile_us(0.5));
        a.merge(&LatencyHistogram::new());
        assert_eq!((a.count(), a.sum_us(), a.quantile_us(0.5)), before);
    }

    #[test]
    fn nonzero_buckets_have_ascending_exhaustive_bounds() {
        let h = LatencyHistogram::new();
        for us in [0u64, 3, 4, 100, 100, 65_000, u64::MAX] {
            h.record_us(us);
        }
        let buckets = h.nonzero_buckets();
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        let mut last = None;
        for &(bound, count) in &buckets {
            assert!(count > 0);
            assert!(Some(bound) > last, "bounds must strictly ascend");
            last = Some(bound);
        }
        // An upper bound classifies into its own bucket.
        for idx in 0..BUCKETS {
            assert_eq!(bucket_of(bucket_upper(idx)), idx, "idx {idx}");
        }
    }
}
