//! # rabitq-metrics — evaluation metrics
//!
//! The exact metrics of the paper's Section 5.1:
//!
//! * [`errors`] — average and maximum *relative error* of estimated squared
//!   distances (distance-estimation accuracy, Figure 3);
//! * [`recall`] — recall@K and *average distance ratio* against exact
//!   ground truth (ANN accuracy, Figure 4);
//! * [`timer`] — wall-clock helpers for per-vector estimation time and QPS;
//! * [`stats`] — least-squares regression (Figure 7's unbiasedness fit) and
//!   histograms (Figure 8's distribution verification).
//!
//! Plus one serving-side metric:
//!
//! * [`latency`] — a lock-free log-bucketed latency histogram
//!   (p50/p95/p99 under concurrent recording) for the network front end
//!   and its load harness.

pub mod errors;
pub mod latency;
pub mod recall;
pub mod stats;
pub mod timer;

pub use errors::RelativeErrorStats;
pub use latency::LatencyHistogram;
pub use recall::{average_distance_ratio, recall_at_k};
pub use stats::{linear_regression, Histogram, LinearFit};
pub use timer::Stopwatch;
