//! # rabitq-metrics — evaluation and serving metrics
//!
//! The exact metrics of the paper's Section 5.1:
//!
//! * [`errors`] — average and maximum *relative error* of estimated squared
//!   distances (distance-estimation accuracy, Figure 3);
//! * [`recall`] — recall@K and *average distance ratio* against exact
//!   ground truth (ANN accuracy, Figure 4);
//! * [`timer`] — wall-clock helpers for per-vector estimation time and QPS;
//! * [`stats`] — least-squares regression (Figure 7's unbiasedness fit) and
//!   histograms (Figure 8's distribution verification).
//!
//! Plus the serving-side observability layer:
//!
//! * [`latency`] — a lock-free log-bucketed latency histogram
//!   (p50/p95/p99 under concurrent recording) for the network front end
//!   and its load harness;
//! * [`stage`] — per-query pipeline stage tracing (rotate → LUT build →
//!   scan → re-rank → merge) with a process-wide atomic sink;
//! * [`events`] — a bounded ring journal of structured operational events
//!   (seals, compactions, quarantines, slow queries);
//! * [`prometheus`] — a hand-rolled text exposition encoder and the tiny
//!   format checker CI scrapes `/metrics` with.

pub mod errors;
pub mod events;
pub mod latency;
pub mod prometheus;
pub mod recall;
pub mod stage;
pub mod stats;
pub mod timer;

pub use errors::RelativeErrorStats;
pub use events::{Event, EventJournal};
pub use latency::LatencyHistogram;
pub use prometheus::PromEncoder;
pub use recall::{average_distance_ratio, recall_at_k};
pub use stage::{Stage, StageNanos, StageTimers, STAGE_COUNT};
pub use stats::{linear_regression, Histogram, LinearFit};
pub use timer::Stopwatch;
