//! Hand-rolled Prometheus text exposition (format version 0.0.4).
//!
//! [`PromEncoder`] collects metric samples into per-metric blocks and
//! renders them with `# HELP`/`# TYPE` headers, escaped label values, and
//! cumulative histogram `le` ladders derived from
//! [`LatencyHistogram::nonzero_buckets`]. Samples may be added in any
//! order — rendering groups every sample under its metric's single block,
//! which the format requires.
//!
//! [`validate`] is the tiny checker the tests and the CI serving smoke
//! run against a live `/metrics` scrape: header grammar, metric-name and
//! label syntax, block contiguity, and histogram invariants (ascending
//! `le`, non-decreasing cumulative counts, `+Inf` present and equal to
//! `_count`).

use crate::latency::LatencyHistogram;
use std::collections::HashMap;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

struct Block {
    name: String,
    kind: Kind,
    help: String,
    samples: Vec<String>,
}

/// Builder for one exposition document.
#[derive(Default)]
pub struct PromEncoder {
    blocks: Vec<Block>,
    index: HashMap<String, usize>,
}

/// Escapes a label value per the text format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    if v.is_nan() {
        return "NaN".into();
    }
    format!("{v}")
}

fn fmt_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{{body}}}")
}

impl PromEncoder {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn block(&mut self, name: &str, kind: Kind, help: &str) -> &mut Block {
        let idx = match self.index.get(name) {
            Some(&idx) => {
                assert_eq!(
                    self.blocks[idx].kind, kind,
                    "metric {name} re-declared with a different type"
                );
                idx
            }
            None => {
                self.blocks.push(Block {
                    name: name.to_string(),
                    kind,
                    help: help.to_string(),
                    samples: Vec::new(),
                });
                self.index.insert(name.to_string(), self.blocks.len() - 1);
                self.blocks.len() - 1
            }
        };
        &mut self.blocks[idx]
    }

    /// Adds one counter sample (monotonic total).
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        let line = format!("{name}{} {value}", fmt_labels(labels));
        self.block(name, Kind::Counter, help).samples.push(line);
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        let line = format!("{name}{} {}", fmt_labels(labels), fmt_value(value));
        self.block(name, Kind::Gauge, help).samples.push(line);
    }

    /// Adds one histogram series from a microsecond [`LatencyHistogram`],
    /// rendered in **seconds** (the Prometheus base unit — name the metric
    /// `*_seconds`): a cumulative `le` ladder over the occupied buckets,
    /// an explicit `+Inf`, `_sum`, and `_count`.
    pub fn histogram_us(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        hist: &LatencyHistogram,
    ) {
        let buckets = hist.nonzero_buckets();
        let count = hist.count();
        let sum_s = hist.sum_us() as f64 / 1e6;
        let block = self.block(name, Kind::Histogram, help);
        let mut cumulative = 0u64;
        for (upper_us, n) in buckets {
            cumulative += n;
            let mut ls: Vec<(&str, &str)> = labels.to_vec();
            let le = fmt_value(upper_us as f64 / 1e6);
            ls.push(("le", &le));
            block
                .samples
                .push(format!("{name}_bucket{} {cumulative}", fmt_labels(&ls)));
        }
        let mut ls: Vec<(&str, &str)> = labels.to_vec();
        ls.push(("le", "+Inf"));
        block
            .samples
            .push(format!("{name}_bucket{} {count}", fmt_labels(&ls)));
        block.samples.push(format!(
            "{name}_sum{} {}",
            fmt_labels(labels),
            fmt_value(sum_s)
        ));
        block
            .samples
            .push(format!("{name}_count{} {count}", fmt_labels(labels)));
    }

    /// Adds an info-style gauge (constant `1` whose labels carry the
    /// payload — e.g. build version, active kernel).
    pub fn info(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) {
        self.gauge(name, help, labels, 1.0);
    }

    /// Renders the document. Every metric's samples sit in one block under
    /// its `# HELP`/`# TYPE` headers, in first-declaration order.
    pub fn render(self) -> String {
        let mut out = String::new();
        for b in &self.blocks {
            let _ = writeln!(out, "# HELP {} {}", b.name, b.help);
            let _ = writeln!(out, "# TYPE {} {}", b.name, b.kind.as_str());
            for s in &b.samples {
                out.push_str(s);
                out.push('\n');
            }
        }
        out
    }
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit()
}

fn parse_name(s: &str) -> Result<(&str, &str), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, c)) if is_name_start(c) => {}
        _ => return Err(format!("bad metric name start in {s:?}")),
    }
    let end = s
        .char_indices()
        .find(|&(_, c)| !is_name_char(c))
        .map_or(s.len(), |(i, _)| i);
    Ok((&s[..end], &s[end..]))
}

/// Owned label pairs parsed off a sample line.
type LabelPairs = Vec<(String, String)>;

/// Parses `{k="v",...}`-style labels, returning (pairs, rest-after-`}`).
fn parse_labels(s: &str) -> Result<(LabelPairs, &str), String> {
    let mut rest = s
        .strip_prefix('{')
        .ok_or_else(|| format!("expected '{{' in {s:?}"))?;
    let mut pairs = Vec::new();
    loop {
        if let Some(r) = rest.strip_prefix('}') {
            return Ok((pairs, r));
        }
        let (key, after_key) = parse_name(rest)?;
        rest = after_key
            .strip_prefix("=\"")
            .ok_or_else(|| format!("expected '=\"' after label {key:?}"))?;
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                Some((_, '\\')) => match chars.next() {
                    Some((_, '\\')) => value.push('\\'),
                    Some((_, '"')) => value.push('"'),
                    Some((_, 'n')) => value.push('\n'),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                Some((i, '"')) => break i + 1,
                Some((_, c)) => value.push(c),
                None => return Err(format!("unterminated label value for {key:?}")),
            }
        };
        pairs.push((key.to_string(), value));
        rest = &rest[close..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r;
        } else if !rest.starts_with('}') {
            return Err(format!("expected ',' or '}}' after label {key:?}"));
        }
    }
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        s => s.parse::<f64>().map_err(|_| format!("bad value {s:?}")),
    }
}

/// A parsed sample used by the histogram checks.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// Validates a text-exposition document: header grammar, name/label
/// syntax, one contiguous block per metric, and histogram invariants.
/// Returns the number of samples on success.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut finished: Vec<String> = Vec::new(); // block order for contiguity
    let mut current: Option<String> = None;
    let mut samples: Vec<Sample> = Vec::new();

    let base_of = |name: &str, typed: &HashMap<String, String>| -> String {
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if typed.get(base).map(String::as_str) == Some("histogram") {
                    return base.to_string();
                }
            }
        }
        name.to_string()
    };

    for (lineno, line) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            return Err(err("empty line".into()));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (directive, rest) = rest
                .split_once(' ')
                .ok_or_else(|| err("bare comment directive".into()))?;
            match directive {
                "HELP" => {
                    let (name, _help) = rest.split_once(' ').unwrap_or((rest, ""));
                    parse_name(name)
                        .ok()
                        .filter(|(_, tail)| tail.is_empty())
                        .ok_or_else(|| err(format!("bad HELP name {name:?}")))?;
                }
                "TYPE" => {
                    let (name, kind) = rest
                        .split_once(' ')
                        .ok_or_else(|| err("TYPE without a type".into()))?;
                    parse_name(name)
                        .ok()
                        .filter(|(_, tail)| tail.is_empty())
                        .ok_or_else(|| err(format!("bad TYPE name {name:?}")))?;
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&kind) {
                        return Err(err(format!("unknown metric type {kind:?}")));
                    }
                    if typed.insert(name.to_string(), kind.to_string()).is_some() {
                        return Err(err(format!("duplicate TYPE for {name}")));
                    }
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // plain comment
        }
        let (name, rest) = parse_name(line).map_err(err)?;
        let (labels, rest) = if rest.starts_with('{') {
            parse_labels(rest).map_err(err)?
        } else {
            (Vec::new(), rest)
        };
        let value_str = rest
            .strip_prefix(' ')
            .ok_or_else(|| err(format!("expected space before value in {line:?}")))?;
        // We never emit timestamps; a second field is a format error here.
        let value = parse_value(value_str.trim_end()).map_err(err)?;
        for (k, _) in &labels {
            if k.starts_with("__") {
                return Err(err(format!("reserved label name {k:?}")));
            }
        }
        let base = base_of(name, &typed);
        if current.as_deref() != Some(base.as_str()) {
            if let Some(prev) = current.take() {
                finished.push(prev);
            }
            if finished.contains(&base) {
                return Err(err(format!("samples for {base} are not contiguous")));
            }
            current = Some(base.clone());
        }
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }

    // Histogram invariants, per (base name, labels-minus-le) series.
    for (name, kind) in &typed {
        if kind != "histogram" {
            continue;
        }
        let mut series: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        let mut counts: HashMap<String, f64> = HashMap::new();
        let series_key = |labels: &[(String, String)]| -> String {
            let mut ls: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v:?}"))
                .collect();
            ls.sort();
            ls.join(",")
        };
        for s in &samples {
            if s.name == format!("{name}_bucket") {
                let le = s
                    .labels
                    .iter()
                    .find(|(k, _)| k == "le")
                    .ok_or_else(|| format!("{name}_bucket without le"))?;
                let le = parse_value(&le.1)?;
                series
                    .entry(series_key(&s.labels))
                    .or_default()
                    .push((le, s.value));
            } else if s.name == format!("{name}_count") {
                counts.insert(series_key(&s.labels), s.value);
            }
        }
        for (key, buckets) in &series {
            let mut last_le = f64::NEG_INFINITY;
            let mut last_c = -1.0f64;
            for &(le, c) in buckets {
                if le <= last_le {
                    return Err(format!("{name}{{{key}}}: le not increasing at {le}"));
                }
                if c < last_c {
                    return Err(format!(
                        "{name}{{{key}}}: cumulative count decreased at le={le}"
                    ));
                }
                last_le = le;
                last_c = c;
            }
            let (inf_le, inf_c) = *buckets.last().expect("non-empty bucket list");
            if !inf_le.is_infinite() {
                return Err(format!("{name}{{{key}}}: missing +Inf bucket"));
            }
            if let Some(&count) = counts.get(key) {
                if count != inf_c {
                    return Err(format!(
                        "{name}{{{key}}}: _count {count} != +Inf bucket {inf_c}"
                    ));
                }
            }
        }
    }

    Ok(samples.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_document_renders_and_validates() {
        let hist = LatencyHistogram::new();
        for us in [3u64, 50, 50, 2000] {
            hist.record_us(us);
        }
        let mut enc = PromEncoder::new();
        enc.counter("rabitq_requests_total", "HTTP requests.", &[], 42);
        enc.gauge(
            "rabitq_queue_depth",
            "Queued searches.",
            &[("collection", "default")],
            3.0,
        );
        enc.histogram_us(
            "rabitq_search_duration_seconds",
            "Edge search latency.",
            &[("collection", "default")],
            &hist,
        );
        enc.info(
            "rabitq_build_info",
            "Build metadata.",
            &[("version", "1.0"), ("kernel", "avx2")],
        );
        let text = enc.render();
        let n = validate(&text).expect("golden document must validate");
        // 1 counter + 1 gauge + (3 buckets + Inf + sum + count) + 1 info.
        assert_eq!(n, 9);
        assert!(text.contains("# TYPE rabitq_requests_total counter\nrabitq_requests_total 42\n"));
        assert!(text.contains("rabitq_queue_depth{collection=\"default\"} 3\n"));
        assert!(text.contains("le=\"+Inf\"} 4\n"));
        assert!(text.contains("rabitq_search_duration_seconds_count{collection=\"default\"} 4\n"));
        assert!(text.contains("rabitq_build_info{version=\"1.0\",kernel=\"avx2\"} 1\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut enc = PromEncoder::new();
        enc.gauge("m", "h", &[("path", "a\\b\"c\nd")], 1.0);
        let text = enc.render();
        assert!(text.contains("m{path=\"a\\\\b\\\"c\\nd\"} 1\n"), "{text}");
        validate(&text).expect("escaped labels must validate");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_count() {
        let hist = LatencyHistogram::new();
        for us in 1..=100u64 {
            hist.record_us(us);
        }
        let mut enc = PromEncoder::new();
        enc.histogram_us("h_seconds", "h", &[], &hist);
        let text = enc.render();
        validate(&text).expect("histogram must validate");
        let mut last = 0u64;
        let mut inf = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_seconds_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "cumulative counts must not decrease: {line}");
            last = v;
            inf = v;
        }
        assert_eq!(inf, 100);
    }

    #[test]
    fn interleaved_sample_insertion_still_renders_contiguous_blocks() {
        let mut enc = PromEncoder::new();
        enc.counter("a_total", "a", &[("c", "x")], 1);
        enc.counter("b_total", "b", &[], 2);
        enc.counter("a_total", "a", &[("c", "y")], 3);
        let text = enc.render();
        validate(&text).expect("grouped rendering must be contiguous");
        let a = text.find("a_total{c=\"x\"}").unwrap();
        let a2 = text.find("a_total{c=\"y\"}").unwrap();
        let b = text.find("b_total 2").unwrap();
        assert!(a < a2 && a2 < b, "{text}");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate("1bad_name 1\n").is_err());
        assert!(validate("m{l=\"unterminated} 1\n").is_err());
        assert!(validate("m 1\n\nm2 1\n").is_err(), "empty line");
        assert!(validate("m nope\n").is_err(), "non-numeric value");
        assert!(
            validate("# TYPE m counter\nm 1\n# TYPE m counter\n").is_err(),
            "duplicate TYPE"
        );
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"2\"} 5\nh_bucket{le=\"1\"} 6\n").is_err(),
            "le must ascend"
        );
        assert!(
            validate("# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\n")
                .is_err(),
            "cumulative counts must not decrease"
        );
        assert!(
            validate(
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_count 4\n"
            )
            .is_err(),
            "_count must equal +Inf"
        );
        assert!(
            validate("a 1\nb 2\na 3\n").is_err(),
            "blocks must be contiguous"
        );
        assert!(validate("m{__reserved=\"v\"} 1\n").is_err());
    }

    #[test]
    fn validator_accepts_special_values() {
        assert!(validate("m +Inf\n").is_ok());
        assert!(validate("m -Inf\n").is_ok());
        assert!(validate("m NaN\n").is_ok());
        assert!(validate("m 1e-6\n").is_ok());
    }
}
