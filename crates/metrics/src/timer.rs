//! Wall-clock measurement helpers: per-vector estimation time (Figure 3's
//! x-axis) and queries-per-second (Figure 4's y-axis).

use std::time::{Duration, Instant};

/// A stopwatch accumulating intervals across start/stop pairs.
#[derive(Clone, Debug, Default)]
pub struct Stopwatch {
    elapsed: Duration,
    started: Option<Instant>,
    laps: u64,
}

impl Stopwatch {
    /// Creates a stopped stopwatch with zero elapsed time.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts (or restarts) the current interval.
    #[inline]
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Stops the current interval, accumulating its duration and counting
    /// one lap. A stop without a start is a no-op.
    #[inline]
    pub fn stop(&mut self) {
        if let Some(t0) = self.started.take() {
            self.elapsed += t0.elapsed();
            self.laps += 1;
        }
    }

    /// Total accumulated time.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.elapsed
    }

    /// Number of completed start/stop laps.
    #[inline]
    pub fn laps(&self) -> u64 {
        self.laps
    }

    /// Average nanoseconds per `items` units of work done in the
    /// accumulated time (e.g. per-vector estimation time).
    pub fn nanos_per(&self, items: u64) -> f64 {
        if items == 0 {
            return 0.0;
        }
        self.elapsed.as_nanos() as f64 / items as f64
    }

    /// Throughput in items per second for `items` units of work.
    pub fn per_second(&self, items: u64) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            return f64::INFINITY;
        }
        items as f64 / secs
    }
}

/// Times one closure invocation, returning its result and the duration.
pub fn time_once<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_across_laps() {
        let mut sw = Stopwatch::new();
        for _ in 0..3 {
            sw.start();
            std::hint::black_box((0..1000).sum::<u64>());
            sw.stop();
        }
        assert_eq!(sw.laps(), 3);
        assert!(sw.elapsed() > Duration::ZERO);
    }

    #[test]
    fn stop_without_start_is_noop() {
        let mut sw = Stopwatch::new();
        sw.stop();
        assert_eq!(sw.laps(), 0);
        assert_eq!(sw.elapsed(), Duration::ZERO);
    }

    #[test]
    fn rates_are_consistent() {
        let mut sw = Stopwatch::new();
        sw.start();
        std::thread::sleep(Duration::from_millis(10));
        sw.stop();
        let qps = sw.per_second(100);
        let ns = sw.nanos_per(100);
        assert!(qps > 0.0 && qps.is_finite());
        // ns/item and items/s must be reciprocal (up to float error).
        assert!((qps * ns / 1e9 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn time_once_returns_value_and_duration() {
        let (v, d) = time_once(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn zero_items_degenerate_cases() {
        let sw = Stopwatch::new();
        assert_eq!(sw.nanos_per(0), 0.0);
        assert_eq!(sw.per_second(5), f64::INFINITY);
    }
}
