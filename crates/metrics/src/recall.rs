//! ANN accuracy metrics: recall@K and average distance ratio (Section 5.1).

/// Recall@K: fraction of the true top-K ids present among the returned ids.
///
/// `truth` is the exact top-K (ids); `returned` is the algorithm's answer
/// (any length; only membership counts). Both follow the paper's protocol
/// of K = 100.
pub fn recall_at_k(truth: &[u32], returned: &[u32]) -> f64 {
    if truth.is_empty() {
        return 1.0;
    }
    let set: std::collections::HashSet<u32> = returned.iter().copied().collect();
    let hits = truth.iter().filter(|id| set.contains(id)).count();
    hits as f64 / truth.len() as f64
}

/// Average distance ratio of the returned K vectors w.r.t. the ground-truth
/// K nearest: `mean_i (d_returned(i) / d_true(i))`, with both lists sorted
/// ascending. Ratios are computed on *distances* (not squared), matching
/// the paper's Figure 4 axis starting at 1.000.
///
/// If the algorithm returned fewer than `truth.len()` results, the missing
/// entries are scored with the worst returned ratio (a conservative
/// penalty); if it returned none, `f64::INFINITY`.
pub fn average_distance_ratio(truth_sq: &[f32], returned_sq: &[f32]) -> f64 {
    if truth_sq.is_empty() {
        return 1.0;
    }
    if returned_sq.is_empty() {
        return f64::INFINITY;
    }
    let mut acc = 0.0f64;
    let mut worst = 1.0f64;
    let k = truth_sq.len();
    for i in 0..k.min(returned_sq.len()) {
        let t = (truth_sq[i] as f64).max(0.0).sqrt();
        let r = (returned_sq[i] as f64).max(0.0).sqrt();
        let ratio = if t > 0.0 {
            (r / t).max(1.0)
        } else if r > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        worst = worst.max(ratio);
        acc += ratio;
    }
    let missing = k.saturating_sub(returned_sq.len());
    acc += worst * missing as f64;
    acc / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_answer_has_recall_one_and_ratio_one() {
        let truth = [1u32, 2, 3, 4];
        assert_eq!(recall_at_k(&truth, &truth), 1.0);
        let d = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(average_distance_ratio(&d, &d), 1.0);
    }

    #[test]
    fn recall_counts_membership_not_order() {
        let truth = [1u32, 2, 3, 4];
        let returned = [4u32, 3, 9, 1];
        assert!((recall_at_k(&truth, &returned) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ratio_penalizes_farther_results() {
        let truth = [1.0f32, 4.0]; // distances 1, 2
        let ret = [4.0f32, 16.0]; // distances 2, 4
        assert!((average_distance_ratio(&truth, &ret) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_is_clamped_below_by_one() {
        // A "returned" set can transiently contain a smaller i-th distance
        // when K differs; the per-position ratio is clamped at 1.
        let truth = [4.0f32];
        let ret = [1.0f32];
        assert_eq!(average_distance_ratio(&truth, &ret), 1.0);
    }

    #[test]
    fn missing_results_are_penalized() {
        let truth = [1.0f32, 1.0, 1.0, 1.0];
        let ret = [4.0f32]; // ratio 2, and 3 missing entries scored 2
        assert!((average_distance_ratio(&truth, &ret) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_inputs_behave() {
        assert_eq!(recall_at_k(&[], &[1]), 1.0);
        assert_eq!(average_distance_ratio(&[], &[]), 1.0);
        assert_eq!(average_distance_ratio(&[1.0], &[]), f64::INFINITY);
    }
}
