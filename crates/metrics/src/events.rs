//! A bounded in-memory journal of structured operational events.
//!
//! The store and serving layers push one entry per notable event —
//! memtable seals, compactions, quarantines, read-only flips, slow
//! queries — and `/stats` or the `rabitq events` CLI command dump the
//! recent window. The journal is a ring: it holds the last `capacity`
//! events, counts what it dropped, and never grows. Pushes take a short
//! mutex (events are rare — thousands per second would itself be the
//! incident), so this is deliberately off the per-query hot path.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonically increasing sequence number (never reused, survives
    /// ring eviction — gaps reveal drops).
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at push time.
    pub ts_ms: u64,
    /// Stable event kind (e.g. `"seal"`, `"compaction"`, `"quarantine"`,
    /// `"read_only"`, `"slow_query"`).
    pub kind: &'static str,
    /// Human-readable details (free-form, single line by convention).
    pub detail: String,
}

struct Inner {
    buf: VecDeque<Event>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

/// The bounded ring of recent [`Event`]s.
pub struct EventJournal {
    inner: Mutex<Inner>,
}

impl EventJournal {
    /// A journal keeping the most recent `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                buf: VecDeque::with_capacity(capacity),
                capacity,
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn push(&self, kind: &'static str, detail: String) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_millis().min(u128::from(u64::MAX)) as u64);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.buf.len() >= inner.capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.buf.push_back(Event {
            seq,
            ts_ms,
            kind,
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn recent(&self) -> Vec<Event> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.buf.iter().cloned().collect()
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .buf
            .len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total_recorded(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .next_seq
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .capacity
    }

    /// Re-bounds the ring (min 1), evicting oldest entries if shrinking.
    /// Lets a serving layer apply `--events-capacity` to a journal created
    /// earlier by the store's open path without losing open-time events.
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        while inner.buf.len() > capacity {
            inner.buf.pop_front();
            inner.dropped += 1;
        }
        inner.capacity = capacity;
    }
}

impl Default for EventJournal {
    /// A journal with a 256-event window.
    fn default() -> Self {
        Self::new(256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_the_most_recent_window() {
        let j = EventJournal::new(3);
        for i in 0..5 {
            j.push("seal", format!("seal {i}"));
        }
        let recent = j.recent();
        assert_eq!(recent.len(), 3);
        assert_eq!(recent[0].detail, "seal 2");
        assert_eq!(recent[2].detail, "seal 4");
        assert_eq!(j.total_recorded(), 5);
        assert_eq!(j.dropped(), 2);
        // Sequence numbers keep counting across evictions.
        assert_eq!(recent.iter().map(|e| e.seq).collect::<Vec<_>>(), [2, 3, 4]);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest() {
        let j = EventJournal::new(8);
        for i in 0..6 {
            j.push("compaction", format!("c{i}"));
        }
        j.set_capacity(2);
        assert_eq!(j.capacity(), 2);
        let recent = j.recent();
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].detail, "c4");
        // Growing never loses entries.
        j.set_capacity(16);
        assert_eq!(j.len(), 2);
        j.push("compaction", "c6".into());
        assert_eq!(j.len(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let j = EventJournal::new(0);
        j.push("a", String::new());
        j.push("b", String::new());
        assert_eq!(j.len(), 1);
        assert_eq!(j.recent()[0].kind, "b");
    }

    #[test]
    fn timestamps_are_sane() {
        let j = EventJournal::default();
        j.push("probe", String::new());
        let e = &j.recent()[0];
        // After 2020-01-01 in ms.
        assert!(e.ts_ms > 1_577_836_800_000, "ts_ms = {}", e.ts_ms);
    }
}
