//! Pipeline stage tracing for the search hot path.
//!
//! A query's cost decomposes into the stages the RaBitQ paper itself
//! evaluates separately: rotating/preparing the query, building the
//! per-bucket LUT, fast-scanning the packed codes, confidence-bound
//! re-ranking, and the final top-k merge. [`StageNanos`] is the plain
//! per-query accumulator threaded through the search scratch (a fixed
//! `[u64; N]` — no allocation, no atomics, safe for the hot path), and
//! [`StageTimers`] is the process-wide sink: one lock-free
//! [`LatencyHistogram`] per stage, fed by the serving layer after each
//! query completes.
//!
//! ## Overhead contract
//!
//! Instrumentation on the hot path is limited to `Instant::now()` reads
//! (a vDSO clock read, no syscall, no allocation) and relaxed atomic adds
//! off the per-query critical path. The counting-allocator test in
//! `rabitq-ivf` runs with stage tracing enabled, so "allocation-free
//! steady state" includes the observability layer.

use crate::latency::LatencyHistogram;

/// The traced stages of one query, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Query rotation + coarse-quantizer probe selection.
    Rotate,
    /// Per-bucket quantized-query + LUT preparation.
    LutBuild,
    /// Packed-code fast scan producing distance estimates.
    Scan,
    /// Confidence-bound exact re-ranking (and memtable exact scans).
    Rerank,
    /// Bounded top-k maintenance and the final sorted merge.
    Merge,
}

/// Number of traced stages.
pub const STAGE_COUNT: usize = 5;

impl Stage {
    /// Every stage, in execution order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Rotate,
        Stage::LutBuild,
        Stage::Scan,
        Stage::Rerank,
        Stage::Merge,
    ];

    /// Stable snake_case name (Prometheus label value, JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Rotate => "rotate",
            Stage::LutBuild => "lut_build",
            Stage::Scan => "scan",
            Stage::Rerank => "rerank",
            Stage::Merge => "merge",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Stage::Rotate => 0,
            Stage::LutBuild => 1,
            Stage::Scan => 2,
            Stage::Rerank => 3,
            Stage::Merge => 4,
        }
    }
}

/// Per-query stage durations in nanoseconds. `Copy`, fixed-size, and
/// allocation-free — lives inside the search scratch and rides back to
/// the caller inside the search result.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNanos {
    ns: [u64; STAGE_COUNT],
}

impl StageNanos {
    /// All-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `ns` nanoseconds to one stage.
    #[inline]
    pub fn add_ns(&mut self, stage: Stage, ns: u64) {
        self.ns[stage.index()] += ns;
    }

    /// Nanoseconds accumulated in one stage.
    #[inline]
    pub fn get_ns(&self, stage: Stage) -> u64 {
        self.ns[stage.index()]
    }

    /// Adds every stage of `other` into `self` (e.g. summing the
    /// per-segment breakdowns of one query).
    #[inline]
    pub fn merge(&mut self, other: &StageNanos) {
        for (mine, theirs) in self.ns.iter_mut().zip(other.ns.iter()) {
            *mine += theirs;
        }
    }

    /// Total nanoseconds across all stages.
    pub fn total_ns(&self) -> u64 {
        self.ns.iter().sum()
    }

    /// Zeroes every stage (re-arming a reused scratch).
    #[inline]
    pub fn clear(&mut self) {
        self.ns = [0; STAGE_COUNT];
    }
}

/// The process-wide stage sink: one concurrent [`LatencyHistogram`] per
/// stage. `record` is a handful of relaxed atomic adds — called once per
/// query *after* the result is produced, never inside the scan loops.
#[derive(Debug, Default)]
pub struct StageTimers {
    hists: [LatencyHistogram; STAGE_COUNT],
}

impl StageTimers {
    /// Empty timers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one query's breakdown in. Each stage records one sample in
    /// microseconds (rounded to nearest; sub-µs stages round to 0 but the
    /// sample still counts, so per-stage counts equal query counts).
    pub fn record(&self, stages: &StageNanos) {
        for stage in Stage::ALL {
            self.hists[stage.index()].record_us((stages.get_ns(stage) + 500) / 1000);
        }
    }

    /// The histogram behind one stage.
    pub fn hist(&self, stage: Stage) -> &LatencyHistogram {
        &self.hists[stage.index()]
    }

    /// Sum of recorded microseconds across every stage — the "total time
    /// attributed to stages" side of the edge-latency reconciliation.
    pub fn total_us(&self) -> u64 {
        Stage::ALL.iter().map(|&s| self.hist(s).sum_us()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_ordered() {
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec!["rotate", "lut_build", "scan", "rerank", "merge"]
        );
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn nanos_accumulate_and_merge() {
        let mut a = StageNanos::new();
        a.add_ns(Stage::Rotate, 100);
        a.add_ns(Stage::Scan, 50);
        a.add_ns(Stage::Scan, 25);
        let mut b = StageNanos::new();
        b.add_ns(Stage::Scan, 5);
        b.add_ns(Stage::Merge, 7);
        a.merge(&b);
        assert_eq!(a.get_ns(Stage::Rotate), 100);
        assert_eq!(a.get_ns(Stage::Scan), 80);
        assert_eq!(a.get_ns(Stage::Merge), 7);
        assert_eq!(a.total_ns(), 187);
        a.clear();
        assert_eq!(a.total_ns(), 0);
    }

    #[test]
    fn timers_record_one_sample_per_stage_per_query() {
        let t = StageTimers::new();
        let mut q = StageNanos::new();
        q.add_ns(Stage::Rotate, 2_000); // 2 µs
        q.add_ns(Stage::Scan, 10_499); // rounds to 10 µs
        q.add_ns(Stage::Merge, 400); // rounds to 0 µs, still counted
        t.record(&q);
        for stage in Stage::ALL {
            assert_eq!(t.hist(stage).count(), 1, "{}", stage.name());
        }
        assert_eq!(t.hist(Stage::Rotate).sum_us(), 2);
        assert_eq!(t.hist(Stage::Scan).sum_us(), 10);
        assert_eq!(t.hist(Stage::Merge).sum_us(), 0);
        assert_eq!(t.total_us(), 12);
    }
}
