//! Small statistics helpers for the verification experiments.

/// Result of an ordinary least-squares fit `y ≈ slope·x + intercept`.
///
/// Figure 7 of the paper fits estimated-vs-true distances: an unbiased
/// estimator yields `slope ≈ 1, intercept ≈ 0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Least-squares slope.
    pub slope: f64,
    /// Least-squares intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Ordinary least squares over paired samples.
///
/// # Panics
/// Panics if the inputs differ in length or have fewer than 2 points.
pub fn linear_regression(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "paired samples");
    assert!(x.len() >= 2, "need at least two points");
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y.iter()) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    let intercept = mean_y - slope * mean_x;
    let r_squared = if sxx > 0.0 && syy > 0.0 {
        (sxy * sxy) / (sxx * syy)
    } else {
        1.0
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// A fixed-range histogram used by the distribution-verification figures.
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
    outside: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "bins must be positive");
        assert!(hi > lo, "hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
            outside: 0,
        }
    }

    /// Records a sample; out-of-range samples are tallied separately.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.total += 1;
        if v < self.lo || v >= self.hi {
            self.outside += 1;
            return;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let idx = ((v - self.lo) / width) as usize;
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Number of bins.
    #[inline]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * width
    }

    /// Raw count of bin `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Empirical probability *density* at bin `i` (integrates to the
    /// in-range mass), comparable against a theoretical pdf.
    pub fn density(&self, i: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts[i] as f64 / self.total as f64 / width
    }

    /// Samples recorded outside `[lo, hi)`.
    #[inline]
    pub fn outside(&self) -> u64 {
        self.outside
    }

    /// Total samples recorded (including out-of-range).
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_recovers_exact_line() {
        let x: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 3.0).collect();
        let fit = linear_regression(&x, &y);
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 3.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_on_noisy_line_has_lower_r2() {
        let x: Vec<f64> = (0..100).map(|i| i as f64 / 10.0).collect();
        let y: Vec<f64> = x
            .iter()
            .enumerate()
            .map(|(i, v)| v + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let fit = linear_regression(&x, &y);
        assert!((fit.slope - 1.0).abs() < 0.05);
        assert!(fit.r_squared < 1.0);
    }

    #[test]
    fn histogram_densities_integrate_to_in_range_mass() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..1000 {
            h.record(i as f64 / 1000.0);
        }
        let width = 0.1;
        let mass: f64 = (0..10).map(|i| h.density(i) * width).sum();
        assert!((mass - 1.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_tracks_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-0.5);
        h.record(0.5);
        h.record(2.0);
        assert_eq!(h.outside(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn bin_centers_are_midpoints() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!((h.bin_center(0) - 0.125).abs() < 1e-12);
        assert!((h.bin_center(3) - 0.875).abs() < 1e-12);
    }
}
