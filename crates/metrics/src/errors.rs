//! Relative-error accounting for distance estimates.
//!
//! The paper measures the quality of a distance estimator with the
//! *average* relative error (general quality) and the *maximum* relative
//! error (robustness) over all (query, data vector) pairs — Section 5.1.

/// Streaming accumulator of `|est − exact| / exact` statistics.
#[derive(Clone, Debug, Default)]
pub struct RelativeErrorStats {
    count: u64,
    sum: f64,
    max: f64,
    /// Pairs where `exact ≤ 0` (identical vectors) — excluded from the
    /// relative error but counted for transparency.
    skipped: u64,
}

impl RelativeErrorStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one (estimate, exact) pair of squared distances.
    #[inline]
    pub fn record(&mut self, estimate: f32, exact: f32) {
        if exact <= 0.0 {
            self.skipped += 1;
            return;
        }
        let rel = ((estimate as f64) - (exact as f64)).abs() / exact as f64;
        self.count += 1;
        self.sum += rel;
        if rel > self.max {
            self.max = rel;
        }
    }

    /// Merges another accumulator (for threaded collection).
    pub fn merge(&mut self, other: &RelativeErrorStats) {
        self.count += other.count;
        self.sum += other.sum;
        self.skipped += other.skipped;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of recorded pairs.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Average relative error (0 if nothing recorded).
    #[inline]
    pub fn average(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Maximum relative error.
    #[inline]
    pub fn maximum(&self) -> f64 {
        self.max
    }

    /// Number of pairs skipped for a non-positive exact distance.
    #[inline]
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_and_max_are_computed_over_recorded_pairs() {
        let mut s = RelativeErrorStats::new();
        s.record(11.0, 10.0); // rel 0.1
        s.record(8.0, 10.0); // rel 0.2
        s.record(10.0, 10.0); // rel 0.0
        assert_eq!(s.count(), 3);
        assert!((s.average() - 0.1).abs() < 1e-9);
        assert!((s.maximum() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_exact_distances_are_skipped() {
        let mut s = RelativeErrorStats::new();
        s.record(5.0, 0.0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.skipped(), 1);
        assert_eq!(s.average(), 0.0);
    }

    #[test]
    fn merge_combines_partial_accumulators() {
        let mut a = RelativeErrorStats::new();
        a.record(11.0, 10.0);
        let mut b = RelativeErrorStats::new();
        b.record(15.0, 10.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.maximum() - 0.5).abs() < 1e-9);
        assert!((a.average() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn empty_accumulator_reports_zeros() {
        let s = RelativeErrorStats::new();
        assert_eq!(s.average(), 0.0);
        assert_eq!(s.maximum(), 0.0);
        assert_eq!(s.count(), 0);
    }
}
