//! Property-based tests for the metrics crate.

use proptest::prelude::*;
use rabitq_metrics::{
    average_distance_ratio, linear_regression, recall_at_k, Histogram, RelativeErrorStats,
};

proptest! {
    #[test]
    fn recall_is_a_fraction_in_unit_interval(
        truth in proptest::collection::vec(0u32..50, 0..20),
        returned in proptest::collection::vec(0u32..50, 0..20),
    ) {
        let r = recall_at_k(&truth, &returned);
        prop_assert!((0.0..=1.0).contains(&r));
    }

    #[test]
    fn recall_of_superset_is_one(truth in proptest::collection::vec(0u32..100, 1..20)) {
        let mut superset = truth.clone();
        superset.extend(100..120);
        prop_assert_eq!(recall_at_k(&truth, &superset), 1.0);
    }

    #[test]
    fn distance_ratio_at_least_one(
        pairs in proptest::collection::vec((0.01f32..100.0, 0.01f32..100.0), 1..20),
    ) {
        let mut truth: Vec<f32> = pairs.iter().map(|&(t, _)| t).collect();
        let mut ret: Vec<f32> = pairs.iter().map(|&(_, r)| r).collect();
        truth.sort_by(|a, b| a.total_cmp(b));
        ret.sort_by(|a, b| a.total_cmp(b));
        let ratio = average_distance_ratio(&truth, &ret);
        prop_assert!(ratio >= 1.0 - 1e-12);
    }

    #[test]
    fn error_stats_average_bounded_by_max(
        pairs in proptest::collection::vec((0.0f32..100.0, 0.01f32..100.0), 1..50),
    ) {
        let mut s = RelativeErrorStats::new();
        for &(est, exact) in &pairs {
            s.record(est, exact);
        }
        prop_assert!(s.average() <= s.maximum() + 1e-12);
        prop_assert_eq!(s.count(), pairs.len() as u64);
    }

    #[test]
    fn merge_equals_bulk_recording(
        a in proptest::collection::vec((0.0f32..10.0, 0.1f32..10.0), 1..20),
        b in proptest::collection::vec((0.0f32..10.0, 0.1f32..10.0), 1..20),
    ) {
        let mut merged = RelativeErrorStats::new();
        for &(e, x) in a.iter().chain(b.iter()) {
            merged.record(e, x);
        }
        let mut left = RelativeErrorStats::new();
        for &(e, x) in &a { left.record(e, x); }
        let mut right = RelativeErrorStats::new();
        for &(e, x) in &b { right.record(e, x); }
        left.merge(&right);
        prop_assert!((left.average() - merged.average()).abs() < 1e-12);
        prop_assert_eq!(left.maximum(), merged.maximum());
    }

    #[test]
    fn regression_recovers_arbitrary_lines(slope in -10.0f64..10.0, intercept in -10.0f64..10.0) {
        let x: Vec<f64> = (0..30).map(|i| i as f64 / 3.0).collect();
        let y: Vec<f64> = x.iter().map(|v| slope * v + intercept).collect();
        let fit = linear_regression(&x, &y);
        prop_assert!((fit.slope - slope).abs() < 1e-9);
        prop_assert!((fit.intercept - intercept).abs() < 1e-8);
    }

    #[test]
    fn histogram_conserves_mass(values in proptest::collection::vec(-2.0f64..2.0, 0..200)) {
        let mut h = Histogram::new(-1.0, 1.0, 8);
        for &v in &values {
            h.record(v);
        }
        let inside: u64 = (0..h.bins()).map(|b| h.count(b)).sum();
        prop_assert_eq!(inside + h.outside(), values.len() as u64);
    }
}
