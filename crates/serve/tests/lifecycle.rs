//! End-to-end server lifecycle: concurrent clients mutating and
//! searching over real sockets, admission-control shedding under
//! saturation, and graceful shutdown that loses no admitted request.

mod common;

use common::*;
use rabitq_serve::{BatchConfig, Json, ServeConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn insert_search_delete_round_trip() {
    let (server, dir) = start_server("roundtrip", ServeConfig::default());
    let addr = server.addr();

    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().get("status").and_then(Json::as_str),
        Some("ok")
    );

    // Row 7 finds itself, batched and direct.
    for mode in [Some("batched"), Some("direct"), None] {
        let resp = request(
            addr,
            "POST",
            "/collections/test/search",
            &search_body(&row_vector(7, 4), 3, mode),
        );
        assert_eq!(resp.status, 200, "{:?}", resp.body);
        assert_eq!(top_id(&resp), 7, "mode {mode:?}");
    }

    // Insert a far-away vector; it becomes its own nearest neighbour.
    let outlier = request(
        addr,
        "POST",
        "/insert",
        "{\"vector\":[100.0,100.0,100.0,100.0]}",
    );
    assert_eq!(outlier.status, 200, "{:?}", outlier.body);
    let new_id = outlier
        .json()
        .get("ids")
        .and_then(Json::as_array)
        .and_then(|ids| ids.first().and_then(Json::as_u64))
        .unwrap();
    assert_eq!(new_id, 64);

    let found = request(
        addr,
        "POST",
        "/search",
        &search_body(&[100.0, 100.0, 100.0, 100.0], 1, None),
    );
    assert_eq!(top_id(&found), new_id);

    // Delete it; the same search no longer returns it.
    let deleted = request(addr, "POST", "/delete", &format!("{{\"id\":{new_id}}}"));
    assert_eq!(deleted.status, 200);
    assert_eq!(
        deleted.json().get("deleted").and_then(Json::as_u64),
        Some(1)
    );
    let gone = request(
        addr,
        "POST",
        "/search",
        &search_body(&[100.0, 100.0, 100.0, 100.0], 1, None),
    );
    assert_ne!(top_id(&gone), new_id);

    // Stats reflect the traffic.
    let stats = request(addr, "GET", "/stats", "").json();
    let metrics = stats.get("metrics").unwrap();
    assert_eq!(metrics.get("inserts").and_then(Json::as_u64), Some(1));
    assert_eq!(metrics.get("deletes").and_then(Json::as_u64), Some(1));
    assert!(metrics.get("requests").and_then(Json::as_u64).unwrap() >= 7);
    let coll = stats.get("collections").unwrap().get("test").unwrap();
    assert_eq!(coll.get("dim").and_then(Json::as_u64), Some(4));

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn concurrent_clients_get_consistent_answers() {
    let config = ServeConfig {
        workers: 8,
        batch: BatchConfig {
            linger: Duration::from_micros(500),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("concurrent", config);
    let addr = server.addr();

    // 8 connections, each running a burst of self-lookup searches plus
    // interleaved inserts/deletes of its own private outlier vector.
    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for round in 0..10 {
                    let row = (t * 7 + round) % 64;
                    client.send(
                        "POST",
                        "/search",
                        &search_body(&row_vector(row, 4), 3, Some("batched")),
                    );
                    let resp = client.read_response();
                    assert_eq!(resp.status, 200, "{:?}", resp.body);
                    assert_eq!(top_id(&resp), row as u64, "thread {t} round {round}");

                    let base = 1000.0 + t as f32 * 10.0;
                    client.send(
                        "POST",
                        "/insert",
                        &format!("{{\"vector\":[{base},{base},{base},{base}]}}"),
                    );
                    let inserted = client.read_response();
                    assert_eq!(inserted.status, 200, "{:?}", inserted.body);
                    let id = inserted
                        .json()
                        .get("ids")
                        .and_then(Json::as_array)
                        .and_then(|ids| ids.first().and_then(Json::as_u64))
                        .unwrap();
                    client.send("POST", "/delete", &format!("{{\"id\":{id}}}"));
                    let deleted = client.read_response();
                    assert_eq!(deleted.status, 200, "{:?}", deleted.body);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let metrics = server.metrics();
    assert!(
        metrics.batches.load(Ordering::Relaxed) > 0,
        "batching never engaged"
    );
    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn saturation_sheds_429_and_shutdown_drains() {
    // Tiny admission queue + long linger: concurrent searches pile up
    // behind a slow batch window, so some must be shed with 429.
    let config = ServeConfig {
        workers: 16,
        batch: BatchConfig {
            max_batch: 2,
            linger: Duration::from_millis(30),
            queue_depth: 2,
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("saturate", config);
    let addr = server.addr();

    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..12)
        .map(|t| {
            let ok = ok.clone();
            let shed = shed.clone();
            std::thread::spawn(move || {
                let resp = request(
                    addr,
                    "POST",
                    "/search",
                    &search_body(&row_vector(t % 64, 4), 2, Some("batched")),
                );
                match resp.status {
                    200 => {
                        assert_eq!(top_id(&resp), (t % 64) as u64);
                        ok.fetch_add(1, Ordering::Relaxed);
                    }
                    429 => {
                        shed.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("unexpected status {other}: {:?}", resp.body),
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    assert_eq!(ok + shed, 12, "every request got a response");
    assert!(ok > 0, "saturation must not starve everyone");
    assert!(shed > 0, "queue_depth=2 with 12 clients must shed");
    assert_eq!(server.metrics().shed_overload.load(Ordering::Relaxed), shed);

    // Graceful shutdown with requests still in flight: every client
    // blocked inside the server when the flag flips still gets a full
    // response (200 if admitted, 503 if it lost the race).
    let late: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                client.send(
                    "POST",
                    "/search",
                    &search_body(&row_vector(t, 4), 2, Some("batched")),
                );
                client.read_response_or_close()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(5));
    server.shutdown();
    for t in late {
        if let Some(resp) = t.join().unwrap() {
            assert!(
                matches!(resp.status, 200 | 429 | 503),
                "unexpected status {}: {:?}",
                resp.status,
                resp.body
            );
            if resp.status == 200 {
                // An admitted search was fully answered despite shutdown.
                assert!(!resp.json().get("neighbors").is_none());
            }
        }
        // None = the connection was still queued (never read) when the
        // server stopped; the client saw a clean close, not a hang.
    }
    std::fs::remove_dir_all(dir).ok();
}
