//! End-to-end request deadlines over real sockets: `timeout_ms` stamps a
//! deadline at admission, an expired search is answered `504` without the
//! scan running (asserted via the stage timers, which only completed
//! searches feed), the cap clamps client-supplied timeouts, and the 504s
//! are visible in `/metrics` and `/stats`.

mod common;

use common::{request, row_vector, search_body, start_server, top_id, Client};
use rabitq_serve::{BatchConfig, Json, ServeConfig};
use std::time::Duration;

/// A search body with an explicit `timeout_ms`.
fn timed_search_body(vector: &[f32], k: usize, mode: Option<&str>, timeout_ms: u64) -> String {
    let mut body = search_body(vector, k, mode);
    body.truncate(body.len() - 1); // strip the closing brace
    format!("{body},\"timeout_ms\":{timeout_ms}}}")
}

/// A deadline shorter than the batch linger expires while queued: the
/// entry is answered `504` and dropped before dispatch, so the scan never
/// ran — which the stage timers prove, since only completed searches
/// record stage samples.
#[test]
fn queued_expiry_returns_504_without_running_the_scan() {
    let config = ServeConfig {
        batch: BatchConfig {
            linger: Duration::from_millis(80),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("deadline-queue", config);
    let addr = server.addr();

    let resp = request(
        addr,
        "POST",
        "/search",
        &timed_search_body(&row_vector(3, 4), 3, Some("batched"), 5),
    );
    assert_eq!(resp.status, 504, "{}", resp.body);
    assert!(resp.body.contains("deadline exceeded"), "{}", resp.body);

    let m = server.metrics();
    use std::sync::atomic::Ordering;
    assert_eq!(m.deadline_exceeded.load(Ordering::Relaxed), 1);
    assert_eq!(m.expired_in_queue.load(Ordering::Relaxed), 1);
    assert_eq!(m.cancelled_mid_scan.load(Ordering::Relaxed), 0);
    // The scan never completed — no latency sample, no stage samples.
    assert_eq!(m.search_latency.count(), 0, "504 must not record latency");
    assert_eq!(
        m.stages.hist(rabitq_metrics::Stage::Scan).count(),
        0,
        "an expired search must not have run its scan"
    );
    assert!(
        m.cancelled_after.count() == 1,
        "the wasted-time histogram tracks the 504"
    );

    // A generous deadline on the same server gets a real answer.
    let resp = request(
        addr,
        "POST",
        "/search",
        &timed_search_body(&row_vector(3, 4), 3, Some("batched"), 30_000),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(top_id(&resp), 3);
    assert!(m.search_latency.count() >= 1);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `max_timeout_ms` clamps a client asking for an hour down to a bound
/// that expires inside the linger window — proving the cap is applied.
#[test]
fn client_timeout_is_clamped_to_the_configured_cap() {
    let config = ServeConfig {
        max_timeout_ms: 5,
        batch: BatchConfig {
            linger: Duration::from_millis(80),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("deadline-cap", config);

    let resp = request(
        server.addr(),
        "POST",
        "/search",
        &timed_search_body(&row_vector(0, 4), 2, Some("batched"), 3_600_000),
    );
    assert_eq!(
        resp.status, 504,
        "cap must clamp the timeout: {}",
        resp.body
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// `default_timeout_ms` applies when the request omits `timeout_ms`.
#[test]
fn server_default_timeout_applies_when_request_omits_it() {
    let config = ServeConfig {
        default_timeout_ms: 5,
        batch: BatchConfig {
            linger: Duration::from_millis(80),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("deadline-default", config);

    let resp = request(
        server.addr(),
        "POST",
        "/search",
        &search_body(&row_vector(0, 4), 2, Some("batched")),
    );
    assert_eq!(resp.status, 504, "default deadline: {}", resp.body);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_timeout_is_a_400_and_zero_disables_the_deadline() {
    let (server, dir) = start_server("deadline-validate", ServeConfig::default());
    let addr = server.addr();

    let resp = request(
        addr,
        "POST",
        "/search",
        "{\"vector\":[0,0,0,0],\"timeout_ms\":\"soon\"}",
    );
    assert_eq!(resp.status, 400, "{}", resp.body);

    // timeout_ms: 0 = no deadline, even with a tiny max.
    let resp = request(
        addr,
        "POST",
        "/search",
        &timed_search_body(&row_vector(1, 4), 2, None, 0),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Direct (unbatched) mode honours deadlines too, via the cancellable
/// snapshot path; with a generous deadline it still answers correctly.
#[test]
fn direct_mode_deadline_paths_answer_200_or_504() {
    let (server, dir) = start_server("deadline-direct", ServeConfig::default());
    let addr = server.addr();

    let resp = request(
        addr,
        "POST",
        "/search",
        &timed_search_body(&row_vector(5, 4), 3, Some("direct"), 30_000),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(top_id(&resp), 5);

    // Tight deadlines against the direct path: every answer is either a
    // completed 200 or a 504 that fed no stage timers. (Whether a given
    // request completes is timing-dependent; the invariant is not.)
    let mut fours = 0u64;
    let mut twos = 0u64;
    let mut client = Client::connect(addr);
    for i in 0..50 {
        client.send(
            "POST",
            "/search",
            &timed_search_body(&row_vector(i % 64, 4), 3, Some("direct"), 1),
        );
        match client.read_response().status {
            200 => twos += 1,
            504 => fours += 1,
            other => panic!("unexpected status {other}"),
        }
    }
    use std::sync::atomic::Ordering;
    let m = server.metrics();
    assert_eq!(m.deadline_exceeded.load(Ordering::Relaxed), fours);
    // Stage timers saw exactly the completed searches — the 504s (if
    // any) never finished a scan.
    assert_eq!(
        m.stages.hist(rabitq_metrics::Stage::Merge).count(),
        twos + 1, // +1 for the generous-deadline search above
        "only completed searches feed stage timers"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// One batch, mixed deadlines: the expired member gets its 504 while its
/// batchmates complete normally — cancellation is per-query.
#[test]
fn expired_member_does_not_disturb_its_batchmates() {
    let config = ServeConfig {
        workers: 8,
        batch: BatchConfig {
            linger: Duration::from_millis(60),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("deadline-batchmates", config);
    let addr = server.addr();

    // Four clients coalesce into one lingered batch; one carries a 5ms
    // deadline that dies during the 60ms linger.
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let body = if t == 0 {
                    timed_search_body(&row_vector(9, 4), 3, Some("batched"), 5)
                } else {
                    search_body(&row_vector(t * 3, 4), 3, Some("batched"))
                };
                let resp = request(addr, "POST", "/search", &body);
                (t, resp)
            })
        })
        .collect();
    for handle in threads {
        let (t, resp) = handle.join().unwrap();
        if t == 0 {
            assert_eq!(resp.status, 504, "client 0 expired: {}", resp.body);
        } else {
            assert_eq!(resp.status, 200, "client {t}: {}", resp.body);
            assert_eq!(top_id(&resp), (t * 3) as u64, "client {t}");
        }
    }

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The 504s and their stage breakdown are scrapeable.
#[test]
fn deadline_counters_surface_in_metrics_and_stats() {
    let config = ServeConfig {
        batch: BatchConfig {
            linger: Duration::from_millis(80),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("deadline-metrics", config);
    let addr = server.addr();

    for _ in 0..3 {
        let resp = request(
            addr,
            "POST",
            "/search",
            &timed_search_body(&row_vector(1, 4), 2, Some("batched"), 5),
        );
        assert_eq!(resp.status, 504);
    }

    let scrape = request(addr, "GET", "/metrics", "");
    assert_eq!(scrape.status, 200);
    rabitq_metrics::prometheus::validate(&scrape.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", scrape.body));
    for needle in [
        "rabitq_deadline_exceeded_total 3",
        "rabitq_deadline_stage_total{stage=\"queue\"} 3",
        "rabitq_deadline_stage_total{stage=\"scan\"} 0",
        "rabitq_cancelled_after_seconds_count 3",
    ] {
        assert!(scrape.body.contains(needle), "missing {needle:?}");
    }

    let stats = request(addr, "GET", "/stats", "").json();
    let metrics = stats.get("metrics").unwrap();
    assert_eq!(
        metrics.get("deadline_exceeded").and_then(Json::as_u64),
        Some(3)
    );
    assert_eq!(
        metrics.get("expired_in_queue").and_then(Json::as_u64),
        Some(3)
    );
    assert_eq!(
        metrics
            .get("cancelled_after_us")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(3)
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
