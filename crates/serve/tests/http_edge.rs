//! HTTP protocol edge cases over real sockets: oversized bodies,
//! truncated requests, unknown routes, and keep-alive pipelining.

mod common;

use common::*;
use rabitq_serve::{Json, ServeConfig};
use std::time::Duration;

#[test]
fn oversized_body_is_rejected_with_413() {
    let config = ServeConfig {
        max_body: 256,
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("oversized", config);

    let huge = format!("{{\"vector\":[{}]}}", "0.5,".repeat(300) + "0.5");
    assert!(huge.len() > 256);
    let resp = request(server.addr(), "POST", "/search", &huge);
    assert_eq!(resp.status, 413, "{:?}", resp.body);

    // The 413 closes that connection; a fresh one serves normally.
    let ok = request(server.addr(), "GET", "/healthz", "");
    assert_eq!(ok.status, 200);

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn truncated_request_times_out_with_408() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(10),
        partial_timeout_ticks: 3,
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("truncated", config);

    // Half a request head, then silence: the server answers 408 and
    // closes instead of pinning the worker.
    let mut client = Client::connect(server.addr());
    client.send_raw(b"POST /search HTTP/1.1\r\ncontent-le");
    match client.read_response_or_close() {
        Some(resp) => assert_eq!(resp.status, 408, "{:?}", resp.body),
        None => panic!("expected a 408, got a silent close"),
    }

    // A request promising more body than it sends also times out.
    let mut client = Client::connect(server.addr());
    client.send_raw(b"POST /search HTTP/1.1\r\ncontent-length: 500\r\n\r\n{\"vec");
    match client.read_response_or_close() {
        Some(resp) => assert_eq!(resp.status, 408, "{:?}", resp.body),
        None => panic!("expected a 408, got a silent close"),
    }

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn unknown_routes_and_methods() {
    let (server, dir) = start_server("routes", ServeConfig::default());
    let addr = server.addr();

    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(
        request(addr, "POST", "/collections/ghost/search", "{}").status,
        404
    );
    assert_eq!(
        request(addr, "POST", "/collections/test/purge", "{}").status,
        404
    );
    // Wrong method on a real route.
    assert_eq!(request(addr, "POST", "/healthz", "").status, 405);
    assert_eq!(request(addr, "GET", "/search", "").status, 405);
    // Malformed JSON body on a real route.
    let bad = request(addr, "POST", "/search", "{\"vector\": [0.1,");
    assert_eq!(bad.status, 400);
    // Wrong dimensionality.
    let short = request(addr, "POST", "/search", "{\"vector\": [0.1]}");
    assert_eq!(short.status, 400);
    assert!(short.body.contains("dimension"), "{:?}", short.body);

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn oversized_k_and_nprobe_are_rejected_not_allocated() {
    let config = ServeConfig {
        max_k: 100,
        max_nprobe: 64,
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("clamp", config);
    let addr = server.addr();

    // A hostile k (would size a ~petabyte TopK heap if it got through)
    // is a 400, not an allocation.
    let vec_json = search_body(&row_vector(0, 4), 1, None);
    let huge_k = vec_json.replace("\"k\":1", "\"k\":1000000000000000");
    let resp = request(addr, "POST", "/search", &huge_k);
    assert_eq!(resp.status, 400, "{:?}", resp.body);
    assert!(resp.body.contains("1..=100"), "{:?}", resp.body);

    let huge_nprobe = vec_json.replace("\"k\":1", "\"k\":1,\"nprobe\":999999");
    let resp = request(addr, "POST", "/search", &huge_nprobe);
    assert_eq!(resp.status, 400, "{:?}", resp.body);

    // At the bound is fine.
    let at_max = vec_json.replace("\"k\":1", "\"k\":100,\"nprobe\":64");
    let resp = request(addr, "POST", "/search", &at_max);
    assert_eq!(resp.status, 200, "{:?}", resp.body);

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn keep_alive_pipelining_answers_in_order() {
    let (server, dir) = start_server("pipeline", ServeConfig::default());

    // Three requests written back-to-back before reading anything; the
    // responses come back complete and in order on the same connection.
    let mut client = Client::connect(server.addr());
    let search = search_body(&row_vector(3, 4), 1, Some("direct"));
    let batch: String = [
        "GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n".to_string(),
        format!(
            "POST /search HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{search}",
            search.len()
        ),
        "GET /stats HTTP/1.1\r\nhost: t\r\n\r\n".to_string(),
    ]
    .concat();
    client.send_raw(batch.as_bytes());

    let health = client.read_response();
    assert_eq!(health.status, 200);
    assert_eq!(
        health.json().get("status").and_then(Json::as_str),
        Some("ok")
    );

    let found = client.read_response();
    assert_eq!(found.status, 200);
    assert_eq!(top_id(&found), 3);

    let stats = client.read_response();
    assert_eq!(stats.status, 200);
    assert!(stats.json().get("metrics").is_some());

    // The connection is still usable afterwards.
    client.send("GET", "/healthz", "");
    assert_eq!(client.read_response().status, 200);

    server.shutdown();
    std::fs::remove_dir_all(dir).ok();
}
