//! Socket-level tests of the observability surface: `/metrics` scraped
//! under live traffic and validated against the exposition-format
//! checker, `?debug=timings` breakdowns, the slow-query log, the
//! enriched `/healthz`, and store metrics/events in `/stats`.

mod common;

use common::{request, row_vector, search_body, start_server, Client};
use rabitq_serve::{Json, ServeConfig};

#[test]
fn metrics_scrape_under_live_traffic_is_valid_exposition_text() {
    let mut config = ServeConfig::default();
    config.workers = 4;
    let (server, dir) = start_server("metrics", config);
    let addr = server.addr();

    // Live traffic on several connections: batched + direct searches,
    // inserts, deletes, and a client error.
    let writers: Vec<std::thread::JoinHandle<()>> = (0..3)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for i in 0..20 {
                    let mode = if (t + i) % 2 == 0 {
                        "batched"
                    } else {
                        "direct"
                    };
                    client.send(
                        "POST",
                        "/search",
                        &search_body(&row_vector(i, 4), 3, Some(mode)),
                    );
                    assert_eq!(client.read_response().status, 200);
                }
            })
        })
        .collect();
    request(addr, "POST", "/insert", "{\"vector\":[0.5,0.5,0.5,0.5]}");
    request(addr, "POST", "/delete", "{\"id\":0}");
    request(addr, "POST", "/search", "{}"); // 400: missing vector

    // Scrape mid-traffic: the text must already be valid.
    let mid = request(addr, "GET", "/metrics", "");
    assert_eq!(mid.status, 200);
    rabitq_metrics::prometheus::validate(&mid.body)
        .unwrap_or_else(|e| panic!("mid-traffic scrape invalid: {e}\n{}", mid.body));

    for w in writers {
        w.join().unwrap();
    }

    let scrape = request(addr, "GET", "/metrics", "");
    assert_eq!(scrape.status, 200);
    let series = rabitq_metrics::prometheus::validate(&scrape.body)
        .unwrap_or_else(|e| panic!("final scrape invalid: {e}\n{}", scrape.body));
    assert!(series > 40, "expected a rich scrape, got {series} series");

    // Every advertised family is present: server edge, batcher, stage
    // timers, per-collection store, info gauges.
    for needle in [
        "rabitq_requests_total",
        "rabitq_responses_total{class=\"2xx\"}",
        "rabitq_responses_total{class=\"4xx\"}",
        "rabitq_batches_total",
        "rabitq_search_latency_seconds_bucket",
        "rabitq_search_stage_seconds_bucket{stage=\"scan\"",
        "rabitq_search_stage_seconds_count{stage=\"rerank\"",
        "rabitq_store_wal_appends_total{collection=\"test\"}",
        "rabitq_store_seals_total{collection=\"test\"}",
        "rabitq_collection_live_vectors{collection=\"test\"}",
        "rabitq_events_recorded_total{collection=\"test\"}",
        "rabitq_build_info{version=\"",
        "rabitq_kernel_info{",
    ] {
        assert!(scrape.body.contains(needle), "missing {needle:?}");
    }
    // 60 searches were answered; each records one sample per stage.
    assert!(
        scrape
            .body
            .contains("rabitq_search_latency_seconds_count 6"),
        "latency count missing:\n{}",
        scrape.body
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn debug_timings_flag_adds_a_stage_breakdown() {
    let (server, dir) = start_server("timings", ServeConfig::default());
    let addr = server.addr();

    let plain = request(
        addr,
        "POST",
        "/search",
        &search_body(&row_vector(1, 4), 3, None),
    );
    assert_eq!(plain.status, 200);
    assert!(plain.json().get("timings_us").is_none());

    let debugged = request(
        addr,
        "POST",
        "/search?debug=timings",
        &search_body(&row_vector(1, 4), 3, None),
    );
    assert_eq!(debugged.status, 200);
    let body = debugged.json();
    let timings = body.get("timings_us").expect("timings_us present");
    for stage in ["rotate", "lut_build", "scan", "rerank", "merge"] {
        assert!(timings.get(stage).is_some(), "missing stage {stage}");
    }
    let stage_total = timings
        .get("stage_total")
        .and_then(Json::as_u64)
        .expect("stage_total");
    let elapsed = timings
        .get("elapsed")
        .and_then(Json::as_u64)
        .expect("elapsed");
    // Stages are measured inside the edge window (single-threaded path),
    // so their sum cannot exceed what the edge observed.
    assert!(
        stage_total <= elapsed,
        "stage_total {stage_total}us > elapsed {elapsed}us"
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_query_log_and_stats_surface_store_metrics_and_events() {
    let mut config = ServeConfig::default();
    config.slow_query_ms = 1; // virtually every query is "slow"
    config.events_capacity = 8;
    let (server, dir) = start_server("slowlog", config);
    let addr = server.addr();

    for i in 0..16 {
        let resp = request(
            addr,
            "POST",
            "/search",
            &search_body(&row_vector(i, 4), 5, Some("direct")),
        );
        assert_eq!(resp.status, 200);
    }

    let stats = request(addr, "GET", "/stats", "").json();
    let coll = stats
        .get("collections")
        .and_then(|c| c.get("test"))
        .unwrap();
    let store = coll.get("store").expect("store metrics in /stats");
    // The seeded collection WAL'd 64 inserts and sealed at least once.
    assert_eq!(store.get("wal_appends").and_then(Json::as_u64), Some(64));
    assert!(store.get("seals").and_then(Json::as_u64).unwrap() >= 1);
    let events = coll.get("events").and_then(Json::as_array).unwrap();
    assert!(!events.is_empty());
    assert!(
        events.len() <= 8,
        "journal capacity must bound /stats events, got {}",
        events.len()
    );
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    assert!(
        kinds.contains(&"slow_query"),
        "expected slow_query events, got {kinds:?}"
    );
    // Sixteen slow queries through an 8-slot ring: eviction happened and
    // sequence numbers kept climbing.
    let first_seq = events[0].get("seq").and_then(Json::as_u64).unwrap();
    assert!(first_seq > 0, "oldest retained event must not be seq 0");

    let stages = stats
        .get("metrics")
        .and_then(|m| m.get("search_stages_us"))
        .expect("aggregated stage timers in /stats");
    assert_eq!(
        stages
            .get("scan")
            .and_then(|s| s.get("count"))
            .and_then(Json::as_u64),
        Some(16)
    );

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn healthz_reports_uptime_version_and_kernel() {
    let (server, dir) = start_server("healthz", ServeConfig::default());
    let body = request(server.addr(), "GET", "/healthz", "").json();
    assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
    assert!(body.get("uptime_ms").and_then(Json::as_u64).is_some());
    assert_eq!(
        body.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    let kernel = body.get("kernel").and_then(Json::as_str).unwrap();
    assert!(
        ["scalar", "avx2", "avx512", "neon"].contains(&kernel),
        "unexpected kernel {kernel:?}"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
