//! Degraded-mode serving: a collection that froze read-only (write-path
//! storage fault) or opened degraded (quarantined segment) must keep
//! answering searches, reject mutations with `503` (not `500`), and
//! surface its state through `/healthz` and `/stats`.

mod common;

use common::{row_vector, search_body, seeded_collection, top_id, Client};
use rabitq_serve::{Json, ServeConfig, Server};
use rabitq_store::Collection;

#[test]
fn read_only_collection_serves_searches_and_rejects_writes_with_503() {
    let (dir, collection) = seeded_collection("readonly", 4, 64);
    collection.set_read_only("simulated storage fault");
    let server = Server::start(ServeConfig::default(), vec![("test".into(), collection)]).unwrap();
    let mut client = Client::connect(server.addr());

    // Liveness: still up, but distinctly not healthy.
    client.send("GET", "/healthz", "");
    let resp = client.read_response();
    assert_eq!(resp.status, 200, "read-only still serves: {}", resp.body);
    let health = resp.json();
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    assert_eq!(health.get("read_only").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("degraded").and_then(Json::as_bool), Some(false));

    // Searches answer normally (row 3 is its own nearest neighbour).
    client.send("POST", "/search", &search_body(&row_vector(3, 4), 3, None));
    let resp = client.read_response();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(top_id(&resp), 3);

    // Mutations are shed as retryable, with the reason in the body.
    client.send("POST", "/insert", "{\"vector\":[1,2,3,4]}");
    let resp = client.read_response();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("read-only"), "{}", resp.body);
    client.send("POST", "/delete", "{\"id\":1}");
    let resp = client.read_response();
    assert_eq!(resp.status, 503, "{}", resp.body);

    // And the shed shows up in /stats, per collection and as a counter.
    client.send("GET", "/stats", "");
    let stats = client.read_response().json();
    let metrics = stats.get("metrics").unwrap();
    assert_eq!(
        metrics.get("rejected_read_only").and_then(Json::as_u64),
        Some(2)
    );
    let coll = stats.get("collections").unwrap().get("test").unwrap();
    assert_eq!(coll.get("read_only").and_then(Json::as_bool), Some(true));
    assert_eq!(coll.get("degraded").and_then(Json::as_bool), Some(false));

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quarantined_segment_surfaces_as_degraded_but_writable() {
    let (dir, collection) = seeded_collection("quarantine", 4, 64);
    let n_rows = 64;
    assert!(collection.n_segments() >= 1);
    drop(collection);

    // Corrupt the first sealed segment on disk, then reopen: the store
    // quarantines it and comes up degraded.
    let victim = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("seg-") && n.ends_with(".rbq"))
        })
        .expect("a sealed segment exists");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, &bytes).unwrap();

    let collection = Collection::open_existing(&dir).unwrap();
    let health = collection.health();
    assert!(health.degraded && !health.read_only, "{health:?}");
    assert!(collection.len() < n_rows, "quarantine dropped rows");

    let server = Server::start(ServeConfig::default(), vec![("test".into(), collection)]).unwrap();
    let mut client = Client::connect(server.addr());

    client.send("GET", "/healthz", "");
    let health = client.read_response().json();
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    assert_eq!(health.get("degraded").and_then(Json::as_bool), Some(true));
    assert_eq!(health.get("read_only").and_then(Json::as_bool), Some(false));

    client.send("GET", "/stats", "");
    let stats = client.read_response().json();
    let coll = stats.get("collections").unwrap().get("test").unwrap();
    assert_eq!(coll.get("degraded").and_then(Json::as_bool), Some(true));
    assert_eq!(
        coll.get("quarantined_segments").and_then(Json::as_u64),
        Some(1)
    );

    // The survivors keep serving…
    client.send("POST", "/search", &search_body(&row_vector(60, 4), 3, None));
    let resp = client.read_response();
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert!(!resp
        .json()
        .get("neighbors")
        .and_then(Json::as_array)
        .unwrap()
        .is_empty());

    // …and, unlike read-only, a degraded collection still accepts writes.
    client.send("POST", "/insert", "{\"vector\":[9,9,9,9]}");
    let resp = client.read_response();
    assert_eq!(resp.status, 200, "{}", resp.body);

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
