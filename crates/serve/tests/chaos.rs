//! Socket-level chaos: clients that reset mid-body, slow-loris senders,
//! and impatient clients that disconnect without reading — plus the
//! transient-fault → freeze → auto-thaw cycle driven over HTTP. The
//! invariant under every abuse: the server never hangs, never leaks a
//! worker, and every request it *admits* is answered (observable via the
//! response counters even when the client has already left).

mod common;

use common::{request, row_vector, search_body, start_server, top_id, Client};
use rabitq_serve::{BatchConfig, Json, ServeConfig, Server};
use rabitq_store::{disk_io, Collection, CollectionConfig, FaultIo, FaultKind, FaultScript};
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A search body with an explicit `timeout_ms`.
fn timed_search_body(vector: &[f32], k: usize, mode: Option<&str>, timeout_ms: u64) -> String {
    let mut body = search_body(vector, k, mode);
    body.truncate(body.len() - 1);
    format!("{body},\"timeout_ms\":{timeout_ms}}}")
}

/// Spins until `cond` holds or the bounded wall-clock budget runs out.
fn wait_for(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Clients that promise a body and vanish mid-way: the request never
/// parses, nothing is admitted, and the worker moves on cleanly.
#[test]
fn reset_mid_body_leaves_the_server_healthy() {
    let (server, dir) = start_server("chaos-reset", ServeConfig::default());
    let addr = server.addr();

    for _ in 0..6 {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"POST /search HTTP/1.1\r\ncontent-length: 512\r\n\r\n{\"vec")
            .unwrap();
        stream.flush().unwrap();
        drop(stream); // half a body, then gone
    }

    // The torn requests were never parsed, so they were never admitted —
    // and the server still answers real traffic immediately.
    let resp = request(
        addr,
        "POST",
        "/search",
        &search_body(&row_vector(2, 4), 3, None),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(top_id(&resp), 2);

    let m = server.metrics();
    assert_eq!(
        m.server_errors.load(Ordering::Relaxed),
        0,
        "torn uploads are not server errors"
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// A slow-loris sender drip-feeding a request head is cut off with `408`
/// once it exhausts the partial-timeout budget — it cannot pin a worker.
#[test]
fn slow_loris_partial_head_is_answered_408() {
    let config = ServeConfig {
        read_timeout: Duration::from_millis(10),
        partial_timeout_ticks: 3,
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("chaos-loris", config);

    let mut client = Client::connect(server.addr());
    client.send_raw(b"POST /search HTTP/1.1\r\ncontent-le");
    // Stall. After ~3 read-timeout ticks the server gives up on us.
    let resp = client.read_response();
    assert_eq!(resp.status, 408, "{}", resp.body);

    // And the worker it occupied is free again for honest clients.
    let resp = request(
        server.addr(),
        "POST",
        "/search",
        &search_body(&row_vector(1, 4), 2, None),
    );
    assert_eq!(resp.status, 200);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Impatient clients: fully-admitted searches whose clients hang up
/// without reading. Every one of them is still executed (or expired) and
/// *answered* — the response counters account for all of them, and the
/// abandoned work never wedges the batcher or shutdown.
#[test]
fn abandoned_requests_are_all_answered_anyway() {
    let config = ServeConfig {
        workers: 8,
        batch: BatchConfig {
            linger: Duration::from_millis(30),
            ..BatchConfig::default()
        },
        ..ServeConfig::default()
    };
    let (server, dir) = start_server("chaos-abandon", config);
    let addr = server.addr();
    let m = server.metrics();
    let base_requests = m.requests.load(Ordering::Relaxed);

    // 4 patient-deadline clients and 4 with deadlines shorter than the
    // linger window; all 8 disconnect without reading their response.
    for t in 0..8 {
        let mut client = Client::connect(addr);
        let body = if t % 2 == 0 {
            timed_search_body(&row_vector(t, 4), 3, Some("batched"), 30_000)
        } else {
            timed_search_body(&row_vector(t, 4), 3, Some("batched"), 5)
        };
        client.send("POST", "/search", &body);
        drop(client); // leave before the answer
    }

    // Every admitted request is answered even though nobody is listening:
    // 4 completed (2xx) + 4 deadline-expired (5xx bucket, 504).
    wait_for("all abandoned requests to be answered", || {
        m.requests.load(Ordering::Relaxed) - base_requests >= 8
            && m.ok_responses.load(Ordering::Relaxed) + m.server_errors.load(Ordering::Relaxed) >= 8
    });
    assert_eq!(m.ok_responses.load(Ordering::Relaxed), 4);
    assert_eq!(m.deadline_exceeded.load(Ordering::Relaxed), 4);
    assert_eq!(m.expired_in_queue.load(Ordering::Relaxed), 4);

    // The server is unwedged: live traffic flows and shutdown drains.
    let resp = request(
        addr,
        "POST",
        "/search",
        &search_body(&row_vector(7, 4), 3, None),
    );
    assert_eq!(resp.status, 200, "{}", resp.body);
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// The self-healing cycle over HTTP: a scripted transient fault freezes
/// the collection mid-batch (503 + `inserted_ids` resume contract), the
/// script heals, the next mutation thaws it, and the whole story —
/// retries, the flip, the thaw — is scrapeable from `/metrics`.
#[test]
fn transient_fault_freeze_and_thaw_over_http() {
    let dir = std::env::temp_dir().join(format!("chaos-thaw-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut config = CollectionConfig::new(4);
    config.memtable_capacity = 100;
    config.io_retry_attempts = 0; // freeze on the first write fault
    config.thaw_cooldown = Duration::ZERO; // probe on the next mutation

    // Count the ops a fresh open performs so the script can target the
    // third insert's WAL append precisely.
    let probe_dir = std::env::temp_dir().join(format!("chaos-thaw-ops-{}", std::process::id()));
    std::fs::remove_dir_all(&probe_dir).ok();
    let counting = Arc::new(FaultIo::counting(disk_io()));
    drop(Collection::open_with_io(&probe_dir, config.clone(), counting.clone()).unwrap());
    let at = counting.ops();
    std::fs::remove_dir_all(&probe_dir).ok();

    let io = Arc::new(FaultIo::scripted(
        disk_io(),
        FaultScript::transient(at + 2, 1, FaultKind::Eio),
    ));
    let collection = Collection::open_with_io(&dir, config, io).unwrap();
    let server = Server::start(ServeConfig::default(), vec![("test".into(), collection)]).unwrap();
    let addr = server.addr();

    // A 5-row batch: rows 0 and 1 commit, row 2 hits the fault → 503
    // with the committed prefix in the body.
    let batch_body = "{\"vectors\":[[0,0,0,1],[0,0,0,2],[0,0,0,3],[0,0,0,4],[0,0,0,5]]}";
    let resp = request(addr, "POST", "/insert", batch_body);
    assert_eq!(
        resp.status, 503,
        "retryable freeze, not a 500: {}",
        resp.body
    );
    let inserted: Vec<u64> = resp
        .json()
        .get("inserted_ids")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    assert_eq!(inserted, vec![0, 1], "committed prefix reported");

    let health = request(addr, "GET", "/healthz", "").json();
    assert_eq!(
        health.get("status").and_then(Json::as_str),
        Some("degraded")
    );
    assert_eq!(health.get("read_only").and_then(Json::as_bool), Some(true));

    // Resume from the failure point: the script healed, so this mutation
    // runs the thaw probe, recovers the collection, and commits the rest.
    let resume_body = "{\"vectors\":[[0,0,0,3],[0,0,0,4],[0,0,0,5]]}";
    let resp = request(addr, "POST", "/insert", resume_body);
    assert_eq!(
        resp.status, 200,
        "thaw must let the resume commit: {}",
        resp.body
    );
    let resumed: Vec<u64> = resp
        .json()
        .get("ids")
        .and_then(Json::as_array)
        .unwrap()
        .iter()
        .filter_map(Json::as_u64)
        .collect();
    assert_eq!(
        resumed,
        vec![2, 3, 4],
        "dense ids: no double-commit, no gap"
    );

    let health = request(addr, "GET", "/healthz", "").json();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    // The cycle is scrapeable: the flip and the thaw both happened.
    let scrape = request(addr, "GET", "/metrics", "");
    rabitq_metrics::prometheus::validate(&scrape.body)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{}", scrape.body));
    for needle in [
        "rabitq_store_read_only_flips_total{collection=\"test\"} 1",
        "rabitq_store_thaws_total{collection=\"test\"} 1",
    ] {
        assert!(scrape.body.contains(needle), "missing {needle:?}");
    }
    let stats = request(addr, "GET", "/stats", "").json();
    let store = stats
        .get("collections")
        .and_then(|c| c.get("test"))
        .and_then(|c| c.get("store"))
        .unwrap();
    assert_eq!(store.get("read_only_flips").and_then(Json::as_u64), Some(1));
    assert_eq!(store.get("thaws").and_then(Json::as_u64), Some(1));

    // The journal tells the story in order: read_only, then recovered.
    let events = stats
        .get("collections")
        .and_then(|c| c.get("test"))
        .and_then(|c| c.get("events"))
        .and_then(Json::as_array)
        .unwrap();
    let kinds: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("kind").and_then(Json::as_str))
        .collect();
    let ro = kinds.iter().position(|&k| k == "read_only").unwrap();
    let rec = kinds.iter().position(|&k| k == "recovered").unwrap();
    assert!(ro < rec, "freeze precedes recovery: {kinds:?}");

    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
