//! Shared plumbing for the server integration tests: a seeded on-disk
//! collection and a deliberately tiny raw-socket HTTP client (the point
//! is to exercise the server's real parser, not to reuse its code).

// Each integration target compiles its own copy of this module and none
// uses every helper.
#![allow(dead_code)]

use rabitq_serve::{Json, ServeConfig, Server};
use rabitq_store::{Collection, CollectionConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Duration;

/// Builds a collection of `rows` vectors where row `i` is
/// `[i*dim, i*dim+1, …] * 0.01` — so row `i` is its own nearest
/// neighbour — and spans both sealed segments and the memtable.
pub fn seeded_collection(tag: &str, dim: usize, rows: usize) -> (PathBuf, Collection) {
    let dir = std::env::temp_dir().join(format!("serve-it-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut config = CollectionConfig::new(dim);
    config.memtable_capacity = rows.max(2) / 2;
    let mut collection = Collection::open(&dir, config).unwrap();
    for i in 0..rows {
        collection.insert(&row_vector(i, dim)).unwrap();
    }
    (dir, collection)
}

/// The vector stored at row `i` (see [`seeded_collection`]).
pub fn row_vector(i: usize, dim: usize) -> Vec<f32> {
    (0..dim).map(|d| (i * dim + d) as f32 * 0.01).collect()
}

/// Starts a server over one freshly seeded collection named `"test"`.
pub fn start_server(tag: &str, config: ServeConfig) -> (Server, PathBuf) {
    let (dir, collection) = seeded_collection(tag, 4, 64);
    let server = Server::start(config, vec![("test".into(), collection)]).unwrap();
    (server, dir)
}

/// One parsed HTTP response.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub body: String,
}

impl HttpResponse {
    pub fn json(&self) -> Json {
        Json::parse(&self.body).unwrap_or_else(|e| panic!("bad JSON {:?}: {e}", self.body))
    }
}

/// A keep-alive client connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    pub fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        Client {
            stream,
            buf: Vec::new(),
        }
    }

    /// Sends raw bytes without waiting for anything.
    pub fn send_raw(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).unwrap();
        self.stream.flush().unwrap();
    }

    /// Sends one request (adds Content-Length; keep-alive by default).
    pub fn send(&mut self, method: &str, path: &str, body: &str) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.send_raw(req.as_bytes());
    }

    /// Reads one full response off the connection.
    pub fn read_response(&mut self) -> HttpResponse {
        loop {
            if let Some(resp) = self.try_parse() {
                return resp;
            }
            let mut chunk = [0u8; 4096];
            let n = self.stream.read(&mut chunk).unwrap();
            assert!(n > 0, "connection closed mid-response: {:?}", self.buf);
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Reads until the server closes the connection; `Some` if a full
    /// response arrived first, `None` on a silent close.
    pub fn read_response_or_close(&mut self) -> Option<HttpResponse> {
        loop {
            if let Some(resp) = self.try_parse() {
                return Some(resp);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) | Err(_) => return None,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
            }
        }
    }

    fn try_parse(&mut self) -> Option<HttpResponse> {
        let head_end = self.buf.windows(4).position(|w| w == b"\r\n\r\n")?;
        let head = std::str::from_utf8(&self.buf[..head_end])
            .unwrap()
            .to_string();
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .expect("status line")
            .parse()
            .unwrap();
        let content_length: usize = head
            .lines()
            .find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse().unwrap())
            })
            .unwrap_or(0);
        let total = head_end + 4 + content_length;
        if self.buf.len() < total {
            return None;
        }
        let body = String::from_utf8(self.buf[head_end + 4..total].to_vec()).unwrap();
        self.buf.drain(..total);
        Some(HttpResponse { status, body })
    }
}

/// One-shot request on a fresh connection.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> HttpResponse {
    let mut client = Client::connect(addr);
    client.send(method, path, body);
    client.read_response()
}

/// Serializes a query vector as the search request body.
pub fn search_body(vector: &[f32], k: usize, mode: Option<&str>) -> String {
    let vec_json: Vec<String> = vector.iter().map(|v| format!("{v}")).collect();
    let mode_part = mode
        .map(|m| format!(",\"mode\":\"{m}\""))
        .unwrap_or_default();
    format!(
        "{{\"vector\":[{}],\"k\":{k}{mode_part}}}",
        vec_json.join(",")
    )
}

/// Top neighbour id of a search response.
pub fn top_id(resp: &HttpResponse) -> u64 {
    resp.json()
        .get("neighbors")
        .and_then(Json::as_array)
        .and_then(|n| n.first())
        .and_then(|n| n.get("id"))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no neighbors in {:?}", resp.body))
}
