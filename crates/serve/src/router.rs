//! Route dispatch and the JSON API handlers.
//!
//! | Route | Method | Body | Response |
//! |---|---|---|---|
//! | `/healthz` | GET | — | `{"status":"ok"|"degraded"|"draining","read_only":…,"degraded":…,"draining":…,"uptime_ms":…,"version":…,"kernel":…}` |
//! | `/stats` | GET | — | metrics + per-collection sizes, health, store counters, event journal |
//! | `/metrics` | GET | — | Prometheus text exposition (`text/plain; version=0.0.4`) |
//! | `/collections/:name/search` | POST | `{"vector":[…], "k"?, "nprobe"?, "mode"?, "timeout_ms"?}` | `{"neighbors":[{"id","distance"}…],…}`; `?debug=timings` adds `timings_us` |
//! | `/collections/:name/insert` | POST | `{"vector":[…]}` or `{"vectors":[[…]…]}` | `{"ids":[…]}` |
//! | `/collections/:name/delete` | POST | `{"id":n}` or `{"ids":[…]}` | `{"deleted":n}` |
//! | `/search`, `/insert`, `/delete` | POST | as above | against the default collection |
//!
//! `"mode"` on a search selects `"batched"` (through the admission queue
//! and the coalescing batcher) or `"direct"` (execute on the caller's
//! thread) — defaulting to the server's `batching` config. Direct mode is
//! the per-request baseline the load harness compares batching against.
//!
//! `"timeout_ms"` sets the search's end-to-end deadline, stamped at
//! admission (default `ServeConfig::default_timeout_ms`, clamped to
//! `max_timeout_ms`; `0` disables). An expired search is answered `504`:
//! dropped from the queue before dispatch when possible, otherwise
//! cooperatively cancelled mid-scan at the next checkpoint — without
//! perturbing the batchmates it was coalesced with.
//!
//! A collection that opened **degraded** (quarantined segments) or froze
//! **read-only** (write-path storage fault) keeps serving searches;
//! `/healthz` stays `200` but reports `"degraded"` so orchestrators can
//! distinguish "up but wounded" from healthy, and mutations against a
//! read-only collection are answered `503` (retryable elsewhere) rather
//! than `500`.

use crate::batcher::SubmitError;
use crate::http::{Request, Response};
use crate::json::Json;
use crate::json_obj;
use crate::server::{ServedCollection, ServerState};
use rabitq_core::hw;
use rabitq_ivf::SearchResult;
use rabitq_metrics::timer::time_once;
use rabitq_metrics::{EventJournal, PromEncoder, Stage, StageNanos};
use rabitq_store::{CancelToken, ParallelOptions, SearchOutcome, StoreMetrics};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Dispatches one request.
pub(crate) fn handle(state: &ServerState, req: &Request) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match segments.as_slice() {
        ["healthz"] => method(req, "GET", |_| healthz(state)),
        ["stats"] => method(req, "GET", |_| stats(state)),
        ["metrics"] => method(req, "GET", |_| metrics_text(state)),
        ["search"] => method(req, "POST", |r| search(state, default(state), r)),
        ["insert"] => method(req, "POST", |r| insert(state, default(state), r)),
        ["delete"] => method(req, "POST", |r| delete(state, default(state), r)),
        ["collections", name, action] => {
            let Some(served) = state.collections.get(*name) else {
                return Response::error(404, &format!("unknown collection {name:?}"));
            };
            match *action {
                "search" => method(req, "POST", |r| search(state, served, r)),
                "insert" => method(req, "POST", |r| insert(state, served, r)),
                "delete" => method(req, "POST", |r| delete(state, served, r)),
                _ => Response::error(404, &format!("unknown action {action:?}")),
            }
        }
        _ => Response::error(404, &format!("no route for {:?}", req.path)),
    }
}

fn default(state: &ServerState) -> &ServedCollection {
    &state.collections[&state.default_name]
}

fn method(req: &Request, want: &str, f: impl FnOnce(&Request) -> Response) -> Response {
    if req.method == want {
        f(req)
    } else {
        Response::error(405, &format!("use {want} for this route"))
    }
}

/// Liveness with nuance: the server keeps answering `200` while any
/// collection is degraded or read-only — it *is* serving — but the body
/// says `"degraded"` so a probe can tell wounded from healthy, and
/// `"draining"` during graceful shutdown so load balancers stop routing
/// new traffic while in-flight requests finish.
fn healthz(state: &ServerState) -> Response {
    let mut degraded = false;
    let mut read_only = false;
    for served in state.collections.values() {
        let health = served.reader.health();
        degraded |= health.degraded;
        read_only |= health.read_only;
    }
    let draining = state.shutdown.load(Ordering::Relaxed);
    let status = if draining {
        "draining"
    } else if degraded || read_only {
        "degraded"
    } else {
        "ok"
    };
    let body = json_obj! {
        "status" => status,
        "degraded" => degraded,
        "read_only" => read_only,
        "draining" => draining,
        "uptime_ms" => state.started.elapsed().as_millis() as u64,
        "version" => env!("CARGO_PKG_VERSION"),
        "kernel" => hw::active_kernel()
    };
    Response::json(200, body.encode())
}

fn stats(state: &ServerState) -> Response {
    let collections = Json::Obj(
        state
            .collections
            .iter()
            .map(|(name, served)| {
                let snapshot = served.reader.snapshot();
                let health = served.reader.health();
                let store = served.reader.metrics();
                (
                    name.clone(),
                    json_obj! {
                        "dim" => snapshot.dim(),
                        "live_vectors" => snapshot.len(),
                        "segments" => snapshot.n_segments(),
                        "memtable_rows" => snapshot.memtable_len(),
                        "queued_searches" => served.batcher.queue_len(),
                        "degraded" => health.degraded,
                        "read_only" => health.read_only,
                        "quarantined_segments" => health.quarantined_segments,
                        "store" => store_json(store),
                        "events" => events_json(&store.journal)
                    },
                )
            })
            .collect(),
    );
    let body = json_obj! {
        "uptime_ms" => state.started.elapsed().as_millis() as u64,
        "batching_default" => state.config.batching,
        "max_batch" => state.config.batch.max_batch,
        "queue_depth" => state.config.batch.queue_depth,
        "metrics" => state.metrics.to_json(),
        "collections" => collections
    };
    Response::json(200, body.encode())
}

/// `/metrics`: the whole observability surface — server, batcher,
/// per-collection store, and search-stage metrics — in Prometheus text
/// exposition format (hand-rolled encoder, no dependency).
fn metrics_text(state: &ServerState) -> Response {
    let m = &state.metrics;
    let mut enc = PromEncoder::new();
    enc.gauge(
        "rabitq_uptime_seconds",
        "Seconds since the server started.",
        &[],
        state.started.elapsed().as_secs_f64(),
    );
    enc.counter(
        "rabitq_requests_total",
        "Requests fully parsed off a connection.",
        &[],
        m.requests.load(Ordering::Relaxed),
    );
    for (class, counter) in [
        ("2xx", &m.ok_responses),
        ("4xx", &m.client_errors),
        ("5xx", &m.server_errors),
    ] {
        enc.counter(
            "rabitq_responses_total",
            "Responses by status class.",
            &[("class", class)],
            counter.load(Ordering::Relaxed),
        );
    }
    for (reason, counter) in [
        ("overload", &m.shed_overload),
        ("unavailable", &m.shed_unavailable),
    ] {
        enc.counter(
            "rabitq_shed_total",
            "Requests shed at the admission edge.",
            &[("reason", reason)],
            counter.load(Ordering::Relaxed),
        );
    }
    enc.counter(
        "rabitq_rejected_read_only_total",
        "Mutations rejected because the collection is read-only.",
        &[],
        m.rejected_read_only.load(Ordering::Relaxed),
    );
    enc.counter(
        "rabitq_deadline_exceeded_total",
        "Searches answered 504 because their deadline passed.",
        &[],
        m.deadline_exceeded.load(Ordering::Relaxed),
    );
    for (stage, counter) in [
        ("queue", &m.expired_in_queue),
        ("scan", &m.cancelled_mid_scan),
    ] {
        enc.counter(
            "rabitq_deadline_stage_total",
            "Where deadline-expired searches were cancelled: dropped from \
             the queue before dispatch, or cooperatively mid-scan.",
            &[("stage", stage)],
            counter.load(Ordering::Relaxed),
        );
    }
    enc.histogram_us(
        "rabitq_cancelled_after_seconds",
        "Time a deadline-exceeded search had consumed when its cancellation was observed.",
        &[],
        &m.cancelled_after,
    );
    enc.counter(
        "rabitq_inserts_total",
        "Vectors inserted.",
        &[],
        m.inserts.load(Ordering::Relaxed),
    );
    enc.counter(
        "rabitq_deletes_total",
        "Tombstones applied.",
        &[],
        m.deletes.load(Ordering::Relaxed),
    );
    enc.counter(
        "rabitq_batches_total",
        "Executed search batches.",
        &[],
        m.batches.load(Ordering::Relaxed),
    );
    enc.gauge(
        "rabitq_batch_size_mean",
        "Mean executed batch size.",
        &[],
        m.mean_batch_size(),
    );
    enc.histogram_us(
        "rabitq_search_latency_seconds",
        "End-to-end search latency (admission to response ready).",
        &[],
        &m.search_latency,
    );
    for &stage in Stage::ALL.iter() {
        enc.histogram_us(
            "rabitq_search_stage_seconds",
            "Per-query time spent in each search pipeline stage.",
            &[("stage", stage.name())],
            m.stages.hist(stage),
        );
    }

    for (name, served) in &state.collections {
        let store = served.reader.metrics();
        let snapshot = served.reader.snapshot();
        let health = served.reader.health();
        let labels: &[(&str, &str)] = &[("collection", name.as_str())];
        enc.gauge(
            "rabitq_collection_live_vectors",
            "Live vectors in the latest snapshot.",
            labels,
            snapshot.len() as f64,
        );
        enc.gauge(
            "rabitq_collection_segments",
            "Sealed segments in the latest snapshot.",
            labels,
            snapshot.n_segments() as f64,
        );
        enc.gauge(
            "rabitq_collection_memtable_rows",
            "Rows in the latest snapshot's memtable view.",
            labels,
            snapshot.memtable_len() as f64,
        );
        enc.gauge(
            "rabitq_collection_queued_searches",
            "Searches waiting in the admission queue.",
            labels,
            served.batcher.queue_len() as f64,
        );
        enc.gauge(
            "rabitq_collection_degraded",
            "1 when segments were quarantined at open.",
            labels,
            u8::from(health.degraded).into(),
        );
        enc.gauge(
            "rabitq_collection_read_only",
            "1 when mutations are frozen.",
            labels,
            u8::from(health.read_only).into(),
        );
        for (metric, help, counter) in [
            (
                "rabitq_store_wal_appends_total",
                "WAL records appended.",
                &store.wal_appends,
            ),
            (
                "rabitq_store_wal_syncs_total",
                "Explicit WAL fsyncs.",
                &store.wal_syncs,
            ),
            (
                "rabitq_store_seals_total",
                "Memtable seals completed.",
                &store.seals,
            ),
            (
                "rabitq_store_segment_opens_total",
                "Segment files opened.",
                &store.segment_opens,
            ),
            (
                "rabitq_store_compactions_total",
                "Compactions completed.",
                &store.compactions,
            ),
            (
                "rabitq_store_compaction_bytes_in_total",
                "Live vector bytes read by compactions.",
                &store.compaction_bytes_in,
            ),
            (
                "rabitq_store_compaction_bytes_out_total",
                "Segment bytes written by compactions.",
                &store.compaction_bytes_out,
            ),
            (
                "rabitq_store_quarantines_total",
                "Segments quarantined at open.",
                &store.quarantines,
            ),
            (
                "rabitq_store_read_only_flips_total",
                "Healthy-to-read-only transitions.",
                &store.read_only_flips,
            ),
            (
                "rabitq_store_io_retries_total",
                "Transient write-path I/O faults absorbed by backoff-retry.",
                &store.io_retries,
            ),
            (
                "rabitq_store_thaws_total",
                "Read-only-to-healthy recoveries after a successful thaw probe.",
                &store.thaws,
            ),
            (
                "rabitq_store_publishes_total",
                "Snapshots published.",
                &store.publishes,
            ),
        ] {
            enc.counter(metric, help, labels, StoreMetrics::get(counter));
        }
        for (metric, help, hist) in [
            (
                "rabitq_store_wal_append_seconds",
                "WAL append duration.",
                &store.wal_append_us,
            ),
            (
                "rabitq_store_wal_sync_seconds",
                "WAL fsync duration.",
                &store.wal_sync_us,
            ),
            (
                "rabitq_store_seal_seconds",
                "Memtable seal duration.",
                &store.seal_us,
            ),
            (
                "rabitq_store_segment_open_seconds",
                "Segment open duration.",
                &store.segment_open_us,
            ),
            (
                "rabitq_store_compaction_seconds",
                "Compaction duration.",
                &store.compaction_us,
            ),
        ] {
            enc.histogram_us(metric, help, labels, hist);
        }
        enc.counter(
            "rabitq_events_recorded_total",
            "Events pushed into the journal since open.",
            labels,
            store.journal.total_recorded(),
        );
        enc.counter(
            "rabitq_events_dropped_total",
            "Events evicted from the bounded journal.",
            labels,
            store.journal.dropped(),
        );
    }

    enc.info(
        "rabitq_build_info",
        "Build metadata.",
        &[("version", env!("CARGO_PKG_VERSION"))],
    );
    let features = hw::cpu_features().join(",");
    let cores = hw::cores().to_string();
    enc.info(
        "rabitq_kernel_info",
        "Active fastscan kernel and detected CPU features.",
        &[
            ("kernel", hw::active_kernel()),
            ("cpu_features", &features),
            ("cores", &cores),
        ],
    );
    Response {
        status: 200,
        body: enc.render().into_bytes(),
        content_type: "text/plain; version=0.0.4",
        close: false,
    }
}

/// The per-collection store counters as a `/stats` fragment.
fn store_json(m: &StoreMetrics) -> Json {
    json_obj! {
        "wal_appends" => StoreMetrics::get(&m.wal_appends),
        "wal_append_us_p99" => m.wal_append_us.quantile_us(0.99),
        "wal_syncs" => StoreMetrics::get(&m.wal_syncs),
        "seals" => StoreMetrics::get(&m.seals),
        "seal_us_mean" => m.seal_us.mean_us(),
        "segment_opens" => StoreMetrics::get(&m.segment_opens),
        "compactions" => StoreMetrics::get(&m.compactions),
        "compaction_bytes_in" => StoreMetrics::get(&m.compaction_bytes_in),
        "compaction_bytes_out" => StoreMetrics::get(&m.compaction_bytes_out),
        "quarantines" => StoreMetrics::get(&m.quarantines),
        "read_only_flips" => StoreMetrics::get(&m.read_only_flips),
        "io_retries" => StoreMetrics::get(&m.io_retries),
        "thaws" => StoreMetrics::get(&m.thaws),
        "publishes" => StoreMetrics::get(&m.publishes)
    }
}

/// The event journal (oldest first) as a `/stats` fragment.
fn events_json(journal: &EventJournal) -> Json {
    Json::Arr(
        journal
            .recent()
            .into_iter()
            .map(|e| {
                json_obj! {
                    "seq" => e.seq,
                    "ts_ms" => e.ts_ms,
                    "kind" => e.kind,
                    "detail" => e.detail
                }
            })
            .collect(),
    )
}

/// Parses the request body as a JSON object, or answers `400`.
fn parse_body(req: &Request) -> Result<Json, Response> {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| Response::error(400, "body is not valid UTF-8"))?;
    if text.trim().is_empty() {
        return Err(Response::error(400, "empty body; send a JSON object"));
    }
    Json::parse(text).map_err(|e| Response::error(400, &e.to_string()))
}

/// Extracts a vector of `dim` floats from a JSON array.
fn parse_vector(value: &Json, dim: usize) -> Result<Vec<f32>, String> {
    let items = value
        .as_array()
        .ok_or_else(|| "vector must be a JSON array of numbers".to_string())?;
    if items.len() != dim {
        return Err(format!(
            "vector has {} dimensions, collection expects {dim}",
            items.len()
        ));
    }
    items
        .iter()
        .map(|v| {
            v.as_f64()
                .map(|f| f as f32)
                .ok_or_else(|| "vector elements must be numbers".to_string())
        })
        .collect()
}

fn search(state: &ServerState, served: &ServedCollection, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let dim = served.reader.dim();
    let Some(vector_json) = body.get("vector") else {
        return Response::error(400, "missing \"vector\"");
    };
    let query = match parse_vector(vector_json, dim) {
        Ok(q) => q,
        Err(msg) => return Response::error(400, &msg),
    };
    let k = match optional_usize(&body, "k", state.config.default_k, state.config.max_k) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let nprobe = match optional_usize(
        &body,
        "nprobe",
        state.config.default_nprobe,
        state.config.max_nprobe,
    ) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let batched = match body.get("mode").and_then(Json::as_str) {
        None => state.config.batching,
        Some("batched") => true,
        Some("direct") => false,
        Some(other) => {
            return Response::error(400, &format!("unknown mode {other:?}"));
        }
    };
    // The deadline is stamped *here*, at admission: queueing, batching,
    // and scan time all count against it.
    let timeout_ms = match body.get("timeout_ms") {
        None => state.config.default_timeout_ms,
        Some(v) => match v.as_u64() {
            Some(n) => n,
            None => {
                return Response::error(400, "\"timeout_ms\" must be a non-negative integer");
            }
        },
    };
    let timeout_ms = if state.config.max_timeout_ms > 0 && timeout_ms > 0 {
        timeout_ms.min(state.config.max_timeout_ms)
    } else {
        timeout_ms
    };
    let deadline = (timeout_ms > 0).then(|| Instant::now() + Duration::from_millis(timeout_ms));

    let (outcome, elapsed) = time_once(|| {
        if batched {
            match served.batcher.submit(query, k, nprobe, deadline) {
                Ok(r) => Ok(r),
                Err(SubmitError::Overloaded) => {
                    state.metrics.shed_overload.fetch_add(1, Ordering::Relaxed);
                    Err(Response::error(429, "admission queue full, retry later"))
                }
                Err(SubmitError::ShuttingDown) => {
                    state
                        .metrics
                        .shed_unavailable
                        .fetch_add(1, Ordering::Relaxed);
                    Err(Response::error(503, "server is shutting down"))
                }
                Err(SubmitError::Failed) => Err(Response::error(500, "search execution failed")),
                Err(SubmitError::Expired) => Err(Response::error(504, "deadline exceeded")),
            }
        } else {
            // Direct per-request execution on this worker thread: the
            // unbatched baseline. Snapshot load + serial search.
            let seq = state.direct_seq.fetch_add(1, Ordering::Relaxed);
            match deadline {
                None => {
                    let mut rng = StdRng::seed_from_u64(state.config.batch.seed ^ seq);
                    Ok(served.reader.search(&query, k, nprobe, &mut rng))
                }
                Some(d) => {
                    // With a deadline the direct path goes through the
                    // cancellable snapshot search so an expired query
                    // bails at the next checkpoint instead of running
                    // the scan to completion.
                    let token = CancelToken::with_deadline(d);
                    let opts = ParallelOptions {
                        threads: 1,
                        seed: state.config.batch.seed ^ seq,
                    };
                    let snapshot = served.reader.snapshot();
                    match snapshot.search_parallel_cancellable(&query, k, nprobe, opts, &token) {
                        SearchOutcome::Done(r) => Ok(r),
                        SearchOutcome::Cancelled => {
                            state
                                .metrics
                                .cancelled_mid_scan
                                .fetch_add(1, Ordering::Relaxed);
                            Err(Response::error(504, "deadline exceeded"))
                        }
                    }
                }
            }
        }
    });
    let result = match outcome {
        Ok(r) => r,
        Err(resp) => {
            if resp.status == 504 {
                state
                    .metrics
                    .deadline_exceeded
                    .fetch_add(1, Ordering::Relaxed);
                state.metrics.cancelled_after.record(elapsed);
            }
            return resp;
        }
    };
    state.metrics.search_latency.record(elapsed);
    state.metrics.stages.record(&result.stages);
    if state.config.slow_query_ms > 0 && elapsed.as_millis() as u64 >= state.config.slow_query_ms {
        let s = &result.stages;
        served.reader.metrics().journal.push(
            "slow_query",
            format!(
                "{}us k={k} nprobe={nprobe} mode={} stages_us rotate={} lut_build={} \
                 scan={} rerank={} merge={}",
                elapsed.as_micros(),
                if batched { "batched" } else { "direct" },
                s.get_ns(Stage::Rotate) / 1000,
                s.get_ns(Stage::LutBuild) / 1000,
                s.get_ns(Stage::Scan) / 1000,
                s.get_ns(Stage::Rerank) / 1000,
                s.get_ns(Stage::Merge) / 1000,
            ),
        );
    }
    let mut body = search_json(&result);
    // Opt-in per-query breakdown: `POST /…/search?debug=timings`.
    if req.query_param("debug") == Some("timings") {
        if let Json::Obj(fields) = &mut body {
            fields.push(("timings_us".into(), timings_json(&result.stages, elapsed)));
        }
    }
    Response::json(200, body.encode())
}

/// The `?debug=timings` response fragment: per-stage and total stage
/// time, plus the edge-observed elapsed time, all in microseconds.
fn timings_json(stages: &StageNanos, elapsed: Duration) -> Json {
    let mut fields: Vec<(String, Json)> = Stage::ALL
        .iter()
        .map(|&s| (s.name().to_string(), Json::from(stages.get_ns(s) / 1000)))
        .collect();
    fields.push(("stage_total".into(), Json::from(stages.total_ns() / 1000)));
    fields.push((
        "elapsed".into(),
        Json::from(elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
    ));
    Json::Obj(fields)
}

fn search_json(result: &SearchResult) -> Json {
    let neighbors = Json::Arr(
        result
            .neighbors
            .iter()
            .map(|&(id, dist)| {
                json_obj! {"id" => u64::from(id), "distance" => f64::from(dist)}
            })
            .collect(),
    );
    json_obj! {
        "neighbors" => neighbors,
        "n_estimated" => result.n_estimated,
        "n_reranked" => result.n_reranked
    }
}

/// Reads an optional positive integer, bounded by a server-configured
/// maximum. The bound is load-bearing: `k`/`nprobe` size allocations in
/// the search path (`TopK` heaps, probe lists), so an unclamped
/// `{"k": 1e15}` would be a one-request memory bomb.
fn optional_usize(body: &Json, key: &str, default: usize, max: usize) -> Result<usize, Response> {
    match body.get(key) {
        None => Ok(default.min(max)),
        Some(v) => match v.as_u64() {
            Some(n) if n > 0 && n <= max as u64 => Ok(n as usize),
            _ => Err(Response::error(
                400,
                &format!("\"{key}\" must be an integer in 1..={max}"),
            )),
        },
    }
}

fn insert(state: &ServerState, served: &ServedCollection, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let dim = served.reader.dim();
    let mut rows: Vec<Vec<f32>> = Vec::new();
    if let Some(single) = body.get("vector") {
        match parse_vector(single, dim) {
            Ok(v) => rows.push(v),
            Err(msg) => return Response::error(400, &msg),
        }
    } else if let Some(many) = body.get("vectors").and_then(Json::as_array) {
        for (i, item) in many.iter().enumerate() {
            match parse_vector(item, dim) {
                Ok(v) => rows.push(v),
                Err(msg) => return Response::error(400, &format!("vectors[{i}]: {msg}")),
            }
        }
    } else {
        return Response::error(400, "missing \"vector\" or \"vectors\"");
    }
    if rows.is_empty() {
        return Response::error(400, "\"vectors\" is empty");
    }

    let mut writer = served.writer.lock().unwrap_or_else(|e| e.into_inner());
    let mut ids = Vec::with_capacity(rows.len());
    for row in &rows {
        match writer.insert(row) {
            Ok(id) => ids.push(id),
            Err(e) => {
                drop(writer);
                // Ids already inserted are durable; count and report them.
                // The error body carries them so a client can resume from
                // the failure point instead of replaying the whole batch
                // (which would duplicate the committed rows).
                state
                    .metrics
                    .inserts
                    .fetch_add(ids.len() as u64, Ordering::Relaxed);
                let ids_json = Json::Arr(ids.iter().map(|&id| Json::from(u64::from(id))).collect());
                let body = json_obj! {
                    "error" => format!("insert failed after {}: {e}", ids.len()),
                    "inserted_ids" => ids_json
                }
                .encode();
                // Retryable (503) when the collection is read-only —
                // either it already was, or this very failure exhausted
                // the retry budget and froze it. Both mean "try a healthy
                // replica", not "server bug".
                return if e.is_read_only() || served.reader.health().read_only {
                    state
                        .metrics
                        .rejected_read_only
                        .fetch_add(1, Ordering::Relaxed);
                    Response::json(503, body)
                } else {
                    Response::json(500, body)
                };
            }
        }
    }
    drop(writer);
    state
        .metrics
        .inserts
        .fetch_add(ids.len() as u64, Ordering::Relaxed);
    let ids_json = Json::Arr(ids.iter().map(|&id| Json::from(u64::from(id))).collect());
    Response::json(200, json_obj! {"ids" => ids_json}.encode())
}

fn delete(state: &ServerState, served: &ServedCollection, req: &Request) -> Response {
    let body = match parse_body(req) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let mut ids: Vec<u32> = Vec::new();
    if let Some(single) = body.get("id") {
        match single.as_u64() {
            Some(id) if id <= u64::from(u32::MAX) => ids.push(id as u32),
            _ => return Response::error(400, "\"id\" must be a u32"),
        }
    } else if let Some(many) = body.get("ids").and_then(Json::as_array) {
        for item in many {
            match item.as_u64() {
                Some(id) if id <= u64::from(u32::MAX) => ids.push(id as u32),
                _ => return Response::error(400, "\"ids\" must be u32 values"),
            }
        }
    } else {
        return Response::error(400, "missing \"id\" or \"ids\"");
    }

    let mut writer = served.writer.lock().unwrap_or_else(|e| e.into_inner());
    let mut deleted = 0u64;
    for id in ids {
        match writer.delete(id) {
            Ok(true) => deleted += 1,
            Ok(false) => {}
            Err(e) => {
                drop(writer);
                state.metrics.deletes.fetch_add(deleted, Ordering::Relaxed);
                let msg = format!("delete failed after {deleted}: {e}");
                return if e.is_read_only() || served.reader.health().read_only {
                    state
                        .metrics
                        .rejected_read_only
                        .fetch_add(1, Ordering::Relaxed);
                    Response::error(503, &msg)
                } else {
                    Response::error(500, &msg)
                };
            }
        }
    }
    drop(writer);
    state.metrics.deletes.fetch_add(deleted, Ordering::Relaxed);
    Response::json(200, json_obj! {"deleted" => deleted}.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batcher::{BatchConfig, Batcher};
    use crate::metrics::ServerMetrics;
    use crate::server::{ServeConfig, ServedCollection, ServerState};
    use rabitq_store::{Collection, CollectionConfig};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::sync::{Arc, Mutex};

    fn test_state(dir: &std::path::Path) -> ServerState {
        std::fs::remove_dir_all(dir).ok();
        let collection = Collection::open(dir, CollectionConfig::new(4)).unwrap();
        let metrics = Arc::new(ServerMetrics::new());
        let reader = collection.reader();
        let batcher = Batcher::start(reader.clone(), BatchConfig::default(), metrics.clone());
        let mut collections = HashMap::new();
        collections.insert(
            "test".to_string(),
            Arc::new(ServedCollection {
                writer: Mutex::new(collection),
                reader,
                batcher,
            }),
        );
        ServerState {
            config: ServeConfig::default(),
            collections,
            default_name: "test".into(),
            metrics,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            direct_seq: AtomicU64::new(0),
        }
    }

    #[test]
    fn healthz_reports_draining_during_shutdown() {
        let dir = std::env::temp_dir().join(format!("router-draining-{}", std::process::id()));
        let state = test_state(&dir);

        let before = healthz(&state);
        let body = Json::parse(std::str::from_utf8(&before.body).unwrap()).unwrap();
        assert_eq!(body.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(body.get("draining").and_then(Json::as_bool), Some(false));

        state.shutdown.store(true, Ordering::Relaxed);
        let during = healthz(&state);
        assert_eq!(during.status, 200, "a draining server is still alive");
        let body = Json::parse(std::str::from_utf8(&during.body).unwrap()).unwrap();
        assert_eq!(
            body.get("status").and_then(Json::as_str),
            Some("draining"),
            "draining must be distinct from ok/degraded"
        );
        assert_eq!(body.get("draining").and_then(Json::as_bool), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }
}
