//! `rabitq-serve` — a dependency-free network front end for
//! [`rabitq-store`](../rabitq_store/index.html) collections.
//!
//! The crate serves a JSON-over-HTTP/1.1 API from `std::net` alone: no
//! async runtime, no HTTP framework, no serde. The interesting part is
//! not the protocol plumbing but the *execution model* between socket
//! and engine:
//!
//! - **Request batching** ([`batcher`]): concurrent searches are
//!   coalesced — bounded batch size plus a microsecond-scale linger —
//!   into single [`Snapshot::search_many`] calls, which amortize
//!   snapshot loads and reuse per-thread scratch across the whole batch.
//! - **Admission control**: the batch queue is bounded. When it is full
//!   the server sheds with `429` instead of queueing into unbounded
//!   latency; during shutdown it sheds with `503`. Every request that is
//!   *admitted* is always answered — shedding happens strictly at the
//!   admission edge.
//! - **Graceful shutdown** ([`server`]): connection workers finish their
//!   in-flight request, then the batchers drain everything already
//!   admitted, then threads join. No accepted request is silently
//!   dropped mid-flight.
//!
//! [`Snapshot::search_many`]: rabitq_store::Snapshot::search_many
//!
//! ## Quick start
//!
//! ```no_run
//! use rabitq_serve::{ServeConfig, Server};
//! use rabitq_store::{Collection, CollectionConfig};
//! use std::path::Path;
//!
//! let collection =
//!     Collection::open(Path::new("data/demo"), CollectionConfig::new(64)).unwrap();
//! let server = Server::start(ServeConfig::default(), vec![("demo".into(), collection)]).unwrap();
//! println!("serving on http://{}", server.addr());
//! // ... later:
//! server.shutdown(); // drains in-flight work, joins every thread
//! ```
//!
//! ## API
//!
//! | Route | Method | Purpose |
//! |---|---|---|
//! | `/healthz` | GET | liveness probe (uptime, version, SIMD kernel) |
//! | `/stats` | GET | counters, latency quantiles, batch histogram, store metrics + event journal |
//! | `/metrics` | GET | Prometheus text exposition of the whole surface |
//! | `/collections/:name/search` | POST | k-NN search (batched or direct); `?debug=timings` adds a stage breakdown |
//! | `/collections/:name/insert` | POST | insert one vector or many |
//! | `/collections/:name/delete` | POST | tombstone ids |
//! | `/search` `/insert` `/delete` | POST | same, against the default collection |

pub mod batcher;
pub mod http;
pub mod json;
pub mod metrics;
mod router;
pub mod server;

pub use batcher::{BatchConfig, Batcher, SubmitError};
pub use json::{Json, JsonError};
pub use metrics::ServerMetrics;
pub use server::{ServeConfig, Server};
