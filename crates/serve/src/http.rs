//! A minimal, hand-rolled HTTP/1.1 layer over any `Read + Write` stream.
//!
//! Supports exactly what the JSON API needs: request-line + headers +
//! `Content-Length` bodies, keep-alive (with pipelining — the read buffer
//! carries over between requests), and hard limits on head and body sizes
//! so a malformed or hostile client is answered with `431`/`413` instead
//! of unbounded buffering. Chunked transfer encoding is rejected with
//! `411` (length required).

use std::io::{self, Read, Write};

/// Cap on request head (request line + headers) bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Read chunk size.
const READ_CHUNK: usize = 8 * 1024;

/// A parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method, e.g. `GET`.
    pub method: String,
    /// Path component of the request target (query string stripped).
    pub path: String,
    /// Raw query string (without the `?`); empty when the target has
    /// none. Routing stays path-only — handlers opt into flags via
    /// [`Request::query_param`].
    pub query: String,
    /// Lowercased header names with trimmed values, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of query parameter `name` (`?name=value&…`), if
    /// present; a bare `?name` yields `Some("")`. No percent-decoding —
    /// the API's flag values are plain tokens.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// An HTTP-level rejection: respond with `status` and close.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// HTTP status code to answer with.
    pub status: u16,
    /// Human-readable reason included in the JSON error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }
}

/// Outcome of one attempt to read a request off a connection.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// Clean close: EOF with no buffered bytes.
    Closed,
    /// The read timed out. `partial` says whether a half-received request
    /// is sitting in the buffer (the caller escalates repeated partial
    /// timeouts to `408`).
    Timeout {
        /// Whether unconsumed request bytes are buffered.
        partial: bool,
    },
    /// Protocol violation — answer `status` and close.
    Error(HttpError),
    /// The peer vanished mid-request (reset, truncated body, …).
    Disconnected,
}

/// A response to serialize. Always carries an explicit `Content-Length`.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Force `Connection: close` regardless of the request.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            body: body.into_bytes(),
            content_type: "application/json",
            close: false,
        }
    }

    /// A JSON error body `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Self {
        let body = crate::json_obj! {"error" => message}.encode();
        Self::json(status, body)
    }

    /// The canonical reason phrase for this status.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            411 => "Length Required",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            431 => "Request Header Fields Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "Unknown",
        }
    }
}

/// One HTTP connection: the stream plus the carry-over read buffer that
/// makes keep-alive pipelining work.
pub struct HttpConn<S> {
    stream: S,
    buf: Vec<u8>,
}

impl<S: Read + Write> HttpConn<S> {
    /// Wraps a stream.
    pub fn new(stream: S) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    /// The underlying stream.
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Reads (or finishes reading) one request. `max_body` bounds
    /// `Content-Length`; oversized requests are rejected with `413`
    /// without reading their body.
    pub fn read_request(&mut self, max_body: usize) -> ReadOutcome {
        loop {
            if let Some(head_end) = find_head_end(&self.buf) {
                if head_end + 4 > MAX_HEAD_BYTES {
                    return ReadOutcome::Error(HttpError::new(431, "request head too large"));
                }
                return self.parse_and_complete(head_end, max_body);
            }
            if self.buf.len() > MAX_HEAD_BYTES {
                return ReadOutcome::Error(HttpError::new(431, "request head too large"));
            }
            match self.fill() {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        ReadOutcome::Closed
                    } else {
                        ReadOutcome::Disconnected
                    };
                }
                Ok(_) => continue,
                Err(e) if is_timeout(&e) => {
                    return ReadOutcome::Timeout {
                        partial: !self.buf.is_empty(),
                    };
                }
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
    }

    /// Serializes `resp`; `keep_alive` is the request-side decision (the
    /// response's `close` flag overrides it).
    pub fn write_response(&mut self, resp: &Response, keep_alive: bool) -> io::Result<()> {
        let close = resp.close || !keep_alive;
        let head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n{}\r\n",
            resp.status,
            resp.reason(),
            resp.content_type,
            resp.body.len(),
            if close { "connection: close\r\n" } else { "" },
        );
        self.stream.write_all(head.as_bytes())?;
        self.stream.write_all(&resp.body)?;
        self.stream.flush()
    }

    fn fill(&mut self) -> io::Result<usize> {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(n);
                }
                // EINTR is a retry, not a timeout: counting it toward the
                // 408/idle budgets would turn stray signals into spurious
                // timeout ticks.
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Parses the head at `..head_end`, then reads the body to completion.
    fn parse_and_complete(&mut self, head_end: usize, max_body: usize) -> ReadOutcome {
        let parsed = match parse_head(&self.buf[..head_end]) {
            Ok(p) => p,
            Err(e) => return ReadOutcome::Error(e),
        };
        if parsed.chunked {
            return ReadOutcome::Error(HttpError::new(
                411,
                "chunked transfer encoding not supported; send content-length",
            ));
        }
        let body_len = parsed.content_length.unwrap_or(0);
        if body_len > max_body {
            return ReadOutcome::Error(HttpError::new(
                413,
                format!("body of {body_len} bytes exceeds limit of {max_body}"),
            ));
        }
        let total = head_end + 4 + body_len;
        while self.buf.len() < total {
            match self.fill() {
                Ok(0) => return ReadOutcome::Disconnected,
                Ok(_) => {}
                Err(e) if is_timeout(&e) => return ReadOutcome::Timeout { partial: true },
                Err(_) => return ReadOutcome::Disconnected,
            }
        }
        let body = self.buf[head_end + 4..total].to_vec();
        self.buf.drain(..total);
        let ParsedHead {
            method,
            path,
            query,
            headers,
            keep_alive,
            ..
        } = parsed;
        ReadOutcome::Request(Request {
            method,
            path,
            query,
            headers,
            body,
            keep_alive,
        })
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Index of `\r\n\r\n` terminating the head, if buffered.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

struct ParsedHead {
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
    keep_alive: bool,
    content_length: Option<usize>,
    chunked: bool,
}

fn parse_head(head: &[u8]) -> Result<ParsedHead, HttpError> {
    let text = std::str::from_utf8(head)
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(HttpError::new(400, "malformed request line"));
    };
    if parts.next().is_some() || method.is_empty() || target.is_empty() {
        return Err(HttpError::new(400, "malformed request line"));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::new(400, "unsupported HTTP version")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::new(400, format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut content_length = None;
    let mut has_transfer_encoding = false;
    let mut chunked = false;
    let mut keep_alive = http11;
    for (name, value) in &headers {
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::new(400, "invalid content-length"))?;
                // Conflicting duplicates are a request-smuggling surface
                // behind a proxy that picks the other one — hard 400.
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(HttpError::new(400, "conflicting content-length headers"));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                has_transfer_encoding = true;
                if value.to_ascii_lowercase().contains("chunked") {
                    chunked = true;
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    keep_alive = false;
                } else if v.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    // Transfer-Encoding + Content-Length is the classic smuggling vector
    // (RFC 9112 §6.1: treat as an error); reject rather than pick one.
    if has_transfer_encoding && content_length.is_some() {
        return Err(HttpError::new(
            400,
            "transfer-encoding and content-length are mutually exclusive",
        ));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(ParsedHead {
        method: method.to_string(),
        path,
        query,
        headers,
        keep_alive,
        content_length,
        chunked,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A scripted stream: reads pop from `input`, writes append to
    /// `output`. An empty script reads as a timeout, then EOF.
    struct FakeStream {
        input: VecDeque<Vec<u8>>,
        output: Vec<u8>,
        timeout_once: bool,
        interrupt_once: bool,
    }

    impl FakeStream {
        fn new(chunks: &[&[u8]]) -> Self {
            Self {
                input: chunks.iter().map(|c| c.to_vec()).collect(),
                output: Vec::new(),
                timeout_once: false,
                interrupt_once: false,
            }
        }
    }

    impl Read for FakeStream {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.interrupt_once {
                self.interrupt_once = false;
                return Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"));
            }
            match self.input.pop_front() {
                Some(chunk) => {
                    let n = chunk.len().min(out.len());
                    out[..n].copy_from_slice(&chunk[..n]);
                    if n < chunk.len() {
                        self.input.push_front(chunk[n..].to_vec());
                    }
                    Ok(n)
                }
                None if self.timeout_once => {
                    self.timeout_once = false;
                    Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"))
                }
                None => Ok(0),
            }
        }
    }

    impl Write for FakeStream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.output.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn read_one(chunks: &[&[u8]], max_body: usize) -> ReadOutcome {
        HttpConn::new(FakeStream::new(chunks)).read_request(max_body)
    }

    #[test]
    fn parses_a_post_with_body() {
        let out = read_one(
            &[b"POST /search HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd"],
            1024,
        );
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/search");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
    }

    #[test]
    fn body_split_across_reads_is_reassembled() {
        let out = read_one(
            &[
                b"POST /x HTTP/1.1\r\ncont",
                b"ent-length: 6\r\n\r\nab",
                b"cdef",
            ],
            1024,
        );
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(req.body, b"abcdef");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let mut conn = HttpConn::new(FakeStream::new(&[
            b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nconnection: close\r\n\r\n",
        ]));
        let ReadOutcome::Request(a) = conn.read_request(64) else {
            panic!("first pipelined request");
        };
        let ReadOutcome::Request(b) = conn.read_request(64) else {
            panic!("second pipelined request");
        };
        assert_eq!(a.path, "/a");
        assert!(a.keep_alive);
        assert_eq!(b.path, "/b");
        assert!(!b.keep_alive);
    }

    #[test]
    fn oversized_body_is_rejected_with_413_without_reading_it() {
        let out = read_one(
            &[b"POST /x HTTP/1.1\r\ncontent-length: 999999\r\n\r\n"],
            100,
        );
        let ReadOutcome::Error(e) = out else {
            panic!("expected error, got {out:?}");
        };
        assert_eq!(e.status, 413);
    }

    #[test]
    fn truncated_head_is_disconnected() {
        let out = read_one(&[b"GET /x HTT"], 64);
        assert!(matches!(out, ReadOutcome::Disconnected), "{out:?}");
    }

    #[test]
    fn truncated_body_is_disconnected() {
        let out = read_one(&[b"POST /x HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc"], 64);
        assert!(matches!(out, ReadOutcome::Disconnected), "{out:?}");
    }

    #[test]
    fn clean_eof_is_closed_and_timeout_reports_partial() {
        assert!(matches!(read_one(&[], 64), ReadOutcome::Closed));
        let mut stream = FakeStream::new(&[b"GET /x H"]);
        stream.timeout_once = true;
        let out = HttpConn::new(stream).read_request(64);
        assert!(
            matches!(out, ReadOutcome::Timeout { partial: true }),
            "{out:?}"
        );
    }

    #[test]
    fn rejects_bad_request_lines_and_versions() {
        for head in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET /x HTTP/2.0\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b"GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            b"POST /x HTTP/1.1\r\ncontent-length: nan\r\n\r\n",
        ] {
            let out = read_one(&[head], 64);
            let ReadOutcome::Error(e) = out else {
                panic!("expected error for {head:?}, got {out:?}");
            };
            assert_eq!(e.status, 400);
        }
    }

    #[test]
    fn chunked_encoding_is_rejected() {
        let out = read_one(
            &[b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n"],
            64,
        );
        let ReadOutcome::Error(e) = out else {
            panic!("expected error, got {out:?}");
        };
        assert_eq!(e.status, 411);
    }

    #[test]
    fn identity_transfer_encoding_is_not_chunked() {
        // "identity" is not chunked: parses as a body-less request
        // instead of a 411.
        let out = read_one(
            &[b"GET /x HTTP/1.1\r\ntransfer-encoding: identity\r\n\r\n"],
            64,
        );
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert!(req.body.is_empty());
    }

    #[test]
    fn smuggling_shaped_heads_are_rejected_with_400() {
        // Transfer-Encoding alongside Content-Length, and conflicting
        // duplicate Content-Length values.
        for head in [
            &b"POST /x HTTP/1.1\r\ntransfer-encoding: chunked\r\ncontent-length: 4\r\n\r\nabcd"[..],
            b"POST /x HTTP/1.1\r\ntransfer-encoding: identity\r\ncontent-length: 4\r\n\r\nabcd",
            b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 5\r\n\r\nabcd",
        ] {
            let out = read_one(&[head], 64);
            let ReadOutcome::Error(e) = out else {
                panic!("expected error for {head:?}, got {out:?}");
            };
            assert_eq!(e.status, 400);
        }
        // Identical duplicates are harmless and accepted.
        let out = read_one(
            &[b"POST /x HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nabcd"],
            64,
        );
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn interrupted_reads_are_retried_not_timeouts() {
        let mut stream = FakeStream::new(&[b"GET /x HTTP/1.1\r\n\r\n"]);
        stream.interrupt_once = true;
        let out = HttpConn::new(stream).read_request(64);
        let ReadOutcome::Request(req) = out else {
            panic!("expected request after EINTR retry, got {out:?}");
        };
        assert_eq!(req.path, "/x");
    }

    #[test]
    fn oversized_head_is_rejected_with_431() {
        let huge = format!(
            "GET /x HTTP/1.1\r\nx-padding: {}\r\n\r\n",
            "a".repeat(MAX_HEAD_BYTES + 1)
        );
        let out = read_one(&[huge.as_bytes()], 64);
        let ReadOutcome::Error(e) = out else {
            panic!("expected error, got {out:?}");
        };
        assert_eq!(e.status, 431);
    }

    #[test]
    fn write_response_emits_valid_http() {
        let mut conn = HttpConn::new(FakeStream::new(&[]));
        conn.write_response(&Response::json(200, "{\"ok\":true}".into()), true)
            .unwrap();
        let text = String::from_utf8(conn.stream.output.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 11\r\n"));
        assert!(!text.contains("connection: close"));
        assert!(text.ends_with("{\"ok\":true}"));

        conn.stream.output.clear();
        conn.write_response(&Response::error(429, "overloaded"), false)
            .unwrap();
        let text = String::from_utf8(conn.stream.output.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("connection: close\r\n"));
    }

    #[test]
    fn query_strings_are_stripped_from_path() {
        let out = read_one(&[b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n"], 64);
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(req.path, "/stats");
        assert_eq!(req.query, "verbose=1");
        assert_eq!(req.query_param("verbose"), Some("1"));
        assert_eq!(req.query_param("missing"), None);
    }

    #[test]
    fn query_params_parse_flags_and_pairs() {
        let out = read_one(&[b"POST /search?debug=timings&trace HTTP/1.1\r\n\r\n"], 64);
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert_eq!(req.query_param("debug"), Some("timings"));
        assert_eq!(req.query_param("trace"), Some(""));
        // And a target with no query at all parses to the empty string.
        let out = read_one(&[b"GET /stats HTTP/1.1\r\n\r\n"], 64);
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert!(req.query.is_empty());
        assert_eq!(req.query_param("debug"), None);
    }

    #[test]
    fn http10_defaults_to_close() {
        let out = read_one(&[b"GET /x HTTP/1.0\r\n\r\n"], 64);
        let ReadOutcome::Request(req) = out else {
            panic!("expected request, got {out:?}");
        };
        assert!(!req.keep_alive);
    }
}
