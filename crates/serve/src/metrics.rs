//! Server-side counters and latency/batch histograms, all lock-free.
//!
//! One [`ServerMetrics`] is shared by every connection worker and batch
//! worker; `/stats` renders it as JSON. Latency uses the log-bucketed
//! [`LatencyHistogram`] from `rabitq-metrics`; batch sizes use a small
//! exact array (sizes are bounded by the configured `max_batch`).

use crate::json::Json;
use crate::json_obj;
use rabitq_metrics::{LatencyHistogram, Stage, StageTimers};
use std::sync::atomic::{AtomicU64, Ordering};

/// Largest batch size tracked exactly by the batch-size histogram.
pub const MAX_TRACKED_BATCH: usize = 256;

/// Shared serving metrics.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Requests fully parsed off a connection.
    pub requests: AtomicU64,
    /// Responses with 2xx status.
    pub ok_responses: AtomicU64,
    /// Responses with 4xx status (including sheds).
    pub client_errors: AtomicU64,
    /// Responses with 5xx status (including sheds).
    pub server_errors: AtomicU64,
    /// Searches shed with `429` (admission queue full).
    pub shed_overload: AtomicU64,
    /// Requests answered `503` (shutting down / connection backlog full).
    pub shed_unavailable: AtomicU64,
    /// Mutations answered `503` because the collection is read-only
    /// (frozen after a write-path storage fault or by an operator).
    pub rejected_read_only: AtomicU64,
    /// Searches answered `504` because their deadline passed (at any
    /// stage: admission, queued, or mid-scan).
    pub deadline_exceeded: AtomicU64,
    /// Deadline-expired searches dropped before their batch dispatched
    /// (at admission or while queued) — no search work was wasted.
    pub expired_in_queue: AtomicU64,
    /// Searches cooperatively cancelled mid-scan by their deadline: the
    /// scan bailed at a checkpoint instead of running to completion.
    pub cancelled_mid_scan: AtomicU64,
    /// How long a `504`ed search had been in flight when the server
    /// observed its cancellation, µs. A histogram dominated by values
    /// near the configured timeout means cancellation is prompt; a long
    /// tail means checkpoints are too coarse.
    pub cancelled_after: LatencyHistogram,
    /// Vectors inserted.
    pub inserts: AtomicU64,
    /// Tombstones applied.
    pub deletes: AtomicU64,
    /// End-to-end search latency (admission to response ready), µs.
    pub search_latency: LatencyHistogram,
    /// Per-pipeline-stage time across every answered search (rotate, LUT
    /// build, scan, re-rank, merge) — the global aggregate of the
    /// per-query [`rabitq_metrics::StageNanos`] breakdowns.
    pub stages: StageTimers,
    /// Executed search batches.
    pub batches: AtomicU64,
    /// `batch_sizes[s-1]` counts batches of size `s` (capped at
    /// [`MAX_TRACKED_BATCH`]).
    pub batch_sizes: Vec<AtomicU64>,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServerMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> Self {
        Self {
            requests: AtomicU64::new(0),
            ok_responses: AtomicU64::new(0),
            client_errors: AtomicU64::new(0),
            server_errors: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_unavailable: AtomicU64::new(0),
            rejected_read_only: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            expired_in_queue: AtomicU64::new(0),
            cancelled_mid_scan: AtomicU64::new(0),
            cancelled_after: LatencyHistogram::new(),
            inserts: AtomicU64::new(0),
            deletes: AtomicU64::new(0),
            search_latency: LatencyHistogram::new(),
            stages: StageTimers::new(),
            batches: AtomicU64::new(0),
            batch_sizes: (0..MAX_TRACKED_BATCH).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Tallies a response status into the 2xx/4xx/5xx counters.
    pub fn count_response(&self, status: u16) {
        let counter = match status {
            200..=299 => &self.ok_responses,
            400..=499 => &self.client_errors,
            _ => &self.server_errors,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch of `size` coalesced searches.
    pub fn record_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let idx = size.clamp(1, MAX_TRACKED_BATCH) - 1;
        self.batch_sizes[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Mean executed batch size (0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        let mut total = 0u64;
        let mut weighted = 0u64;
        for (i, c) in self.batch_sizes.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            total += n;
            weighted += n * (i as u64 + 1);
        }
        if total == 0 {
            0.0
        } else {
            weighted as f64 / total as f64
        }
    }

    /// The non-empty `[size, count]` pairs of the batch-size histogram.
    pub fn batch_histogram(&self) -> Vec<(usize, u64)> {
        self.batch_sizes
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i + 1, n))
            })
            .collect()
    }

    /// Renders everything as the `/stats` JSON fragment.
    pub fn to_json(&self) -> Json {
        let batch_hist = Json::Arr(
            self.batch_histogram()
                .into_iter()
                .map(|(size, count)| Json::Arr(vec![Json::from(size), Json::from(count)]))
                .collect(),
        );
        json_obj! {
            "requests" => self.requests.load(Ordering::Relaxed),
            "responses_2xx" => self.ok_responses.load(Ordering::Relaxed),
            "responses_4xx" => self.client_errors.load(Ordering::Relaxed),
            "responses_5xx" => self.server_errors.load(Ordering::Relaxed),
            "shed_overload" => self.shed_overload.load(Ordering::Relaxed),
            "shed_unavailable" => self.shed_unavailable.load(Ordering::Relaxed),
            "rejected_read_only" => self.rejected_read_only.load(Ordering::Relaxed),
            "deadline_exceeded" => self.deadline_exceeded.load(Ordering::Relaxed),
            "expired_in_queue" => self.expired_in_queue.load(Ordering::Relaxed),
            "cancelled_mid_scan" => self.cancelled_mid_scan.load(Ordering::Relaxed),
            "cancelled_after_us" => json_obj! {
                "count" => self.cancelled_after.count(),
                "mean" => self.cancelled_after.mean_us(),
                "p99" => self.cancelled_after.quantile_us(0.99)
            },
            "inserts" => self.inserts.load(Ordering::Relaxed),
            "deletes" => self.deletes.load(Ordering::Relaxed),
            "search_latency_us" => json_obj! {
                "count" => self.search_latency.count(),
                "mean" => self.search_latency.mean_us(),
                "p50" => self.search_latency.quantile_us(0.50),
                "p95" => self.search_latency.quantile_us(0.95),
                "p99" => self.search_latency.quantile_us(0.99)
            },
            "search_stages_us" => Json::Obj(
                Stage::ALL
                    .iter()
                    .map(|&stage| {
                        let h = self.stages.hist(stage);
                        (
                            stage.name().to_string(),
                            json_obj! {
                                "count" => h.count(),
                                "total" => h.sum_us(),
                                "mean" => h.mean_us(),
                                "p99" => h.quantile_us(0.99)
                            },
                        )
                    })
                    .collect(),
            ),
            "batches" => self.batches.load(Ordering::Relaxed),
            "mean_batch_size" => self.mean_batch_size(),
            "batch_size_histogram" => batch_hist
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_histogram_tracks_sizes() {
        let m = ServerMetrics::new();
        m.record_batch(1);
        m.record_batch(4);
        m.record_batch(4);
        m.record_batch(10_000); // clamps into the last bucket
        assert_eq!(
            m.batch_histogram(),
            vec![(1, 1), (4, 2), (MAX_TRACKED_BATCH, 1)]
        );
        assert_eq!(m.batches.load(Ordering::Relaxed), 4);
        let mean = m.mean_batch_size();
        assert!(mean > 1.0, "mean = {mean}");
    }

    #[test]
    fn response_counting_buckets_by_class() {
        let m = ServerMetrics::new();
        m.count_response(200);
        m.count_response(404);
        m.count_response(429);
        m.count_response(503);
        assert_eq!(m.ok_responses.load(Ordering::Relaxed), 1);
        assert_eq!(m.client_errors.load(Ordering::Relaxed), 2);
        assert_eq!(m.server_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_json_is_well_formed() {
        let m = ServerMetrics::new();
        m.record_batch(2);
        m.search_latency.record_us(150);
        let j = m.to_json();
        assert_eq!(j.get("batches").and_then(Json::as_u64), Some(1));
        let lat = j.get("search_latency_us").unwrap();
        assert_eq!(lat.get("count").and_then(Json::as_u64), Some(1));
        // And it encodes + reparses.
        let text = j.encode();
        assert!(Json::parse(&text).is_ok(), "{text}");
    }
}
