//! The server: one acceptor thread, a fixed pool of connection workers,
//! and graceful shutdown that drains in-flight work.
//!
//! ## Architecture
//!
//! ```text
//!        TcpListener (nonblocking accept loop)
//!              │ bounded handoff queue — overflow answered 503
//!        ┌─────┴─────┬───────────┐
//!    worker 0    worker 1 …  worker W-1     (keep-alive request loops)
//!        │ search     │ insert/delete
//!        ▼            ▼
//!    Batcher ──► Snapshot::search_many   Mutex<Collection> (writers only)
//! ```
//!
//! Searches never touch the writer lock — they go through the collection's
//! [`CollectionReader`] snapshot path, coalesced by the [`Batcher`].
//! Mutations serialize on a per-collection `Mutex<Collection>`.
//!
//! ## Shutdown ordering
//!
//! 1. the shutdown flag flips — the acceptor stops accepting, connection
//!    workers finish (and answer) their current request, then close;
//! 2. connections still queued for a worker are dropped unserved (they
//!    were never read);
//! 3. workers are joined **while the batchers still run**, so every
//!    admitted search gets its response before its connection closes;
//! 4. each batcher is then shut down, which by its own invariant drains
//!    the admission queue first.
//!
//! The result: every request that got an HTTP head written back is fully
//! answered; nothing admitted to the batcher is ever dropped.

use crate::batcher::{BatchConfig, Batcher};
use crate::http::{HttpConn, ReadOutcome, Response};
use crate::metrics::ServerMetrics;
use crate::router;
use rabitq_store::{Collection, CollectionReader};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything tunable about the server.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Connection worker threads.
    pub workers: usize,
    /// Accepted connections waiting for a worker beyond this are answered
    /// `503` immediately.
    pub conn_backlog: usize,
    /// Largest accepted request body, bytes (`413` beyond).
    pub max_body: usize,
    /// Whether searches go through the batching queue by default (a
    /// request can override with `"mode": "direct" | "batched"`).
    pub batching: bool,
    /// Batching/admission tuning (shared by every collection's batcher).
    pub batch: BatchConfig,
    /// Default `k` when a search request omits it.
    pub default_k: usize,
    /// Default `nprobe` when a search request omits it.
    pub default_nprobe: usize,
    /// Largest `k` a search request may ask for (`400` beyond). Bounds
    /// the per-request heap allocation in the search path.
    pub max_k: usize,
    /// Largest `nprobe` a search request may ask for (`400` beyond).
    pub max_nprobe: usize,
    /// Per-connection socket read timeout (also the shutdown poll tick).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout: a client that stops reading
    /// its response gets disconnected instead of pinning a worker.
    pub write_timeout: Duration,
    /// Consecutive read-timeout ticks tolerated mid-request before `408`.
    pub partial_timeout_ticks: u32,
    /// Consecutive read-timeout ticks an idle keep-alive connection may
    /// hold a worker before being closed.
    pub idle_timeout_ticks: u32,
    /// Searches slower than this (end-to-end, milliseconds) are recorded
    /// in the collection's event journal with their parameters and stage
    /// breakdown. `0` disables the slow-query log.
    pub slow_query_ms: u64,
    /// Capacity of each collection's in-memory event journal (applied at
    /// startup; open-time events are preserved).
    pub events_capacity: usize,
    /// Default search deadline, milliseconds, applied when a request
    /// omits `timeout_ms`. `0` means no deadline. The deadline is stamped
    /// at admission; an expired search is answered `504` — dropped from
    /// the queue before dispatch, or cooperatively cancelled mid-scan.
    pub default_timeout_ms: u64,
    /// Upper bound a request's `timeout_ms` is clamped to (`0` disables
    /// the cap). Keeps one client from opting out of deadline discipline.
    pub max_timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 8,
            conn_backlog: 128,
            max_body: 1 << 20, // 1 MiB
            batching: true,
            batch: BatchConfig::default(),
            default_k: 10,
            default_nprobe: 32,
            max_k: 4096,
            max_nprobe: 65536,
            read_timeout: Duration::from_millis(100),
            write_timeout: Duration::from_secs(5),
            partial_timeout_ticks: 20,
            idle_timeout_ticks: 600,
            slow_query_ms: 0,
            events_capacity: 256,
            default_timeout_ms: 0,
            max_timeout_ms: 60_000,
        }
    }
}

/// One collection as served: lock-free read handle + batcher for
/// searches, mutex-serialized writer for mutations.
pub(crate) struct ServedCollection {
    pub(crate) writer: Mutex<Collection>,
    pub(crate) reader: CollectionReader,
    pub(crate) batcher: Batcher,
}

/// Shared server state, one `Arc` per thread.
pub(crate) struct ServerState {
    pub(crate) config: ServeConfig,
    pub(crate) collections: HashMap<String, Arc<ServedCollection>>,
    pub(crate) default_name: String,
    pub(crate) metrics: Arc<ServerMetrics>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) started: Instant,
    /// Seed sequence for direct-mode (unbatched) searches.
    pub(crate) direct_seq: AtomicU64,
}

struct ConnQueue {
    queue: Mutex<(VecDeque<TcpStream>, bool)>, // (connections, shutdown)
    ready: Condvar,
}

/// A running server; dropping it (or calling [`Server::shutdown`]) stops
/// it gracefully.
pub struct Server {
    addr: SocketAddr,
    state: Arc<ServerState>,
    conns: Arc<ConnQueue>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts serving `collections` (name → open collection).
    /// The first name in the list is also reachable via the unprefixed
    /// `/search`, `/insert`, `/delete` routes.
    pub fn start(
        config: ServeConfig,
        collections: Vec<(String, Collection)>,
    ) -> io::Result<Server> {
        assert!(!collections.is_empty(), "need at least one collection");
        assert!(config.workers > 0, "need at least one worker");
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let metrics = Arc::new(ServerMetrics::new());
        let default_name = collections[0].0.clone();
        let mut map = HashMap::new();
        for (name, collection) in collections {
            collection
                .metrics()
                .journal
                .set_capacity(config.events_capacity);
            let reader = collection.reader();
            let batcher = Batcher::start(reader.clone(), config.batch.clone(), metrics.clone());
            map.insert(
                name,
                Arc::new(ServedCollection {
                    writer: Mutex::new(collection),
                    reader,
                    batcher,
                }),
            );
        }
        let state = Arc::new(ServerState {
            config: config.clone(),
            collections: map,
            default_name,
            metrics,
            shutdown: AtomicBool::new(false),
            started: Instant::now(),
            direct_seq: AtomicU64::new(0),
        });
        let conns = Arc::new(ConnQueue {
            queue: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        });

        let acceptor = {
            let state = state.clone();
            let conns = conns.clone();
            std::thread::Builder::new()
                .name("rabitq-acceptor".into())
                .spawn(move || accept_loop(&listener, &state, &conns))
                .expect("spawn acceptor")
        };
        let workers = (0..config.workers)
            .map(|i| {
                let state = state.clone();
                let conns = conns.clone();
                std::thread::Builder::new()
                    .name(format!("rabitq-conn-{i}"))
                    .spawn(move || worker_loop(&state, &conns))
                    .expect("spawn connection worker")
            })
            .collect();

        Ok(Server {
            addr,
            state,
            conns,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared metrics handle.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        self.state.metrics.clone()
    }

    /// Gracefully stops: drains in-flight requests (see the module docs
    /// for the ordering), joins every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.state.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Wake workers parked on the connection queue.
        {
            let mut q = self.conns.queue.lock().unwrap_or_else(|e| e.into_inner());
            q.1 = true;
        }
        self.conns.ready.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            acceptor.join().ok();
        }
        for w in self.workers.drain(..) {
            w.join().ok();
        }
        // Workers are gone; no submitter remains. Drain each batcher.
        for served in self.state.collections.values() {
            served.batcher.initiate_shutdown();
        }
        // Batcher joins happen in their Drop impls when the state Arc
        // unwinds; trigger the drain explicitly here so `shutdown`
        // returning means "fully quiesced".
        for served in self.state.collections.values() {
            while served.batcher.queue_len() > 0 {
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(listener: &TcpListener, state: &ServerState, conns: &ConnQueue) {
    loop {
        if state.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(state.config.read_timeout))
                    .ok();
                // A write timeout too: without it, a client that stops
                // reading blocks write_all forever once the socket buffer
                // fills, pinning this worker and hanging shutdown's join.
                stream
                    .set_write_timeout(Some(state.config.write_timeout))
                    .ok();
                let mut q = conns.queue.lock().unwrap_or_else(|e| e.into_inner());
                if q.0.len() >= state.config.conn_backlog {
                    drop(q);
                    // Over backlog: fail fast so the client can back off,
                    // instead of queueing into unbounded latency.
                    state
                        .metrics
                        .shed_unavailable
                        .fetch_add(1, Ordering::Relaxed);
                    state.metrics.count_response(503);
                    let mut conn = HttpConn::new(stream);
                    conn.write_response(&Response::error(503, "connection backlog full"), false)
                        .ok();
                    continue;
                }
                q.0.push_back(stream);
                drop(q);
                conns.ready.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn worker_loop(state: &ServerState, conns: &ConnQueue) {
    loop {
        let stream = {
            let mut q = conns.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(stream) = q.0.pop_front() {
                    break stream;
                }
                if q.1 {
                    return; // shutdown with nothing queued
                }
                q = conns.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        // During shutdown, drop still-queued (never-read) connections.
        if state.shutdown.load(Ordering::Relaxed) {
            continue;
        }
        handle_connection(state, stream);
    }
}

/// Serves one connection's keep-alive loop until close, error, idle
/// expiry, or shutdown.
fn handle_connection(state: &ServerState, stream: TcpStream) {
    let mut conn = HttpConn::new(stream);
    let mut timeout_ticks = 0u32;
    loop {
        match conn.read_request(state.config.max_body) {
            ReadOutcome::Request(req) => {
                timeout_ticks = 0;
                state.metrics.requests.fetch_add(1, Ordering::Relaxed);
                let resp = router::handle(state, &req);
                state.metrics.count_response(resp.status);
                let shutting_down = state.shutdown.load(Ordering::Relaxed);
                let keep = req.keep_alive && !shutting_down;
                if conn.write_response(&resp, keep).is_err() {
                    return;
                }
                if !keep || resp.close {
                    return;
                }
            }
            ReadOutcome::Closed | ReadOutcome::Disconnected => return,
            ReadOutcome::Timeout { partial } => {
                if state.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                timeout_ticks += 1;
                if partial && timeout_ticks > state.config.partial_timeout_ticks {
                    state.metrics.count_response(408);
                    conn.write_response(&Response::error(408, "request timed out"), false)
                        .ok();
                    return;
                }
                if !partial && timeout_ticks > state.config.idle_timeout_ticks {
                    return; // reclaim the worker from an idle connection
                }
            }
            ReadOutcome::Error(e) => {
                state.metrics.count_response(e.status);
                conn.write_response(&Response::error(e.status, &e.message), false)
                    .ok();
                return;
            }
        }
    }
}
