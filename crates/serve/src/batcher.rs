//! The batching queue: concurrent search requests are coalesced into
//! `Snapshot::search_many` calls, with admission control in front.
//!
//! ## Shape
//!
//! Connection workers call [`Batcher::submit`], which enqueues the query
//! into a **bounded** queue and blocks on a per-request response slot. A
//! dedicated batch worker drains up to `max_batch` requests at a time —
//! waiting up to `linger` for stragglers when the queue is shallower than
//! a full batch — groups them by `(k, nprobe)`, and executes each group
//! as **one** `search_many` call over the persistent store worker pool
//! (thread-local `QueryScratch`/`SearchScratch` reuse, zero steady-state
//! allocations).
//!
//! ## Backpressure invariants
//!
//! * The queue never holds more than `queue_depth` requests: admission is
//!   checked under the queue lock, and overflow is answered immediately
//!   with [`SubmitError::Overloaded`] (HTTP `429`) — queue memory and
//!   queueing delay are both bounded by configuration, never by load.
//! * After [`Batcher::initiate_shutdown`], new submissions fail fast with
//!   [`SubmitError::ShuttingDown`] (HTTP `503`), but everything already
//!   admitted **is still executed and answered**: the shutdown flag and
//!   the queue live under one mutex, so a request is either rejected or
//!   fully served — never silently dropped.
//! * A panic while executing a batch is confined to that batch: it is
//!   caught, every slot in the batch is answered with
//!   [`SubmitError::Failed`] (HTTP `500`), and the worker keeps serving.
//!   Should the worker thread die anyway, a drop guard answers every
//!   queued request with `Failed` and flags the worker dead so later
//!   submissions fail fast — a submitter never blocks on a worker that
//!   can no longer answer.
//!
//! ## Deadlines
//!
//! A submission may carry a deadline (stamped by the router at
//! admission). Expired entries are answered [`SubmitError::Expired`]
//! (HTTP `504`) **before** dispatch — queue time counts against the
//! deadline, and a request nobody is waiting for never spends a batch
//! slot. Entries whose deadline passes mid-scan are cooperatively
//! cancelled inside `search_many_cancellable` at per-probe checkpoints;
//! cancellation is per-query, so an expired request never perturbs its
//! batchmates (their results stay bit-identical to an all-healthy run).

use crate::metrics::ServerMetrics;
use rabitq_ivf::SearchResult;
use rabitq_store::{CancelToken, CollectionReader, ParallelOptions, SearchOutcome};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning for one collection's batcher.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// Most searches coalesced into one `search_many` call.
    pub max_batch: usize,
    /// How long to wait for a fuller batch once at least one request is
    /// queued. Zero disables lingering.
    pub linger: Duration,
    /// Admission bound: queued-but-unexecuted requests beyond this are
    /// shed with `429`.
    pub queue_depth: usize,
    /// Thread budget handed to `search_many` per executed batch.
    pub search_threads: usize,
    /// Seed for the deterministic per-(query, segment) RNG derivation.
    pub seed: u64,
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            linger: Duration::from_micros(100),
            queue_depth: 256,
            search_threads: std::thread::available_parallelism().map_or(2, |p| p.get()),
            seed: 0xBA7C_4ED5,
        }
    }
}

/// Why a submission was rejected or failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// Admission queue is at `queue_depth` — shed, retry later (`429`).
    Overloaded,
    /// The server is draining for shutdown (`503`).
    ShuttingDown,
    /// Batch execution panicked, or the batch worker died (`500`). The
    /// request was admitted but could not be answered with a result.
    Failed,
    /// The request's deadline passed before a result was produced
    /// (`504`) — at admission, while queued, or mid-scan.
    Expired,
}

/// One admitted search waiting for its batch.
struct Pending {
    query: Vec<f32>,
    k: usize,
    nprobe: usize,
    /// Trips when the request's deadline passes; checked before dispatch
    /// and at every scan checkpoint.
    token: CancelToken,
    slot: Arc<Slot>,
}

/// The rendezvous a submitter blocks on.
struct Slot {
    result: Mutex<Option<Result<SearchResult, SubmitError>>>,
    ready: Condvar,
}

impl Slot {
    /// Fills the slot (first write wins) and wakes the submitter.
    fn answer(&self, value: Result<SearchResult, SubmitError>) {
        let mut guard = self.result.lock().unwrap_or_else(|e| e.into_inner());
        if guard.is_none() {
            *guard = Some(value);
            self.ready.notify_one();
        }
    }

    /// Whether the slot is still waiting for an answer.
    fn is_empty(&self) -> bool {
        self.result
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_none()
    }
}

struct State {
    queue: VecDeque<Pending>,
    shutdown: bool,
    /// The batch worker exited (normally or by panic); nothing will drain
    /// the queue anymore.
    worker_dead: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Wakes the batch worker (new work or shutdown).
    work: Condvar,
    config: BatchConfig,
    reader: CollectionReader,
    metrics: Arc<ServerMetrics>,
}

/// The per-collection coalescing engine. Dropping without
/// [`Batcher::shutdown`] also drains cleanly.
pub struct Batcher {
    shared: Arc<Shared>,
    worker: Option<std::thread::JoinHandle<()>>,
}

impl Batcher {
    /// Starts the batch worker for `reader`.
    pub fn start(
        reader: CollectionReader,
        config: BatchConfig,
        metrics: Arc<ServerMetrics>,
    ) -> Self {
        assert!(config.max_batch > 0, "max_batch must be positive");
        assert!(config.queue_depth > 0, "queue_depth must be positive");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
                worker_dead: false,
            }),
            work: Condvar::new(),
            config,
            reader,
            metrics,
        });
        let worker = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("rabitq-batcher".into())
                .spawn(move || batch_loop(&shared))
                .expect("spawn batch worker")
        };
        Self {
            shared,
            worker: Some(worker),
        }
    }

    /// Submits one search and blocks until its batch executes. Fails fast
    /// (without blocking) when the queue is full, shutdown has begun, or
    /// `deadline` has already passed.
    pub fn submit(
        &self,
        query: Vec<f32>,
        k: usize,
        nprobe: usize,
        deadline: Option<Instant>,
    ) -> Result<SearchResult, SubmitError> {
        let token = deadline.map_or_else(CancelToken::none, CancelToken::with_deadline);
        if token.is_cancelled() {
            self.shared
                .metrics
                .expired_in_queue
                .fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Expired);
        }
        let slot = Arc::new(Slot {
            result: Mutex::new(None),
            ready: Condvar::new(),
        });
        {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if state.worker_dead {
                return Err(SubmitError::Failed);
            }
            if state.queue.len() >= self.shared.config.queue_depth {
                return Err(SubmitError::Overloaded);
            }
            state.queue.push_back(Pending {
                query,
                k,
                nprobe,
                token,
                slot: slot.clone(),
            });
        }
        self.shared.work.notify_one();

        let mut result = slot.result.lock().unwrap_or_else(|e| e.into_inner());
        while result.is_none() {
            result = slot.ready.wait(result).unwrap_or_else(|e| e.into_inner());
        }
        result.take().expect("slot filled")
    }

    /// Requests queued right now (test/stats hook).
    pub fn queue_len(&self) -> usize {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .queue
            .len()
    }

    /// Flags shutdown: subsequent submissions are rejected, everything
    /// already admitted still executes. Does not block.
    pub fn initiate_shutdown(&self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.shutdown = true;
        drop(state);
        self.shared.work.notify_all();
    }

    /// Initiates shutdown and joins the batch worker after it drains the
    /// queue.
    pub fn shutdown(mut self) {
        self.initiate_shutdown();
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.initiate_shutdown();
        if let Some(worker) = self.worker.take() {
            worker.join().ok();
        }
    }
}

/// Answers every queued request with `Failed` and flags the worker dead
/// when the batch worker exits — by clean shutdown (queue already empty)
/// or by a panic that escaped the per-batch isolation. Without this, a
/// submitter blocked on its slot would wait forever.
struct DeadWorkerGuard<'a>(&'a Shared);

impl Drop for DeadWorkerGuard<'_> {
    fn drop(&mut self) {
        let mut state = self.0.state.lock().unwrap_or_else(|e| e.into_inner());
        state.worker_dead = true;
        let orphans: Vec<Pending> = state.queue.drain(..).collect();
        drop(state);
        for p in orphans {
            p.slot.answer(Err(SubmitError::Failed));
        }
    }
}

/// The batch worker: drain → linger → group → execute, until shutdown
/// with an empty queue.
fn batch_loop(shared: &Shared) {
    let _guard = DeadWorkerGuard(shared);
    let config = &shared.config;
    let mut state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        // Wait for work (or shutdown).
        while state.queue.is_empty() && !state.shutdown {
            state = shared.work.wait(state).unwrap_or_else(|e| e.into_inner());
        }
        if state.queue.is_empty() && state.shutdown {
            return;
        }

        // Linger for a fuller batch — but never during shutdown, and only
        // while the batch is not already full.
        if !state.shutdown && !config.linger.is_zero() && state.queue.len() < config.max_batch {
            let deadline = Instant::now() + config.linger;
            while state.queue.len() < config.max_batch && !state.shutdown {
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                let (next, timeout) = shared
                    .work
                    .wait_timeout(state, remaining)
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
                if timeout.timed_out() {
                    break;
                }
            }
        }

        let take = state.queue.len().min(config.max_batch);
        let drained: Vec<Pending> = state.queue.drain(..take).collect();
        drop(state);

        // Queue time counted against the deadline: entries that expired
        // while waiting are answered 504 here, before dispatch, so no
        // scan work is spent on an answer nobody is waiting for.
        let (batch, expired): (Vec<Pending>, Vec<Pending>) =
            drained.into_iter().partition(|p| !p.token.is_cancelled());
        for p in &expired {
            shared
                .metrics
                .expired_in_queue
                .fetch_add(1, Ordering::Relaxed);
            p.slot.answer(Err(SubmitError::Expired));
        }

        // Panic isolation: a panic inside search execution (bad index
        // state, assertion in search_many, …) must not kill the worker —
        // that would strand every queued and future submitter.
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| execute(shared, &batch)));
        if outcome.is_err() {
            eprintln!(
                "rabitq-batcher: batch of {} panicked; answering with Failed",
                batch.len()
            );
        }
        // Whatever happened — panic mid-batch or a result-count mismatch —
        // every slot gets answered; unfilled ones with `Failed`.
        for p in &batch {
            if p.slot.is_empty() {
                p.slot.answer(Err(SubmitError::Failed));
            }
        }

        state = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    }
}

/// Runs one drained batch: group by `(k, nprobe)`, one cancellable
/// `search_many` per group, answer every slot. A query whose deadline
/// passes mid-scan comes back `Cancelled` and is answered `Expired`,
/// without perturbing its batchmates.
fn execute(shared: &Shared, batch: &[Pending]) {
    if batch.is_empty() {
        return;
    }
    shared.metrics.record_batch(batch.len());
    let dim = shared.reader.dim();
    let snapshot = shared.reader.snapshot();

    // Group indices by (k, nprobe); batches are small, linear scan is fine.
    let mut groups: Vec<((usize, usize), Vec<usize>)> = Vec::new();
    for (i, p) in batch.iter().enumerate() {
        let key = (p.k, p.nprobe);
        match groups.iter_mut().find(|(g, _)| *g == key) {
            Some((_, members)) => members.push(i),
            None => groups.push((key, vec![i])),
        }
    }

    for ((k, nprobe), members) in groups {
        let mut queries = Vec::with_capacity(members.len() * dim);
        let mut tokens = Vec::with_capacity(members.len());
        for &i in &members {
            queries.extend_from_slice(&batch[i].query);
            tokens.push(batch[i].token.clone());
        }
        let opts = ParallelOptions {
            threads: shared.config.search_threads,
            seed: shared.config.seed,
        };
        let outcomes = snapshot.search_many_cancellable(&queries, k, nprobe, opts, &tokens);
        for (&i, outcome) in members.iter().zip(outcomes) {
            match outcome {
                SearchOutcome::Done(result) => batch[i].slot.answer(Ok(result)),
                SearchOutcome::Cancelled => {
                    shared
                        .metrics
                        .cancelled_mid_scan
                        .fetch_add(1, Ordering::Relaxed);
                    batch[i].slot.answer(Err(SubmitError::Expired));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_store::{Collection, CollectionConfig};

    fn test_reader(
        dir: &std::path::Path,
        dim: usize,
        rows: usize,
    ) -> (Collection, CollectionReader) {
        std::fs::remove_dir_all(dir).ok();
        let mut config = CollectionConfig::new(dim);
        config.memtable_capacity = rows.max(2) / 2; // force at least one seal
        let mut collection = Collection::open(dir, config).unwrap();
        for i in 0..rows {
            let v: Vec<f32> = (0..dim).map(|d| (i * dim + d) as f32 * 0.01).collect();
            collection.insert(&v).unwrap();
        }
        let reader = collection.reader();
        (collection, reader)
    }

    #[test]
    fn coalesces_and_answers_every_request() {
        let dir = std::env::temp_dir().join(format!("batcher-basic-{}", std::process::id()));
        let (_collection, reader) = test_reader(&dir, 4, 64);
        let batcher = Arc::new(Batcher::start(
            reader,
            BatchConfig {
                linger: Duration::from_millis(5),
                ..BatchConfig::default()
            },
            Arc::new(ServerMetrics::new()),
        ));
        let clients: Vec<_> = (0..16)
            .map(|i| {
                let batcher = batcher.clone();
                std::thread::spawn(move || {
                    let q: Vec<f32> = (0..4).map(|d| (i * 4 + d) as f32 * 0.01).collect();
                    batcher.submit(q, 3, 4, None).unwrap()
                })
            })
            .collect();
        for (i, c) in clients.into_iter().enumerate() {
            let res = c.join().unwrap();
            assert_eq!(res.neighbors.len(), 3);
            // Self-lookup: query i equals row i exactly.
            assert_eq!(res.neighbors[0].0, i as u32, "client {i}");
            assert!(res.neighbors[0].1 < 1e-9);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overflow_is_shed_not_queued() {
        let dir = std::env::temp_dir().join(format!("batcher-shed-{}", std::process::id()));
        let (_collection, reader) = test_reader(&dir, 4, 16);
        let batcher = Arc::new(Batcher::start(
            reader,
            BatchConfig {
                max_batch: 1,
                linger: Duration::from_millis(50),
                queue_depth: 2,
                search_threads: 1,
                seed: 1,
            },
            Arc::new(ServerMetrics::new()),
        ));
        // Saturate from many threads; with depth 2 and a 50ms linger per
        // singleton batch, some submissions must shed.
        let clients: Vec<_> = (0..12)
            .map(|_| {
                let batcher = batcher.clone();
                std::thread::spawn(move || batcher.submit(vec![0.0; 4], 1, 2, None))
            })
            .collect();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        let shed = outcomes
            .iter()
            .filter(|o| matches!(o, Err(SubmitError::Overloaded)))
            .count();
        let served = outcomes.iter().filter(|o| o.is_ok()).count();
        assert!(shed > 0, "expected at least one shed, got {outcomes:?}");
        assert!(served > 0, "expected at least one served");
        assert_eq!(shed + served, 12);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn panicking_batch_answers_failed_and_worker_survives() {
        let dir = std::env::temp_dir().join(format!("batcher-panic-{}", std::process::id()));
        let (_collection, reader) = test_reader(&dir, 4, 16);
        let batcher = Batcher::start(
            reader,
            BatchConfig {
                linger: Duration::ZERO,
                search_threads: 1,
                ..BatchConfig::default()
            },
            Arc::new(ServerMetrics::new()),
        );
        // A 3-float query against a dim-4 collection trips search_many's
        // "n × dim" assertion inside the batch worker.
        assert!(matches!(
            batcher.submit(vec![0.0; 3], 1, 2, None),
            Err(SubmitError::Failed)
        ));
        // The worker survived the panic: a valid submission still works.
        let res = batcher.submit(vec![0.0; 4], 1, 2, None).unwrap();
        assert_eq!(res.neighbors.len(), 1);
        batcher.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expired_deadlines_answer_504_without_dispatch() {
        let dir = std::env::temp_dir().join(format!("batcher-deadline-{}", std::process::id()));
        let (_collection, reader) = test_reader(&dir, 4, 16);
        let metrics = Arc::new(ServerMetrics::new());
        let batcher = Batcher::start(
            reader,
            BatchConfig {
                linger: Duration::from_millis(50),
                search_threads: 1,
                ..BatchConfig::default()
            },
            metrics.clone(),
        );
        // Already dead at admission: rejected before touching the queue.
        assert!(matches!(
            batcher.submit(
                vec![0.0; 4],
                1,
                2,
                Some(Instant::now() - Duration::from_millis(1)),
            ),
            Err(SubmitError::Expired)
        ));
        // Dies while lingering in the queue: dropped before dispatch.
        assert!(matches!(
            batcher.submit(
                vec![0.0; 4],
                1,
                2,
                Some(Instant::now() + Duration::from_millis(2)),
            ),
            Err(SubmitError::Expired)
        ));
        assert_eq!(metrics.expired_in_queue.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.cancelled_mid_scan.load(Ordering::Relaxed), 0);
        // A generous deadline still gets a real answer.
        let res = batcher
            .submit(
                vec![0.0; 4],
                1,
                2,
                Some(Instant::now() + Duration::from_secs(60)),
            )
            .unwrap();
        assert_eq!(res.neighbors.len(), 1);
        batcher.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let dir = std::env::temp_dir().join(format!("batcher-drain-{}", std::process::id()));
        let (_collection, reader) = test_reader(&dir, 4, 16);
        let batcher = Arc::new(Batcher::start(
            reader,
            BatchConfig {
                max_batch: 4,
                linger: Duration::from_millis(200),
                queue_depth: 64,
                search_threads: 1,
                seed: 1,
            },
            Arc::new(ServerMetrics::new()),
        ));
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let batcher = batcher.clone();
                std::thread::spawn(move || batcher.submit(vec![0.0; 4], 1, 2, None))
            })
            .collect();
        // Let them enqueue into the lingering batch, then shut down.
        while batcher.queue_len() == 0 {
            std::thread::yield_now();
        }
        batcher.initiate_shutdown();
        for c in clients {
            let res = c.join().unwrap();
            match res {
                Ok(r) => assert_eq!(r.neighbors.len(), 1),
                // A client that lost the race to the shutdown flag gets a
                // clean rejection, never a hang.
                Err(e) => assert_eq!(e, SubmitError::ShuttingDown),
            }
        }
        // Post-shutdown submissions are rejected.
        assert!(matches!(
            batcher.submit(vec![0.0; 4], 1, 2, None),
            Err(SubmitError::ShuttingDown)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
