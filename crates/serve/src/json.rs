//! A tiny, std-only JSON encoder/parser shared by every endpoint.
//!
//! One [`Json`] tree type, a strict recursive-descent parser (full-input,
//! depth-limited, UTF-8 escapes, surrogate pairs), and an encoder whose
//! float formatting round-trips through Rust's shortest-representation
//! `Display`. Exists so no endpoint ever ad-hoc-formats or ad-hoc-scrapes
//! a body string — malformed input is rejected in exactly one place.

use std::fmt;

/// Maximum nesting depth the parser accepts — bounds stack use on
/// adversarial bodies like `[[[[...]]]]`.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like every browser).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a human-readable reason.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an
    /// error.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.error("trailing characters after document"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to a compact JSON string.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Appends the compact serialization to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_f64(*n, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

/// Writes `n` as JSON: shortest round-tripping decimal for finite values,
/// `null` for NaN/infinity (which JSON cannot represent).
fn write_f64(n: f64, out: &mut String) {
    use fmt::Write;
    if n.is_finite() {
        write!(out, "{n}").expect("writing to String cannot fail");
    } else {
        out.push_str("null");
    }
}

/// Writes `s` as a quoted JSON string, escaping quotes, backslashes, and
/// control characters.
fn write_escaped(s: &str, out: &mut String) {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.error("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.error("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.error(format!("unexpected character {:?}", b as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a run of plain bytes at once.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // Input is &str, so byte runs between structural chars are
                // valid UTF-8.
                s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
            }
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut s)?;
                }
                Some(_) => return Err(self.error("unescaped control character in string")),
            }
        }
    }

    fn escape(&mut self, s: &mut String) -> Result<(), JsonError> {
        let Some(b) = self.peek() else {
            return Err(self.error("unterminated escape"));
        };
        self.pos += 1;
        match b {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'b' => s.push('\u{8}'),
            b'f' => s.push('\u{c}'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a low surrogate right after.
                    if self.peek() != Some(b'\\') {
                        return Err(self.error("unpaired surrogate"));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.error("unpaired surrogate"));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.error("invalid low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.error("unpaired low surrogate"));
                } else {
                    hi
                };
                s.push(char::from_u32(code).ok_or_else(|| self.error("invalid code point"))?);
            }
            other => {
                return Err(self.error(format!("invalid escape \\{}", other as char)));
            }
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.error("truncated \\u escape"));
            };
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.error("invalid hex digit in \\u escape")),
            };
            v = v * 16 + u32::from(digit);
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit run (no leading zeros).
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.error("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.error("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| self.error(format!("invalid number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.error("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

/// Convenience constructor for an object literal.
#[macro_export]
macro_rules! json_obj {
    ($($key:expr => $value:expr),* $(,)?) => {
        $crate::json::Json::Obj(vec![
            $(($key.to_string(), $crate::json::Json::from($value))),*
        ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-1", "3.25", "\"hi\""] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.encode(), text, "round-trip of {text}");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#" {"a": [1, 2.5, {"b": null}], "c": "x"} "#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn float_encoding_round_trips_exactly() {
        for n in [
            0.0,
            -0.0,
            1.0,
            -1.5,
            0.1,
            1e-10,
            1.7976931348623157e308,
            5e-324,
            123456789.123456789,
        ] {
            let encoded = Json::Num(n).encode();
            let back = Json::parse(&encoded).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), (n as f64).to_bits(), "{n} -> {encoded}");
        }
    }

    #[test]
    fn non_finite_floats_encode_as_null() {
        assert_eq!(Json::Num(f64::NAN).encode(), "null");
        assert_eq!(Json::Num(f64::INFINITY).encode(), "null");
    }

    #[test]
    fn escapes_encode_and_parse() {
        let s = "quote\" back\\ newline\n tab\t ctrl\u{1} unicode\u{1F600}";
        let encoded = Json::Str(s.to_string()).encode();
        assert!(encoded.contains("\\\"") && encoded.contains("\\n") && encoded.contains("\\u0001"));
        assert_eq!(Json::parse(&encoded).unwrap().as_str(), Some(s));
        // \u escapes with surrogate pairs decode too.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("\u{1F600}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "{a:1}",
            "01",
            "1.",
            ".5",
            "+1",
            "1e",
            "nul",
            "tru",
            "\"unterminated",
            "\"bad\\escape\"",
            "\"\\u12g4\"",
            "\"\\ud800\"",
            "[1] trailing",
            "{\"a\":1,}",
            "[1,]",
            "\u{1}",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn rejects_unescaped_control_chars_in_strings() {
        assert!(Json::parse("\"a\u{0}b\"").is_err());
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(32) + &"]".repeat(32);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn u64_accessor_is_exact_integers_only() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn json_obj_macro_builds_objects() {
        let v = json_obj! {"status" => "ok", "n" => 3usize, "flag" => true};
        assert_eq!(v.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.encode(), r#"{"status":"ok","n":3,"flag":true}"#);
    }
}
