//! Property-based tests for the HNSW graph index.

use proptest::prelude::*;
use rabitq_hnsw::{Hnsw, HnswConfig};
use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(n: usize, dim: usize, seed: u64) -> (Vec<f32>, Hnsw) {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
    let index = Hnsw::build(
        &data,
        dim,
        HnswConfig {
            m: 8,
            ef_construction: 60,
            seed,
        },
    );
    (data, index)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn results_sorted_with_exact_distances(n in 5usize..200, seed in 0u64..100) {
        let dim = 8;
        let (data, index) = build(n, dim, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 7);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let got = index.search(&query, 5, 40);
        prop_assert!(got.len() <= 5.min(n));
        prop_assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        for &(id, d) in &got {
            let exact = vecs::l2_sq(&data[id as usize * dim..(id as usize + 1) * dim], &query);
            prop_assert!((d - exact).abs() < 1e-4);
        }
    }

    #[test]
    fn no_duplicate_ids_in_answers(n in 5usize..150, seed in 0u64..100, k in 1usize..10) {
        let (_, index) = build(n, 6, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 3);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, 6);
        let got = index.search(&query, k, 50);
        let mut ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), got.len());
    }

    #[test]
    fn self_query_returns_self_first(n in 3usize..100, seed in 0u64..100) {
        let dim = 6;
        let (data, index) = build(n, dim, seed);
        // Query with a stored vector: it must rank first at distance 0.
        let probe = n / 2;
        let got = index.search(&data[probe * dim..(probe + 1) * dim], 1, 60);
        prop_assert_eq!(got[0].1, 0.0);
        // (Ties with duplicate points are possible but measure-zero with
        // Gaussian data; still accept any zero-distance id.)
        let exact = vecs::l2_sq(
            &data[got[0].0 as usize * dim..(got[0].0 as usize + 1) * dim],
            &data[probe * dim..(probe + 1) * dim],
        );
        prop_assert_eq!(exact, 0.0);
    }

    #[test]
    fn incremental_insert_matches_batch_build(n in 5usize..80, seed in 0u64..50) {
        let dim = 4;
        let mut rng = StdRng::seed_from_u64(seed);
        let data = rabitq_math::rng::standard_normal_vec(&mut rng, n * dim);
        let cfg = HnswConfig { m: 8, ef_construction: 60, seed };
        let batch = Hnsw::build(&data, dim, cfg);
        let mut incremental = Hnsw::new(dim, cfg);
        for row in data.chunks_exact(dim) {
            incremental.insert(row);
        }
        // Identical construction path ⇒ identical graphs ⇒ identical answers.
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        prop_assert_eq!(batch.search(&query, 3, 30), incremental.search(&query, 3, 30));
    }
}
