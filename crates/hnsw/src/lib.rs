//! # rabitq-hnsw — Hierarchical Navigable Small World graphs
//!
//! A from-scratch implementation of HNSW (Malkov & Yashunin, TPAMI 2020),
//! the graph-based baseline of the RaBitQ paper's Figure 4. It follows the
//! original paper's algorithms: greedy descent through the layer hierarchy
//! (Alg. 2 with `ef = 1` above the target layer), best-first beam search
//! within a layer (Alg. 2), and the *heuristic* neighbor selection with
//! pruning (Alg. 4), which is what hnswlib ships.
//!
//! Parameters mirror the paper's setup: `M = 16` (so the base layer allows
//! 32 out-edges — "maximum out-degree 32, M_HNSW = 16"), and
//! `efConstruction = 500`; `efSearch` sweeps the QPS–recall trade-off.

use rabitq_math::vecs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct HnswConfig {
    /// Out-degree budget `M` for upper layers; the base layer allows `2M`.
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Seed for the level sampler.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        // The paper's Figure 4 setup.
        Self {
            m: 16,
            ef_construction: 500,
            seed: 0x4452,
        }
    }
}

/// Ordered pair for the max-heap of current bests.
#[derive(PartialEq)]
struct Candidate(f32, u32);

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .total_cmp(&other.0)
            .then_with(|| self.1.cmp(&other.1))
    }
}

/// Per-node adjacency: one neighbor list per layer the node exists on.
#[derive(Clone, Debug, Default)]
struct Node {
    neighbors: Vec<Vec<u32>>,
}

/// The plain-data decomposition of an [`Hnsw`] index, produced by
/// [`Hnsw::to_parts`] and consumed by [`Hnsw::from_parts`]. Callers that
/// persist graphs (e.g. `rabitq-graph`) serialize this.
#[derive(Clone, Debug)]
pub struct HnswParts {
    /// Input dimensionality.
    pub dim: usize,
    /// Construction parameters.
    pub config: HnswConfig,
    /// Flat `n × dim` vector storage.
    pub data: Vec<f32>,
    /// `adjacency[id][layer]` = out-neighbors of `id` on `layer`.
    pub adjacency: Vec<Vec<Vec<u32>>>,
    /// Entry point of the layer hierarchy (meaningless when empty).
    pub entry: u32,
    /// Highest layer any node exists on.
    pub top_layer: usize,
}

/// An HNSW index over owned vectors.
pub struct Hnsw {
    dim: usize,
    config: HnswConfig,
    data: Vec<f32>,
    nodes: Vec<Node>,
    entry: u32,
    max_level: usize,
    level_mult: f64,
    rng: StdRng,
}

impl Hnsw {
    /// Creates an empty index for `dim`-dimensional vectors.
    pub fn new(dim: usize, config: HnswConfig) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert!(config.m >= 2, "M must be at least 2");
        Self {
            dim,
            config,
            data: Vec::new(),
            nodes: Vec::new(),
            entry: 0,
            max_level: 0,
            level_mult: 1.0 / (config.m as f64).ln(),
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    /// Builds an index over a flat `n × dim` buffer.
    pub fn build(data: &[f32], dim: usize, config: HnswConfig) -> Self {
        assert!(data.len().is_multiple_of(dim), "data shape");
        let mut index = Self::new(dim, config);
        for row in data.chunks_exact(dim) {
            index.insert(row);
        }
        index
    }

    /// Number of indexed vectors.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the index is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The stored vector with id `id`.
    #[inline]
    pub fn vector(&self, id: u32) -> &[f32] {
        &self.data[id as usize * self.dim..(id as usize + 1) * self.dim]
    }

    /// Input dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The out-neighbors of `id` on `layer` (empty if the node does not
    /// exist on that layer). Exposed so quantized traversals
    /// (`rabitq-graph`) can walk the graph with their own distance
    /// function.
    #[inline]
    pub fn neighbors(&self, id: u32, layer: usize) -> &[u32] {
        self.nodes[id as usize]
            .neighbors
            .get(layer)
            .map_or(&[], |l| l.as_slice())
    }

    /// The current entry point of the layer hierarchy, or `None` while
    /// the index is empty.
    #[inline]
    pub fn entry_point(&self) -> Option<u32> {
        if self.is_empty() {
            None
        } else {
            Some(self.entry)
        }
    }

    /// The highest layer any node exists on.
    #[inline]
    pub fn top_layer(&self) -> usize {
        self.max_level
    }

    #[inline]
    fn distance(&self, id: u32, query: &[f32]) -> f32 {
        vecs::l2_sq(self.vector(id), query)
    }

    fn max_degree(&self, layer: usize) -> usize {
        if layer == 0 {
            self.config.m * 2
        } else {
            self.config.m
        }
    }

    /// Inserts a vector, returning its id (Alg. 1 of the HNSW paper).
    pub fn insert(&mut self, vector: &[f32]) -> u32 {
        assert_eq!(vector.len(), self.dim, "vector dimensionality");
        let id = self.nodes.len() as u32;
        self.data.extend_from_slice(vector);
        let level = self.sample_level();
        self.nodes.push(Node {
            neighbors: vec![Vec::new(); level + 1],
        });
        if id == 0 {
            self.entry = 0;
            self.max_level = level;
            return id;
        }

        let mut ep = self.entry;
        // Greedy descent through layers above the node's level.
        let top = self.max_level;
        for layer in ((level + 1)..=top).rev() {
            ep = self.greedy_closest(vector, ep, layer);
        }
        // Beam search + heuristic linking from min(level, top) down to 0.
        for layer in (0..=level.min(top)).rev() {
            let candidates = self.search_layer(vector, &[ep], self.config.ef_construction, layer);
            let selected = self.select_heuristic(&candidates, self.max_degree(layer));
            for &(nbr, _) in &selected {
                self.nodes[id as usize].neighbors[layer].push(nbr);
                self.nodes[nbr as usize].neighbors[layer].push(id);
                self.shrink_if_needed(nbr, layer);
            }
            if let Some(&(closest, _)) = selected.first() {
                ep = closest;
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = id;
        }
        id
    }

    /// Searches the `k` approximate nearest neighbors with beam width
    /// `ef_search` (clamped up to `k`). Returns `(id, squared distance)`
    /// ascending.
    pub fn search(&self, query: &[f32], k: usize, ef_search: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        if self.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut ep = self.entry;
        for layer in (1..=self.max_level).rev() {
            ep = self.greedy_closest(query, ep, layer);
        }
        let ef = ef_search.max(k);
        let mut found = self.search_layer(query, &[ep], ef, 0);
        found.truncate(k);
        found
    }

    /// Exponentially-distributed random level (Alg. 1, line 4).
    fn sample_level(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        (-u.ln() * self.level_mult) as usize
    }

    /// Greedy walk to the locally closest node on `layer` (Alg. 2, ef = 1).
    fn greedy_closest(&self, query: &[f32], start: u32, layer: usize) -> u32 {
        let mut cur = start;
        let mut cur_d = self.distance(cur, query);
        loop {
            let mut improved = false;
            if let Some(nbrs) = self.nodes[cur as usize].neighbors.get(layer) {
                for &nbr in nbrs {
                    let d = self.distance(nbr, query);
                    if d < cur_d {
                        cur = nbr;
                        cur_d = d;
                        improved = true;
                    }
                }
            }
            if !improved {
                return cur;
            }
        }
    }

    /// Best-first beam search on one layer (Alg. 2). Returns up to `ef`
    /// closest nodes, ascending by distance.
    fn search_layer(
        &self,
        query: &[f32],
        entry_points: &[u32],
        ef: usize,
        layer: usize,
    ) -> Vec<(u32, f32)> {
        let mut visited = vec![0u64; self.nodes.len().div_ceil(64)];
        let mark = |set: &mut Vec<u64>, id: u32| {
            let (w, b) = (id as usize / 64, id as usize % 64);
            let seen = set[w] >> b & 1 == 1;
            set[w] |= 1 << b;
            seen
        };
        // `frontier` pops nearest-first; `best` keeps the ef current bests
        // with the farthest on top.
        let mut frontier: BinaryHeap<Reverse<Candidate>> = BinaryHeap::new();
        let mut best: BinaryHeap<Candidate> = BinaryHeap::new();
        for &ep in entry_points {
            if !mark(&mut visited, ep) {
                let d = self.distance(ep, query);
                frontier.push(Reverse(Candidate(d, ep)));
                best.push(Candidate(d, ep));
            }
        }
        while let Some(Reverse(Candidate(d, node))) = frontier.pop() {
            let worst = best.peek().map_or(f32::INFINITY, |c| c.0);
            if d > worst && best.len() >= ef {
                break;
            }
            if let Some(nbrs) = self.nodes[node as usize].neighbors.get(layer) {
                for &nbr in nbrs {
                    if mark(&mut visited, nbr) {
                        continue;
                    }
                    let dn = self.distance(nbr, query);
                    let worst = best.peek().map_or(f32::INFINITY, |c| c.0);
                    if best.len() < ef || dn < worst {
                        frontier.push(Reverse(Candidate(dn, nbr)));
                        best.push(Candidate(dn, nbr));
                        if best.len() > ef {
                            best.pop();
                        }
                    }
                }
            }
        }
        let mut out: Vec<(u32, f32)> = best.into_iter().map(|Candidate(d, id)| (id, d)).collect();
        out.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Heuristic neighbor selection (Alg. 4): keep a candidate only if it
    /// is closer to the query point than to every already-kept neighbor —
    /// this spreads edges across directions and keeps the graph navigable.
    fn select_heuristic(&self, candidates: &[(u32, f32)], m: usize) -> Vec<(u32, f32)> {
        let mut selected: Vec<(u32, f32)> = Vec::with_capacity(m);
        for &(cand, d_cand) in candidates {
            if selected.len() >= m {
                break;
            }
            let dominated = selected
                .iter()
                .any(|&(kept, _)| vecs::l2_sq(self.vector(cand), self.vector(kept)) < d_cand);
            if !dominated {
                selected.push((cand, d_cand));
            }
        }
        // Alg. 4's "keepPrunedConnections": backfill with the nearest
        // pruned candidates so nodes are not left under-connected.
        if selected.len() < m {
            for &(cand, d_cand) in candidates {
                if selected.len() >= m {
                    break;
                }
                if !selected.iter().any(|&(kept, _)| kept == cand) {
                    selected.push((cand, d_cand));
                }
            }
        }
        selected
    }

    /// Re-prunes a node whose neighbor list overflowed its degree budget.
    fn shrink_if_needed(&mut self, node: u32, layer: usize) {
        let cap = self.max_degree(layer);
        let list = &self.nodes[node as usize].neighbors[layer];
        if list.len() <= cap {
            return;
        }
        let base = self.vector(node).to_vec();
        let mut with_d: Vec<(u32, f32)> = list
            .iter()
            .map(|&nbr| (nbr, vecs::l2_sq(self.vector(nbr), &base)))
            .collect();
        with_d.sort_unstable_by(|a, b| a.1.total_cmp(&b.1));
        let kept = self.select_heuristic(&with_d, cap);
        self.nodes[node as usize].neighbors[layer] = kept.into_iter().map(|(id, _)| id).collect();
    }

    /// Decomposes the index into plain data for persistence by callers
    /// (this crate stays IO-free). The inverse is [`Hnsw::from_parts`].
    pub fn to_parts(&self) -> HnswParts {
        HnswParts {
            dim: self.dim,
            config: self.config,
            data: self.data.clone(),
            adjacency: self.nodes.iter().map(|n| n.neighbors.clone()).collect(),
            entry: self.entry,
            top_layer: self.max_level,
        }
    }

    /// Reassembles an index from [`HnswParts`], validating shape and edge
    /// targets. The level-sampler RNG restarts from the configured seed;
    /// levels of future inserts replay the original sequence, which only
    /// affects statistical independence, not correctness.
    pub fn from_parts(parts: HnswParts) -> Result<Self, String> {
        let HnswParts {
            dim,
            config,
            data,
            adjacency,
            entry,
            top_layer,
        } = parts;
        if dim == 0 {
            return Err("dim must be positive".into());
        }
        if data.len() % dim != 0 {
            return Err("data length not a multiple of dim".into());
        }
        let n = data.len() / dim;
        if adjacency.len() != n {
            return Err(format!(
                "{} adjacency lists for {n} vectors",
                adjacency.len()
            ));
        }
        if n > 0 && entry as usize >= n {
            return Err(format!("entry point {entry} out of range"));
        }
        for (id, layers) in adjacency.iter().enumerate() {
            if layers.is_empty() {
                return Err(format!("node {id} exists on no layer"));
            }
            for nbrs in layers {
                if let Some(&bad) = nbrs.iter().find(|&&t| t as usize >= n) {
                    return Err(format!("node {id} links to out-of-range {bad}"));
                }
            }
        }
        if n > 0 {
            let entry_layers = adjacency[entry as usize].len();
            if entry_layers <= top_layer {
                return Err(format!(
                    "entry point spans {entry_layers} layers but top layer is {top_layer}"
                ));
            }
        }
        let level_mult = 1.0 / (config.m as f64).ln();
        Ok(Self {
            dim,
            config,
            data,
            nodes: adjacency
                .into_iter()
                .map(|neighbors| Node { neighbors })
                .collect(),
            entry,
            max_level: top_layer,
            level_mult,
            rng: StdRng::seed_from_u64(config.seed),
        })
    }

    /// Graph diagnostics: (number of layers, average base-layer degree).
    pub fn graph_stats(&self) -> (usize, f64) {
        if self.is_empty() {
            return (0, 0.0);
        }
        let total_deg: usize = self
            .nodes
            .iter()
            .map(|n| n.neighbors.first().map_or(0, |l| l.len()))
            .sum();
        (
            self.max_level + 1,
            total_deg as f64 / self.nodes.len() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_data::{exact_knn, generate, DatasetSpec, Profile};
    use rabitq_metricsless::*;

    /// Tiny shim so tests read naturally without a metrics dependency.
    mod rabitq_metricsless {
        pub fn recall(truth: &[u32], got: &[u32]) -> f64 {
            if truth.is_empty() {
                return 1.0;
            }
            let set: std::collections::HashSet<u32> = got.iter().copied().collect();
            truth.iter().filter(|t| set.contains(t)).count() as f64 / truth.len() as f64
        }
    }

    fn small_dataset(n: usize, dim: usize) -> rabitq_data::Dataset {
        generate(&DatasetSpec {
            name: "hnsw-test".into(),
            dim,
            n,
            n_queries: 20,
            profile: Profile::Clustered {
                clusters: 10,
                cluster_std: 0.8,
                center_scale: 3.0,
            },
            seed: 7,
        })
    }

    fn test_config() -> HnswConfig {
        HnswConfig {
            m: 12,
            ef_construction: 100,
            seed: 3,
        }
    }

    #[test]
    fn exact_on_trivially_small_set() {
        let ds = small_dataset(30, 8);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 5, 1);
        for qi in 0..ds.n_queries() {
            let got = index.search(ds.query(qi), 5, 50);
            let got_ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
            let want_ids: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            assert_eq!(got_ids, want_ids, "query {qi}");
        }
    }

    #[test]
    fn high_recall_on_clustered_data() {
        let ds = small_dataset(2000, 16);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
        let mut total = 0.0;
        for qi in 0..ds.n_queries() {
            let got = index.search(ds.query(qi), 10, 120);
            let got_ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
            let want_ids: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
            total += recall(&want_ids, &got_ids);
        }
        let avg = total / ds.n_queries() as f64;
        assert!(avg > 0.95, "average recall {avg}");
    }

    #[test]
    fn larger_ef_search_does_not_reduce_recall() {
        let ds = small_dataset(1500, 12);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        let gt = exact_knn(&ds.data, ds.dim, &ds.queries, 10, 1);
        let recall_at = |ef: usize| -> f64 {
            let mut total = 0.0;
            for qi in 0..ds.n_queries() {
                let got = index.search(ds.query(qi), 10, ef);
                let got_ids: Vec<u32> = got.iter().map(|&(id, _)| id).collect();
                let want_ids: Vec<u32> = gt[qi].iter().map(|&(id, _)| id).collect();
                total += recall(&want_ids, &got_ids);
            }
            total / ds.n_queries() as f64
        };
        let lo = recall_at(10);
        let hi = recall_at(200);
        assert!(hi >= lo - 0.02, "ef=200 recall {hi} vs ef=10 recall {lo}");
        assert!(hi > 0.97, "ef=200 recall {hi}");
    }

    #[test]
    fn results_are_sorted_with_true_distances() {
        let ds = small_dataset(300, 8);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        let got = index.search(ds.query(0), 10, 60);
        assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        for &(id, d) in &got {
            let exact = vecs::l2_sq(ds.vector(id as usize), ds.query(0));
            assert!((d - exact).abs() < 1e-4);
        }
    }

    #[test]
    fn degree_budgets_are_respected() {
        let ds = small_dataset(800, 8);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        for node in &index.nodes {
            for (layer, nbrs) in node.neighbors.iter().enumerate() {
                let cap = if layer == 0 {
                    index.config.m * 2
                } else {
                    index.config.m
                };
                assert!(nbrs.len() <= cap, "layer {layer}: degree {}", nbrs.len());
            }
        }
    }

    #[test]
    fn k_larger_than_n_returns_everything() {
        let ds = small_dataset(15, 6);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        let got = index.search(ds.query(0), 100, 200);
        assert_eq!(got.len(), 15);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = Hnsw::new(4, test_config());
        assert!(index.search(&[0.0; 4], 5, 10).is_empty());
    }

    #[test]
    fn graph_is_reachable_from_entry() {
        // Every node must be reachable on the base layer (BFS), otherwise
        // recall silently degrades.
        let ds = small_dataset(500, 8);
        let index = Hnsw::build(&ds.data, ds.dim, test_config());
        let mut seen = vec![false; index.len()];
        let mut queue = std::collections::VecDeque::from([index.entry]);
        seen[index.entry as usize] = true;
        let mut count = 1;
        while let Some(node) = queue.pop_front() {
            for &nbr in &index.nodes[node as usize].neighbors[0] {
                if !seen[nbr as usize] {
                    seen[nbr as usize] = true;
                    count += 1;
                    queue.push_back(nbr);
                }
            }
        }
        assert_eq!(count, index.len(), "base layer is disconnected");
    }
}
