//! Property tests for the persistence layer: every `write_*`/`read_*`
//! pair must round-trip arbitrary values bit-for-bit, and malformed input
//! (truncation, corrupt magic, lying prefixes) must error rather than
//! misread.

use proptest::prelude::*;
use rabitq_core::persist as p;

/// Builds a UTF-8 string from arbitrary bytes (lossy, so any byte vector
/// maps to a valid test case).
fn ascii_string(bytes: &[u8]) -> String {
    bytes.iter().map(|&b| (b % 94 + 33) as char).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scalars_round_trip(byte in 0u8..=255, word in proptest::any::<u64>(), x in -1e30f32..1e30) {
        let mut buf = Vec::new();
        p::write_u8(&mut buf, byte).unwrap();
        p::write_u64(&mut buf, word).unwrap();
        p::write_f32(&mut buf, x).unwrap();
        let mut r = buf.as_slice();
        prop_assert_eq!(p::read_u8(&mut r).unwrap(), byte);
        prop_assert_eq!(p::read_u64(&mut r).unwrap(), word);
        prop_assert_eq!(p::read_f32(&mut r).unwrap(), x);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn strings_round_trip(raw in proptest::collection::vec(proptest::any::<u8>(), 0..200)) {
        let s = ascii_string(&raw);
        let mut buf = Vec::new();
        p::write_str(&mut buf, &s).unwrap();
        let mut r = buf.as_slice();
        prop_assert_eq!(p::read_str(&mut r).unwrap(), s);
    }

    #[test]
    fn slices_round_trip(
        floats in proptest::collection::vec(-1e20f32..1e20, 0..300),
        words in proptest::collection::vec(proptest::any::<u64>(), 0..300),
        ints in proptest::collection::vec(proptest::any::<u32>(), 0..300),
    ) {
        let mut buf = Vec::new();
        p::write_f32_slice(&mut buf, &floats).unwrap();
        p::write_u64_slice(&mut buf, &words).unwrap();
        p::write_u32_slice(&mut buf, &ints).unwrap();
        let mut r = buf.as_slice();
        prop_assert_eq!(p::read_f32_vec(&mut r).unwrap(), floats);
        prop_assert_eq!(p::read_u64_vec(&mut r).unwrap(), words);
        prop_assert_eq!(p::read_u32_vec(&mut r).unwrap(), ints);
        prop_assert!(r.is_empty());
    }

    #[test]
    fn headers_round_trip(raw in proptest::collection::vec(proptest::any::<u8>(), 1..40)) {
        let section = ascii_string(&raw);
        let mut buf = Vec::new();
        p::write_header(&mut buf, &section).unwrap();
        prop_assert_eq!(p::read_header(&mut buf.as_slice()).unwrap(), section);
    }

    #[test]
    fn any_truncation_of_a_slice_errors(
        floats in proptest::collection::vec(-1e6f32..1e6, 1..50),
        cut_fraction in 0.0f32..1.0,
    ) {
        let mut buf = Vec::new();
        p::write_f32_slice(&mut buf, &floats).unwrap();
        // Cut strictly inside the buffer: every proper prefix must fail.
        let cut = ((buf.len() - 1) as f32 * cut_fraction) as usize;
        prop_assert!(p::read_f32_vec(&mut &buf[..cut]).is_err());
    }

    #[test]
    fn truncated_strings_error(raw in proptest::collection::vec(proptest::any::<u8>(), 1..60)) {
        let s = ascii_string(&raw);
        let mut buf = Vec::new();
        p::write_str(&mut buf, &s).unwrap();
        buf.pop();
        prop_assert!(p::read_str(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_magic_is_rejected(flip in 0usize..4, xor in 1u8..=255) {
        let mut buf = Vec::new();
        p::write_header(&mut buf, "some-section").unwrap();
        buf[flip] ^= xor;
        prop_assert!(p::read_header(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn lying_length_prefixes_fail_cleanly(claimed in (1u64 << 32)..(1u64 << 60)) {
        // A prefix claiming up to 2⁶⁰ elements over an 8-byte body must
        // error (EOF), not abort on a giant allocation.
        let mut buf = Vec::new();
        p::write_u64(&mut buf, claimed).unwrap();
        buf.extend_from_slice(&[0u8; 8]);
        prop_assert!(p::read_f32_vec(&mut buf.as_slice()).is_err());
        prop_assert!(p::read_u64_vec(&mut buf.as_slice()).is_err());
    }
}
