//! Property-based tests for the RaBitQ core: kernel equivalences, query
//! quantization invariants, and estimator algebra, over randomized shapes.

use proptest::prelude::*;
use rabitq_core::fastscan::{Lut, PackedCodes};
use rabitq_core::kernels::{ip_code_query, ip_code_query_naive};
use rabitq_core::{estimator, CodeFactors, CodeSet, QuantizedQuery, Rabitq, RabitqConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_codes(n: usize, padded_dim: usize, seed: u64) -> CodeSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut set = CodeSet::new(padded_dim);
    let words = padded_dim / 64;
    for _ in 0..n {
        let code: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
        set.push(
            &code,
            rng.gen_range(0.1f32..5.0),
            rng.gen_range(0.5f32..0.95),
        );
    }
    set
}

fn random_query(padded_dim: usize, bq: u8, seed: u64) -> QuantizedQuery {
    let mut rng = StdRng::seed_from_u64(seed);
    let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded_dim);
    QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bitwise_kernel_equals_naive(words in 1usize..8, bq in 1u8..=8, seed in 0u64..500) {
        let dim = words * 64;
        let query = random_query(dim, bq, seed);
        let set = random_codes(1, dim, seed ^ 1);
        prop_assert_eq!(
            ip_code_query(set.code_bits(0), &query),
            ip_code_query_naive(set.code_bits(0), &query)
        );
    }

    #[test]
    fn fastscan_equals_bitwise_for_any_count(n in 1usize..80, words in 1usize..6, seed in 0u64..300) {
        let dim = words * 64;
        let set = random_codes(n, dim, seed);
        let query = random_query(dim, 4, seed ^ 2);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let mut out = Vec::new();
        packed.scan_all(&lut, &mut out);
        prop_assert_eq!(out.len(), n);
        for i in 0..n {
            prop_assert_eq!(out[i], ip_code_query(set.code_bits(i), &query));
        }
    }

    #[test]
    fn quantized_entries_bounded_and_sum_consistent(words in 1usize..8, bq in 1u8..=8, seed in 0u64..500) {
        let query = random_query(words * 64, bq, seed);
        let max = (1u32 << bq) - 1;
        let mut sum = 0u32;
        for &v in query.qu() {
            prop_assert!((v as u32) <= max);
            sum += v as u32;
        }
        prop_assert_eq!(sum, query.sum_qu);
    }

    #[test]
    fn dequantized_entries_within_one_step(words in 1usize..6, seed in 0u64..300) {
        let dim = words * 64;
        let mut rng = StdRng::seed_from_u64(seed);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let norm = rabitq_math::vecs::norm(&residual);
        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        for (i, &raw) in residual.iter().enumerate() {
            let exact = raw / norm;
            prop_assert!((exact - query.dequantized(i)).abs() <= query.delta * 1.001 + 1e-7);
        }
    }

    #[test]
    fn estimate_identity_lower_bound_le_dist(ip_bin in 0u32..4096, seed in 0u64..300,
                                             norm in 0.0f32..10.0, ip_oo in 0.05f32..1.0,
                                             popcount in 0u32..256) {
        let query = random_query(256, 4, seed);
        let f = CodeFactors { norm, ip_oo, popcount };
        let est = estimator::estimate(ip_bin, f, &query, 256, 1.9);
        prop_assert!(est.lower_bound <= est.dist_sq.max(0.0) + 1e-4);
        prop_assert!(est.lower_bound >= 0.0);
        prop_assert!(est.dist_sq.is_finite());
    }

    #[test]
    fn confidence_width_monotone_in_epsilon(ip_oo in 0.1f32..0.99, dim_words in 1usize..32) {
        let dim = dim_words * 64;
        let narrow = estimator::ip_confidence_halfwidth(ip_oo, dim, 1.0);
        let wide = estimator::ip_confidence_halfwidth(ip_oo, dim, 3.0);
        prop_assert!(wide >= narrow * 2.9 && wide <= narrow * 3.1);
    }

    #[test]
    fn code_roundtrip_signs(words in 1usize..6, seed in 0u64..300) {
        // Encoding a vector and reconstructing the quantized unit vector
        // must reproduce the signs of the rotated residual.
        let dim = words * 64;
        let cfg = RabitqConfig { padded_dim: Some(dim), seed, ..RabitqConfig::default() };
        let q = Rabitq::new(dim, cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 9);
        let v = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let centroid = vec![0.0f32; dim];
        let codes = q.encode_set(std::iter::once(v.as_slice()), &centroid);
        let rotated = q.rotate(&v);
        let recon = codes.reconstruct_rotated(0);
        for d in 0..dim {
            if rotated[d].abs() > 1e-5 {
                prop_assert_eq!(recon[d] > 0.0, rotated[d] >= 0.0, "dim {}", d);
            }
        }
    }

    #[test]
    fn alignment_factor_in_unit_range(words in 1usize..6, seed in 0u64..300) {
        let dim = words * 64;
        let cfg = RabitqConfig { padded_dim: Some(dim), seed, ..RabitqConfig::default() };
        let q = Rabitq::new(dim, cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 5);
        let v = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let centroid = vec![0.0f32; dim];
        let codes = q.encode_set(std::iter::once(v.as_slice()), &centroid);
        let f = codes.factors(0);
        // ⟨ō,o⟩ ∈ (0, 1]: it is a cosine between unit vectors, and the
        // sign-matching code always has non-negative alignment.
        prop_assert!(f.ip_oo > 0.0 && f.ip_oo <= 1.0 + 1e-5, "ip_oo {}", f.ip_oo);
    }
}
