//! Differential suite for the SIMD fastscan kernels.
//!
//! Every kernel the host can run is driven against the portable scalar
//! reference on randomized packed layouts — arbitrary segment counts,
//! code counts that are not multiples of the 32-code block, RaBitQ-range
//! LUT entries, and the demotion guard — asserting **exact** equality.
//! A second property checks the whole pipeline: batch estimates through
//! the dispatched kernel (whatever `RABITQ_FORCE_KERNEL` selects; CI runs
//! this suite once with `scalar` forced) must equal the single-code
//! bitwise path bit for bit, across both the `u8` and the `u16` LUT
//! widths (`B_q ≤ 4` and `B_q > 4`).

use proptest::prelude::*;
use rabitq_core::estimator;
use rabitq_core::fastscan::{raw, BLOCK, MAX_U8_LUT_ENTRY};
use rabitq_core::{Rabitq, RabitqConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn make_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rabitq_math::rng::standard_normal_vec(&mut rng, dim))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_runnable_kernel_matches_scalar_exactly(
        n in 1usize..100,
        segments in 1usize..72,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = raw::pack_nibbles(n, segments, |_, _| rng.gen::<u8>() & 0xF);
        let lut: Vec<u8> = (0..segments * 16)
            .map(|_| rng.gen_range(0..=MAX_U8_LUT_ENTRY) as u8)
            .collect();
        for b in 0..n.div_ceil(BLOCK) {
            let block = &blocks[b * segments * 16..(b + 1) * segments * 16];
            let mut expect = [0u32; BLOCK];
            raw::scan_u8_scalar(block, &lut, segments, &mut expect);
            for kernel in raw::supported_kernels() {
                let mut got = [0u32; BLOCK];
                raw::scan_u8_with(kernel, block, &lut, segments, MAX_U8_LUT_ENTRY, &mut got);
                prop_assert_eq!(
                    got,
                    expect,
                    "{} diverged from scalar: segments {}, block {}",
                    kernel.name(),
                    segments,
                    b
                );
            }
        }
    }

    /// The overflow demotion guard: when `segments · max_entry` exceeds the
    /// u16 accumulators, selection must fall back to scalar rather than
    /// wrap. Feed full-range u8 entries (the PQ case) at segment counts
    /// straddling the threshold and check dispatch agrees with scalar.
    #[test]
    fn overflow_guard_demotes_instead_of_wrapping(
        n in 1usize..40,
        segments in 250usize..264,
        seed in 0u64..200,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = raw::pack_nibbles(n, segments, |_, _| rng.gen::<u8>() & 0xF);
        // segments 250..257 keep the SIMD kernels; ≥ 258 crosses
        // 255·segments > u16::MAX and must demote to scalar.
        let lut: Vec<u8> = (0..segments * 16).map(|_| rng.gen()).collect();
        for b in 0..n.div_ceil(BLOCK) {
            let block = &blocks[b * segments * 16..(b + 1) * segments * 16];
            let mut expect = [0u32; BLOCK];
            raw::scan_u8_scalar(block, &lut, segments, &mut expect);
            let mut got = [0u32; BLOCK];
            // Through the process-wide dispatch with max_entry 255.
            raw::scan_u8(block, &lut, segments, 255, &mut got);
            prop_assert_eq!(got, expect);
        }
    }

    /// End-to-end bit-identity under whatever kernel the process dispatch
    /// settled on (honours `RABITQ_FORCE_KERNEL`): batch estimates equal
    /// the single-code bitwise path for both LUT widths and ragged counts.
    #[test]
    fn batch_estimates_equal_single_code_for_both_lut_widths(
        n in 1usize..80,
        words in 1usize..5,
        bq in 1u8..=8,
        seed in 0u64..500,
    ) {
        let dim = words * 64;
        let config = RabitqConfig {
            bq,
            ..RabitqConfig::default()
        };
        let q = Rabitq::new(dim, config);
        let data = make_data(n, dim, seed);
        let centroid = vec![0.05f32; dim];
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let packed = q.pack(&codes);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xAB);
        let query_vec = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
        let mut batch = Vec::new();
        q.estimate_batch(&prepared, &packed, &codes, &mut batch);
        prop_assert_eq!(batch.len(), n);
        for (i, &b) in batch.iter().enumerate() {
            let single = q.estimate(&prepared, &codes, i);
            prop_assert_eq!(single, b, "code {}", i);
        }
    }
}

/// The encode-time precomputed half-width base must reproduce
/// `ip_confidence_halfwidth` exactly: `ε₀ · error_base(ip, B)` is the same
/// two-op sequence the estimator uses per code.
#[test]
fn precomputed_error_base_matches_confidence_halfwidth() {
    for padded_dim in [64usize, 128, 768, 1024] {
        for i in 0..1000 {
            let ip_oo = 0.001f32 + i as f32 * 0.000999;
            let direct = estimator::ip_confidence_halfwidth(ip_oo, padded_dim, 1.9);
            let precomputed = 1.9 * estimator::error_base(ip_oo, padded_dim);
            assert_eq!(
                direct.to_bits(),
                precomputed.to_bits(),
                "ip_oo {ip_oo}, B {padded_dim}"
            );
        }
    }
}
