//! The random rotation underlying RaBitQ's codebook.
//!
//! Section 3.1.2 of the paper constructs the codebook `C_rand = {P·x}` by
//! rotating the hypercube vertices with a Haar-random orthogonal matrix `P`.
//! The algorithm never materializes the codebook — it only ever applies the
//! *inverse* rotation `P⁻¹ = Pᵀ` to data and query vectors (Eq. 8 and 17).
//! Because the Haar measure is inversion-invariant, we directly sample the
//! inverse transform and call it a [`Rotator`].
//!
//! Two implementations are provided:
//!
//! * [`RotatorKind::DenseOrthogonal`] — the paper's construction: a sampled
//!   Haar-orthogonal matrix applied in O(D²);
//! * [`RotatorKind::RandomizedHadamard`] — the O(D log D) structured JLT
//!   `(H·Dᵢ)³` used by production ports (Lucene, Milvus); statistically it
//!   behaves like a Haar rotation for the quantities RaBitQ depends on.
//!
//! Both map `dim`-dimensional input to `padded_dim ≥ dim` output, where
//! `padded_dim` is the code length `B` (a multiple of 64 so codes pack into
//! `u64` words; the paper pads with zeros the same way, Section 5.1).

use rabitq_math::hadamard::{fwht_normalized, SignDiagonal};
use rabitq_math::orthogonal::random_orthogonal;
use rabitq_math::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Which rotation construction to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RotatorKind {
    /// Dense Haar-orthogonal matrix (the paper's default). O(D²) per apply.
    DenseOrthogonal,
    /// Three rounds of sign-flip + normalized Walsh–Hadamard. O(D log D)
    /// per apply; requires the padded dimension to be a power of two and
    /// pads further if necessary.
    RandomizedHadamard,
    /// No rotation (zero-padding only): the *deterministic* hypercube
    /// codebook `C` of Eq. 3. Exists for the Appendix F.1 ablation — it
    /// voids the theoretical guarantees (the codebook then favors specific
    /// directions) and must not be used in production.
    Identity,
}

/// A sampled random rotation `R = P⁻¹` mapping `dim → padded_dim`.
#[derive(Clone, Debug)]
pub struct Rotator {
    dim: usize,
    padded_dim: usize,
    imp: RotatorImpl,
}

#[derive(Clone, Debug)]
enum RotatorImpl {
    Dense(Matrix),
    Hadamard { diagonals: [SignDiagonal; 3] },
    Identity,
}

/// Rounds `dim` up to the code length used by RaBitQ: the smallest multiple
/// of 64 that is ≥ `dim` (Section 5.1 of the paper).
pub fn default_padded_dim(dim: usize) -> usize {
    dim.div_ceil(64) * 64
}

impl Rotator {
    /// Samples a rotator for `dim`-dimensional input.
    ///
    /// `padded_dim` is the code length `B`; pass `None` for the paper
    /// default (next multiple of 64). The Hadamard construction rounds it
    /// further up to a power of two.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `padded_dim < dim`.
    pub fn sample(kind: RotatorKind, dim: usize, padded_dim: Option<usize>, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let mut padded = padded_dim.unwrap_or_else(|| default_padded_dim(dim));
        assert!(padded >= dim, "padded_dim {padded} < dim {dim}");
        assert!(
            padded.is_multiple_of(64),
            "padded_dim must be a multiple of 64"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let imp = match kind {
            RotatorKind::DenseOrthogonal => RotatorImpl::Dense(random_orthogonal(&mut rng, padded)),
            RotatorKind::RandomizedHadamard => {
                padded = padded.next_power_of_two();
                RotatorImpl::Hadamard {
                    diagonals: [
                        SignDiagonal::random(&mut rng, padded),
                        SignDiagonal::random(&mut rng, padded),
                        SignDiagonal::random(&mut rng, padded),
                    ],
                }
            }
            RotatorKind::Identity => RotatorImpl::Identity,
        };
        Self {
            dim,
            padded_dim: padded,
            imp,
        }
    }

    /// Input dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Output dimensionality = code length `B`.
    #[inline]
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// The construction this rotator was sampled from.
    pub fn kind(&self) -> RotatorKind {
        match &self.imp {
            RotatorImpl::Dense(_) => RotatorKind::DenseOrthogonal,
            RotatorImpl::Hadamard { .. } => RotatorKind::RandomizedHadamard,
            RotatorImpl::Identity => RotatorKind::Identity,
        }
    }

    /// Applies the rotation: `out = R · pad(input)`.
    ///
    /// `input` may have any length ≤ `padded_dim` (zero-padded); `out` must
    /// have length `padded_dim`. Rotation preserves Euclidean norm, so
    /// `‖out‖ = ‖input‖` up to round-off.
    pub fn rotate(&self, input: &[f32], out: &mut [f32]) {
        assert!(
            input.len() <= self.padded_dim,
            "input length {} exceeds padded dim {}",
            input.len(),
            self.padded_dim
        );
        assert_eq!(out.len(), self.padded_dim, "output length");
        match &self.imp {
            RotatorImpl::Dense(m) => {
                if input.len() == self.padded_dim {
                    m.matvec(input, out);
                } else {
                    // Zero-padding means only the first `input.len()` columns
                    // contribute; dot against row prefixes.
                    for (i, o) in out.iter_mut().enumerate() {
                        *o = rabitq_math::vecs::dot(&m.row(i)[..input.len()], input);
                    }
                }
            }
            RotatorImpl::Hadamard { diagonals } => {
                out[..input.len()].copy_from_slice(input);
                out[input.len()..].fill(0.0);
                for d in diagonals {
                    d.apply(out);
                    fwht_normalized(out);
                }
            }
            RotatorImpl::Identity => {
                out[..input.len()].copy_from_slice(input);
                out[input.len()..].fill(0.0);
            }
        }
    }

    /// Convenience wrapper allocating the output vector.
    pub fn rotate_vec(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.padded_dim];
        self.rotate(input, &mut out);
        out
    }

    /// Serializes the rotator (see [`crate::persist`]).
    pub fn write<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use crate::persist as p;
        p::write_usize(w, self.dim)?;
        p::write_usize(w, self.padded_dim)?;
        match &self.imp {
            RotatorImpl::Dense(m) => {
                p::write_u8(w, 0)?;
                p::write_f32_slice(w, m.as_slice())
            }
            RotatorImpl::Hadamard { diagonals } => {
                p::write_u8(w, 1)?;
                for d in diagonals {
                    p::write_u64_slice(w, d.bits())?;
                }
                Ok(())
            }
            RotatorImpl::Identity => p::write_u8(w, 2),
        }
    }

    /// Deserializes a rotator written by [`Rotator::write`].
    pub fn read<R: std::io::Read>(r: &mut R) -> std::io::Result<Self> {
        use crate::persist as p;
        use rabitq_math::hadamard::SignDiagonal;
        use rabitq_math::Matrix;
        let dim = p::read_usize(r)?;
        let padded_dim = p::read_usize(r)?;
        if dim == 0 || padded_dim < dim || padded_dim % 64 != 0 {
            return Err(p::invalid("inconsistent rotator dimensions"));
        }
        let imp = match p::read_u8(r)? {
            0 => {
                let data = p::read_f32_vec(r)?;
                // checked: `padded_dim` is attacker-controlled here and
                // `padded² ` overflows usize for a corrupted prefix.
                let expected = padded_dim
                    .checked_mul(padded_dim)
                    .ok_or_else(|| p::invalid("rotator dimension overflows"))?;
                if data.len() != expected {
                    return Err(p::invalid("dense rotation size mismatch"));
                }
                RotatorImpl::Dense(Matrix::from_vec(padded_dim, padded_dim, data))
            }
            1 => {
                let mut diagonals = Vec::with_capacity(3);
                for _ in 0..3 {
                    let bits = p::read_u64_vec(r)?;
                    if bits.len() != padded_dim.div_ceil(64) {
                        return Err(p::invalid("sign diagonal size mismatch"));
                    }
                    diagonals.push(SignDiagonal::from_bits(bits, padded_dim));
                }
                let diagonals: [SignDiagonal; 3] =
                    diagonals.try_into().expect("exactly three diagonals");
                if !padded_dim.is_power_of_two() {
                    return Err(p::invalid("hadamard rotator needs power-of-two dim"));
                }
                RotatorImpl::Hadamard { diagonals }
            }
            2 => RotatorImpl::Identity,
            other => return Err(p::invalid(format!("unknown rotator kind {other}"))),
        };
        Ok(Self {
            dim,
            padded_dim,
            imp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_math::rng::standard_normal_vec;
    use rabitq_math::vecs;

    #[test]
    fn default_padding_rounds_to_multiple_of_64() {
        assert_eq!(default_padded_dim(1), 64);
        assert_eq!(default_padded_dim(64), 64);
        assert_eq!(default_padded_dim(65), 128);
        assert_eq!(default_padded_dim(960), 960);
        assert_eq!(default_padded_dim(961), 1024);
    }

    #[test]
    fn dense_rotation_preserves_norm_and_inner_product() {
        let rot = Rotator::sample(RotatorKind::DenseOrthogonal, 100, None, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = standard_normal_vec(&mut rng, 100);
        let y = standard_normal_vec(&mut rng, 100);
        let rx = rot.rotate_vec(&x);
        let ry = rot.rotate_vec(&y);
        assert_eq!(rx.len(), 128);
        assert!((vecs::norm(&x) - vecs::norm(&rx)).abs() < 1e-3);
        let ip_before = vecs::dot(&x, &y);
        let ip_after = vecs::dot(&rx, &ry);
        assert!((ip_before - ip_after).abs() < 1e-2 * (1.0 + ip_before.abs()));
    }

    #[test]
    fn hadamard_rotation_preserves_norm_and_inner_product() {
        let rot = Rotator::sample(RotatorKind::RandomizedHadamard, 100, None, 7);
        assert_eq!(rot.padded_dim(), 128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let x = standard_normal_vec(&mut rng, 100);
        let y = standard_normal_vec(&mut rng, 100);
        let rx = rot.rotate_vec(&x);
        let ry = rot.rotate_vec(&y);
        assert!((vecs::norm(&x) - vecs::norm(&rx)).abs() < 1e-3);
        let ip_before = vecs::dot(&x, &y);
        let ip_after = vecs::dot(&rx, &ry);
        assert!((ip_before - ip_after).abs() < 1e-2 * (1.0 + ip_before.abs()));
    }

    #[test]
    fn rotation_is_linear() {
        let rot = Rotator::sample(RotatorKind::DenseOrthogonal, 64, None, 3);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let x = standard_normal_vec(&mut rng, 64);
        let y = standard_normal_vec(&mut rng, 64);
        let sum: Vec<f32> = x.iter().zip(&y).map(|(a, b)| a + b).collect();
        let r_sum = rot.rotate_vec(&sum);
        let rx = rot.rotate_vec(&x);
        let ry = rot.rotate_vec(&y);
        for i in 0..64 {
            assert!((r_sum[i] - (rx[i] + ry[i])).abs() < 1e-4);
        }
    }

    #[test]
    fn same_seed_same_rotation_different_seed_different() {
        let x = vec![1.0f32; 64];
        let a = Rotator::sample(RotatorKind::DenseOrthogonal, 64, None, 9).rotate_vec(&x);
        let b = Rotator::sample(RotatorKind::DenseOrthogonal, 64, None, 9).rotate_vec(&x);
        let c = Rotator::sample(RotatorKind::DenseOrthogonal, 64, None, 10).rotate_vec(&x);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn explicit_padded_dim_is_honored() {
        let rot = Rotator::sample(RotatorKind::DenseOrthogonal, 60, Some(256), 1);
        assert_eq!(rot.padded_dim(), 256);
        let x = vec![1.0f32; 60];
        let rx = rot.rotate_vec(&x);
        assert!((vecs::norm(&rx) - (60.0f32).sqrt()).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "padded_dim")]
    fn padded_dim_below_dim_is_rejected() {
        Rotator::sample(RotatorKind::DenseOrthogonal, 100, Some(64), 1);
    }

    #[test]
    fn padded_coordinates_spread_energy() {
        // After rotating a zero-padded vector, the tail coordinates must be
        // populated (that is the point of padding-then-rotating).
        let rot = Rotator::sample(RotatorKind::DenseOrthogonal, 65, None, 5);
        let x = vec![1.0f32; 65];
        let rx = rot.rotate_vec(&x);
        let tail_energy: f32 = rx[65..].iter().map(|v| v * v).sum();
        assert!(tail_energy > 1e-3, "tail energy {tail_energy}");
    }
}
