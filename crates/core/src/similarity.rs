//! Unbiased inner-product and cosine estimation from RaBitQ codes —
//! footnote 8 of the paper made a first-class API.
//!
//! The paper's estimator targets the inner product of *unit residuals*
//! `⟨ô, q̂⟩` with `ô = (o_r − c)/‖o_r − c‖`. Two identities lift that to
//! the similarities retrieval systems actually rank by:
//!
//! * **raw inner product** (footnote 8):
//!   `⟨o_r, q_r⟩ = ‖o_r−c‖·‖q_r−c‖·⟨ô, q̂⟩ + ⟨o_r, c⟩ + ⟨q_r, c⟩ − ‖c‖²`,
//!   where `⟨o_r, c⟩` is a per-vector scalar precomputed at index time and
//!   `⟨q_r, c⟩`, `‖q_r−c‖` are per-query scalars;
//! * **cosine**: `cos(o_r, q_r) = ⟨o_r, q_r⟩ / (‖o_r‖·‖q_r‖)`.
//!
//! Both transformations are affine in `⟨ô, q̂⟩` with nonnegative scale, so
//! the estimator's unbiasedness (Theorem 3.2) carries over exactly, and
//! its `ε₀`-confidence half-width maps through the same scale. The
//! resulting bounds power MIPS re-ranking the same way distance lower
//! bounds power nearest-neighbor re-ranking (Section 4): a candidate whose
//! inner-product *upper* bound cannot beat the current K-th best exact
//! inner product is dropped without touching the raw vector.

use crate::estimator::DistanceEstimate;

/// Estimate of a raw inner product `⟨o_r, q_r⟩` with confidence bounds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IpEstimate {
    /// Unbiased estimate of `⟨o_r, q_r⟩`.
    pub ip: f32,
    /// Lower confidence bound.
    pub lower_bound: f32,
    /// Upper confidence bound. MIPS re-ranking drops a candidate iff this
    /// falls below the current K-th best exact inner product.
    pub upper_bound: f32,
}

/// Estimate of `cos(o_r, q_r)` with confidence bounds clamped to [−1, 1].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CosineEstimate {
    /// Unbiased estimate of the cosine (up to the norm scaling, which is
    /// exact — the randomness only enters through `⟨ô, q̂⟩`).
    pub cos: f32,
    /// Lower confidence bound.
    pub lower_bound: f32,
    /// Upper confidence bound.
    pub upper_bound: f32,
}

/// Per-query scalars of the footnote-8 identity, computed once per query
/// and shared by every code scanned under it.
#[derive(Clone, Copy, Debug)]
pub struct IpQueryTerms {
    /// `⟨q_r, c⟩`.
    pub ip_qc: f32,
    /// `‖c‖²`.
    pub norm_c_sq: f32,
}

impl IpQueryTerms {
    /// Computes the per-query scalars for a raw query and centroid.
    pub fn new(query: &[f32], centroid: &[f32]) -> Self {
        assert_eq!(query.len(), centroid.len(), "dimensionality");
        Self {
            ip_qc: rabitq_math::vecs::dot(query, centroid),
            norm_c_sq: rabitq_math::vecs::dot(centroid, centroid),
        }
    }
}

/// Lifts a unit-residual estimate to the raw inner product `⟨o_r, q_r⟩`.
///
/// `de` is the output of the distance estimator for this (query, code)
/// pair; `norm_oc = ‖o_r − c‖` is the code's stored factor; `q_dist =
/// ‖q_r − c‖` comes from the prepared query; `ip_oc = ⟨o_r, c⟩` is the
/// per-vector scalar indexes store next to the code.
#[inline]
pub fn inner_product(
    de: &DistanceEstimate,
    norm_oc: f32,
    q_dist: f32,
    ip_oc: f32,
    terms: IpQueryTerms,
) -> IpEstimate {
    let scale = norm_oc * q_dist;
    let offset = ip_oc + terms.ip_qc - terms.norm_c_sq;
    let ip = scale * de.ip_est + offset;
    let halfwidth = scale * de.ip_error;
    IpEstimate {
        ip,
        lower_bound: ip - halfwidth,
        upper_bound: ip + halfwidth,
    }
}

/// Converts a raw-inner-product estimate to a cosine estimate given the
/// two raw norms. Degenerate (zero-norm) inputs produce a zero cosine
/// with maximal [−1, 1] bounds rather than NaNs.
#[inline]
pub fn cosine(ip: &IpEstimate, norm_o: f32, norm_q: f32) -> CosineEstimate {
    let denom = norm_o * norm_q;
    if denom <= f32::EPSILON {
        return CosineEstimate {
            cos: 0.0,
            lower_bound: -1.0,
            upper_bound: 1.0,
        };
    }
    let inv = 1.0 / denom;
    CosineEstimate {
        cos: (ip.ip * inv).clamp(-1.0, 1.0),
        lower_bound: (ip.lower_bound * inv).clamp(-1.0, 1.0),
        upper_bound: (ip.upper_bound * inv).clamp(-1.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantizer::{Rabitq, RabitqConfig};
    use rabitq_math::vecs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// End-to-end: the lifted inner-product estimate tracks the exact raw
    /// inner product within its confidence interval almost always, for a
    /// non-trivial centroid.
    #[test]
    fn inner_product_tracks_exact_with_centroid() {
        let dim = 128;
        let n = 300;
        let mut rng = StdRng::seed_from_u64(41);
        let data: Vec<Vec<f32>> = (0..n)
            .map(|_| {
                let mut v = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
                for x in v.iter_mut() {
                    *x += 0.5; // shift so the centroid is far from the origin
                }
                v
            })
            .collect();
        let mut centroid = vec![0.0f32; dim];
        for v in &data {
            for (c, &x) in centroid.iter_mut().zip(v) {
                *c += x / n as f32;
            }
        }
        let quantizer = Rabitq::new(dim, RabitqConfig::default());
        let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let prepared = quantizer.prepare_query(&query, &centroid, &mut rng);
        let terms = IpQueryTerms::new(&query, &centroid);

        let mut abs_err_sum = 0.0f64;
        let mut signed_err_sum = 0.0f64;
        let mut halfwidth_sum = 0.0f64;
        let mut covered = 0usize;
        for (i, v) in data.iter().enumerate() {
            let de = quantizer.estimate(&prepared, &codes, i);
            let factors = codes.factors(i);
            let ip_oc = vecs::dot(v, &centroid);
            let est = inner_product(&de, factors.norm, prepared.q_dist, ip_oc, terms);
            let exact = vecs::dot(v, &query);
            abs_err_sum += (est.ip - exact).abs() as f64;
            signed_err_sum += (est.ip - exact) as f64;
            halfwidth_sum += (est.upper_bound - est.ip) as f64;
            if exact >= est.lower_bound && exact <= est.upper_bound {
                covered += 1;
            }
        }
        let mean_abs = abs_err_sum / n as f64;
        let mean_signed = signed_err_sum / n as f64;
        let mean_halfwidth = halfwidth_sum / n as f64;
        // The ε₀ = 1.9 half-width targets ~2.4σ of the error distribution,
        // so the typical |error| (~0.8σ) must sit well inside it.
        assert!(
            mean_abs < 0.6 * mean_halfwidth,
            "mean |error| = {mean_abs} vs mean half-width {mean_halfwidth}"
        );
        assert!(
            mean_signed.abs() < mean_abs / 2.0,
            "signed error {mean_signed} should be far smaller than {mean_abs} (unbiasedness)"
        );
        // Two-sided coverage at ε₀ = 1.9 is ≈ P(|N(0,1)| < 1.9) ≈ 94.3%
        // (Lemma B.1 with √(D−1)·X₁ ≈ N(0,1), same model as the distance
        // bound's miss-rate test); over 300 pairs the 3σ floor is ~90%.
        assert!(covered as f64 / n as f64 > 0.90, "coverage {covered}/{n}");
    }

    /// Cosine of a vector with itself estimates ≈ 1 and the interval
    /// covers 1.
    #[test]
    fn self_cosine_is_near_one() {
        let dim = 192;
        let mut rng = StdRng::seed_from_u64(42);
        let v = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        let centroid = vec![0.0f32; dim];
        let quantizer = Rabitq::new(dim, RabitqConfig::default());
        let codes = quantizer.encode_set(std::iter::once(v.as_slice()), &centroid);
        let prepared = quantizer.prepare_query(&v, &centroid, &mut rng);
        let de = quantizer.estimate(&prepared, &codes, 0);
        let factors = codes.factors(0);
        let terms = IpQueryTerms::new(&v, &centroid);
        let ip = inner_product(&de, factors.norm, prepared.q_dist, 0.0, terms);
        let cos = cosine(&ip, vecs::norm(&v), vecs::norm(&v));
        assert!((cos.cos - 1.0).abs() < 0.15, "cos = {}", cos.cos);
        assert!(cos.upper_bound >= cos.cos && cos.lower_bound <= cos.cos);
    }

    /// With centroid 0 and unit vectors, the lifted inner product reduces
    /// to the estimator's `ip_est` exactly (the example in
    /// `examples/cosine_and_mips.rs` relies on this).
    #[test]
    fn zero_centroid_unit_vectors_reduce_to_ip_est() {
        let dim = 64;
        let mut rng = StdRng::seed_from_u64(43);
        let mut v = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut v);
        let centroid = vec![0.0f32; dim];
        let quantizer = Rabitq::new(dim, RabitqConfig::default());
        let codes = quantizer.encode_set(std::iter::once(v.as_slice()), &centroid);
        let mut q = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
        vecs::normalize(&mut q);
        let prepared = quantizer.prepare_query(&q, &centroid, &mut rng);
        let de = quantizer.estimate(&prepared, &codes, 0);
        let factors = codes.factors(0);
        let terms = IpQueryTerms::new(&q, &centroid);
        let ip = inner_product(&de, factors.norm, prepared.q_dist, 0.0, terms);
        // scale = ‖v‖·‖q‖ = 1, offset = 0.
        assert!((ip.ip - de.ip_est).abs() < 1e-5);
    }

    #[test]
    fn degenerate_cosine_inputs_do_not_produce_nan() {
        let ip = IpEstimate {
            ip: 0.3,
            lower_bound: 0.1,
            upper_bound: 0.5,
        };
        let c = cosine(&ip, 0.0, 1.0);
        assert_eq!(c.cos, 0.0);
        assert_eq!((c.lower_bound, c.upper_bound), (-1.0, 1.0));
        // Bounds clamp even when the interval exceeds the feasible range.
        let wide = IpEstimate {
            ip: 5.0,
            lower_bound: -9.0,
            upper_bound: 9.0,
        };
        let c = cosine(&wide, 1.0, 1.0);
        assert_eq!((c.cos, c.lower_bound, c.upper_bound), (1.0, -1.0, 1.0));
    }
}
