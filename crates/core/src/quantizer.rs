//! The [`Rabitq`] quantizer: the user-facing type tying together rotation,
//! encoding (Algorithm 1), query preparation and estimation (Algorithm 2).
//!
//! ```
//! use rabitq_core::{Rabitq, RabitqConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let dim = 96;
//! let quantizer = Rabitq::new(dim, RabitqConfig::default());
//! let mut rng = StdRng::seed_from_u64(0);
//!
//! // Index phase: encode vectors against a centroid.
//! let centroid = vec![0.0f32; dim];
//! let data: Vec<Vec<f32>> = (0..100)
//!     .map(|_| rabitq_math::rng::standard_normal_vec(&mut rng, dim))
//!     .collect();
//! let codes = quantizer.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
//!
//! // Query phase: estimate distances from 1-bit codes.
//! let query = rabitq_math::rng::standard_normal_vec(&mut rng, dim);
//! let prepared = quantizer.prepare_query(&query, &centroid, &mut rng);
//! let est = quantizer.estimate(&prepared, &codes, 0);
//! let exact = rabitq_math::vecs::l2_sq(&data[0], &query);
//! assert!((est.dist_sq - exact).abs() / exact < 0.5);
//! ```

use crate::code::CodeSet;
use crate::estimator::{self, DistanceEstimate};
use crate::fastscan::{Lut, PackedCodes, BLOCK};
use crate::kernels::ip_code_query;
use crate::query::QuantizedQuery;
use crate::rotation::{Rotator, RotatorKind};
use rabitq_math::vecs;
use rand::Rng;

/// Configuration of a [`Rabitq`] quantizer. The defaults are the paper's:
/// `B_q = 4`, `ε₀ = 1.9`, dense Haar-orthogonal rotation, code length equal
/// to the smallest multiple of 64 ≥ `dim`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RabitqConfig {
    /// Query quantization bits `B_q` (Theorem 3.3; 4 in practice).
    pub bq: u8,
    /// Confidence parameter `ε₀` of the error bound (Section 5.2.4).
    pub epsilon0: f32,
    /// Rotation construction.
    pub rotator: RotatorKind,
    /// Seed for sampling the rotation.
    pub seed: u64,
    /// Code length override (`None` = next multiple of 64 ≥ `dim`). Longer
    /// codes — the paper's zero-padding trick — trade space for accuracy.
    pub padded_dim: Option<usize>,
}

impl Default for RabitqConfig {
    fn default() -> Self {
        Self {
            bq: 4,
            epsilon0: 1.9,
            rotator: RotatorKind::DenseOrthogonal,
            seed: 0x5EED_AB17,
            padded_dim: None,
        }
    }
}

/// A RaBitQ quantizer for vectors of one dimensionality, sharing one
/// sampled rotation across all encoded vectors and queries.
#[derive(Clone, Debug)]
pub struct Rabitq {
    rotator: Rotator,
    dim: usize,
    config: RabitqConfig,
}

impl Rabitq {
    /// Samples a quantizer for `dim`-dimensional vectors.
    pub fn new(dim: usize, config: RabitqConfig) -> Self {
        let rotator = Rotator::sample(config.rotator, dim, config.padded_dim, config.seed);
        Self {
            rotator,
            dim,
            config,
        }
    }

    /// Input dimensionality `D`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Code length `B` in bits.
    #[inline]
    pub fn padded_dim(&self) -> usize {
        self.rotator.padded_dim()
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &RabitqConfig {
        &self.config
    }

    /// Applies the index-wide rotation `P⁻¹` to an arbitrary raw vector.
    /// IVF uses this to rotate the query and all centroids once, then forms
    /// per-cluster residuals in rotated space (`P⁻¹` is linear).
    pub fn rotate(&self, v: &[f32]) -> Vec<f32> {
        self.rotator.rotate_vec(v)
    }

    /// [`Rabitq::rotate`] into a reused buffer (resized to `padded_dim`).
    /// Every element of `out` is overwritten, so at steady state the call
    /// performs no heap allocation.
    pub fn rotate_into(&self, v: &[f32], out: &mut Vec<f32>) {
        out.resize(self.padded_dim(), 0.0);
        self.rotator.rotate(v, out);
    }

    /// Creates an empty [`CodeSet`] compatible with this quantizer.
    pub fn new_code_set(&self) -> CodeSet {
        CodeSet::new(self.padded_dim())
    }

    /// Encodes one vector against `centroid`, appending to `set`
    /// (Algorithm 1, lines 1–4).
    pub fn encode_into(&self, vector: &[f32], centroid: &[f32], set: &mut CodeSet) {
        assert_eq!(vector.len(), self.dim, "vector dimensionality");
        assert_eq!(centroid.len(), self.dim, "centroid dimensionality");
        assert_eq!(set.padded_dim(), self.padded_dim(), "code set layout");
        let padded = self.padded_dim();
        let words = padded / 64;

        let mut residual = vec![0.0f32; self.dim];
        vecs::sub(vector, centroid, &mut residual);
        let norm = vecs::norm(&residual);

        let mut rotated = vec![0.0f32; padded];
        self.rotator.rotate(&residual, &mut rotated);

        let mut bits = vec![0u64; words];
        let ip_oo = if norm > f32::EPSILON {
            for (d, &x) in rotated.iter().enumerate() {
                if x >= 0.0 {
                    bits[d / 64] |= 1u64 << (d % 64);
                }
            }
            // ⟨ō,o⟩ = ‖P⁻¹o‖₁/√B with o the unit residual (Eq. 30).
            (vecs::l1_norm_f64(&rotated) / norm as f64 / (padded as f64).sqrt()) as f32
        } else {
            // Zero residual: no direction information. Convention: empty
            // code, perfect alignment; the estimator multiplies the inner
            // product by norm = 0, so the value never matters.
            1.0
        };
        set.push(&bits, norm, ip_oo);
    }

    /// Encodes a collection of vectors sharing one centroid.
    pub fn encode_set<'a, I>(&self, vectors: I, centroid: &[f32]) -> CodeSet
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut set = self.new_code_set();
        for v in vectors {
            self.encode_into(v, centroid, &mut set);
        }
        set
    }

    /// Prepares a raw query against `centroid` (Algorithm 2, lines 1–2):
    /// rotates the residual and scalar-quantizes it with randomized
    /// rounding.
    pub fn prepare_query<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        centroid: &[f32],
        rng: &mut R,
    ) -> QuantizedQuery {
        self.prepare_query_bq(query, centroid, self.config.bq, rng)
    }

    /// [`Rabitq::prepare_query`] with an explicit `B_q` override — used by
    /// the Figure 6 verification study (the codes are `B_q`-independent,
    /// so one index serves every setting).
    pub fn prepare_query_bq<R: Rng + ?Sized>(
        &self,
        query: &[f32],
        centroid: &[f32],
        bq: u8,
        rng: &mut R,
    ) -> QuantizedQuery {
        assert_eq!(query.len(), self.dim, "query dimensionality");
        assert_eq!(centroid.len(), self.dim, "centroid dimensionality");
        let mut residual = vec![0.0f32; self.dim];
        vecs::sub(query, centroid, &mut residual);
        let rotated = self.rotator.rotate_vec(&residual);
        QuantizedQuery::from_rotated_residual(&rotated, bq, rng)
    }

    /// Prepares a query from pre-rotated pieces: `rotated_query = P⁻¹·q_r`
    /// and `rotated_centroid = P⁻¹·c`. This is the IVF fast path — the
    /// query is rotated once, and each probed cluster only pays an O(B)
    /// subtraction instead of an O(B²) rotation.
    pub fn prepare_query_prerotated<R: Rng + ?Sized>(
        &self,
        rotated_query: &[f32],
        rotated_centroid: &[f32],
        rng: &mut R,
    ) -> QuantizedQuery {
        let padded = self.padded_dim();
        assert_eq!(rotated_query.len(), padded, "rotated query length");
        assert_eq!(rotated_centroid.len(), padded, "rotated centroid length");
        let mut residual = vec![0.0f32; padded];
        vecs::sub(rotated_query, rotated_centroid, &mut residual);
        QuantizedQuery::from_rotated_residual(&residual, self.config.bq, rng)
    }

    /// [`Rabitq::prepare_query_prerotated`] into reusable scratch state:
    /// the residual buffer, the quantized query, and the fast-scan LUT all
    /// live in `scratch` and are overwritten in place. After the scratch
    /// warms up (one call per shape), the per-probe cost is **zero heap
    /// allocations** — this is what lets the IVF search loop probe
    /// thousands of buckets without touching the allocator.
    pub fn prepare_query_prerotated_into<R: Rng + ?Sized>(
        &self,
        rotated_query: &[f32],
        rotated_centroid: &[f32],
        scratch: &mut QueryScratch,
        rng: &mut R,
    ) {
        let padded = self.padded_dim();
        assert_eq!(rotated_query.len(), padded, "rotated query length");
        assert_eq!(rotated_centroid.len(), padded, "rotated centroid length");
        scratch.residual.resize(padded, 0.0);
        vecs::sub(rotated_query, rotated_centroid, &mut scratch.residual);
        scratch
            .query
            .quantize_from_rotated_residual(&scratch.residual, self.config.bq, rng);
        scratch.lut.rebuild(&scratch.query);
    }

    /// Estimates the squared distance between the (raw) query behind
    /// `query` and the vector behind code `i`, via the single-code bitwise
    /// kernel (Algorithm 2, lines 3–5).
    pub fn estimate(&self, query: &QuantizedQuery, set: &CodeSet, i: usize) -> DistanceEstimate {
        self.estimate_with_epsilon(query, set, i, self.config.epsilon0)
    }

    /// [`Rabitq::estimate`] with an explicit `ε₀` — the Figure 5 study
    /// sweeps the confidence parameter without rebuilding the index.
    pub fn estimate_with_epsilon(
        &self,
        query: &QuantizedQuery,
        set: &CodeSet,
        i: usize,
        epsilon0: f32,
    ) -> DistanceEstimate {
        debug_assert_eq!(query.padded_dim(), self.padded_dim());
        let ip_bin = ip_code_query(set.code_bits(i), query);
        estimator::estimate(ip_bin, set.factors(i), query, self.padded_dim(), epsilon0)
    }

    /// Packs a code set for the batch (fast-scan) kernel.
    pub fn pack(&self, set: &CodeSet) -> PackedCodes {
        PackedCodes::pack(set)
    }

    /// Builds the per-query fast-scan LUTs.
    pub fn build_lut(&self, query: &QuantizedQuery) -> Lut {
        Lut::build(query)
    }

    /// Serializes the quantizer: configuration plus the sampled rotation
    /// (the rotation *must* be persisted — resampling from the seed is
    /// only equivalent for the same library version, and codes are
    /// meaningless under any other rotation).
    pub fn write<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use crate::persist as p;
        p::write_usize(w, self.dim)?;
        p::write_u8(w, self.config.bq)?;
        p::write_f32(w, self.config.epsilon0)?;
        p::write_u64(w, self.config.seed)?;
        self.rotator.write(w)
    }

    /// Deserializes a quantizer written by [`Rabitq::write`].
    pub fn read<R: std::io::Read>(r: &mut R) -> std::io::Result<Self> {
        use crate::persist as p;
        let dim = p::read_usize(r)?;
        let bq = p::read_u8(r)?;
        if !(1..=8).contains(&bq) {
            return Err(p::invalid("B_q out of range"));
        }
        let epsilon0 = p::read_f32(r)?;
        let seed = p::read_u64(r)?;
        let rotator = Rotator::read(r)?;
        if rotator.dim() != dim {
            return Err(p::invalid("rotator dimensionality mismatch"));
        }
        let config = RabitqConfig {
            bq,
            epsilon0,
            seed,
            rotator: rotator.kind(),
            padded_dim: Some(rotator.padded_dim()),
        };
        Ok(Self {
            rotator,
            dim,
            config,
        })
    }

    /// Batch estimation over all packed codes, writing one estimate per
    /// code into `out`. Returns estimates identical (bit-for-bit) to
    /// [`Rabitq::estimate`] because the integer kernels are exact.
    pub fn estimate_batch(
        &self,
        query: &QuantizedQuery,
        packed: &PackedCodes,
        set: &CodeSet,
        out: &mut Vec<DistanceEstimate>,
    ) {
        self.estimate_batch_with_epsilon(query, packed, set, self.config.epsilon0, out);
    }

    /// [`Rabitq::estimate_batch`] with an explicit `ε₀` (Figure 5 sweep).
    pub fn estimate_batch_with_epsilon(
        &self,
        query: &QuantizedQuery,
        packed: &PackedCodes,
        set: &CodeSet,
        epsilon0: f32,
        out: &mut Vec<DistanceEstimate>,
    ) {
        let lut = Lut::build(query);
        self.estimate_batch_with_lut(query, &lut, packed, set, epsilon0, out);
    }

    /// [`Rabitq::estimate_batch_with_epsilon`] against a caller-provided
    /// LUT (normally [`QueryScratch::lut`], built once per probe by
    /// [`Rabitq::prepare_query_prerotated_into`]). `out` is sized with a
    /// single `resize` and then overwritten in place, so a reused buffer
    /// at steady state is written exactly once per element and the call
    /// performs no heap allocation.
    ///
    /// The kernel function pointer and the query-side affine terms of
    /// Eq. 20 are resolved once up front; each block is then one SIMD
    /// scan followed by the autovectorized affine map of
    /// [`estimator::estimate_block`] over the precomputed factor columns.
    pub fn estimate_batch_with_lut(
        &self,
        query: &QuantizedQuery,
        lut: &Lut,
        packed: &PackedCodes,
        set: &CodeSet,
        epsilon0: f32,
        out: &mut Vec<DistanceEstimate>,
    ) {
        debug_assert_eq!(packed.len(), set.len());
        out.resize(set.len(), DistanceEstimate::default());
        let mut buf = [0u32; BLOCK];
        let terms = estimator::QueryTerms::new(query, self.padded_dim());
        let scanner = packed.scanner(lut);
        for b in 0..packed.n_blocks() {
            scanner.scan_block(b, &mut buf);
            let start = b * BLOCK;
            let take = BLOCK.min(set.len() - start);
            estimator::estimate_block(
                &buf[..take],
                set.factor_slices(start, take),
                &terms,
                epsilon0,
                &mut out[start..start + take],
            );
        }
    }
}

/// Reusable query-preparation state for the IVF fast path: the rotated
/// residual buffer, the quantized query, and its fast-scan LUT.
///
/// One scratch serves one search thread; [`Rabitq::prepare_query_prerotated_into`]
/// overwrites it per probed bucket without allocating (after the first,
/// shape-establishing call). This is the core half of the engine-level
/// `SearchScratch` in `rabitq-ivf`.
pub struct QueryScratch {
    pub(crate) residual: Vec<f32>,
    pub(crate) query: QuantizedQuery,
    pub(crate) lut: Lut,
}

impl QueryScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self {
            residual: Vec::new(),
            query: QuantizedQuery::empty(),
            lut: Lut::empty(),
        }
    }

    /// The most recently prepared quantized query.
    #[inline]
    pub fn query(&self) -> &QuantizedQuery {
        &self.query
    }

    /// The LUT built for the most recently prepared query.
    #[inline]
    pub fn lut(&self) -> &Lut {
        &self.lut
    }
}

impl Default for QueryScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rabitq_math::rng::standard_normal_vec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_data(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| standard_normal_vec(&mut rng, dim)).collect()
    }

    #[test]
    fn single_and_batch_paths_agree_bit_for_bit() {
        let dim = 120;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let data = make_data(70, dim, 1);
        let centroid = vec![0.1f32; dim];
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let packed = q.pack(&codes);
        let mut rng = StdRng::seed_from_u64(2);
        let query_vec = standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
        let mut batch = Vec::new();
        q.estimate_batch(&prepared, &packed, &codes, &mut batch);
        assert_eq!(batch.len(), 70);
        for i in 0..70 {
            let single = q.estimate(&prepared, &codes, i);
            assert_eq!(single, batch[i], "code {i}");
        }
    }

    #[test]
    fn scratch_query_path_matches_allocating_path_bit_for_bit() {
        // Same RNG stream + same residual ⇒ the scratch-based prepare and
        // LUT must reproduce the allocating path exactly, across repeated
        // reuse against different centroids.
        let dim = 96;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let data = make_data(40, dim, 15);
        let centroids: Vec<Vec<f32>> = (0..3)
            .map(|c| (0..dim).map(|i| ((i + c) as f32 * 0.05).cos()).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(16);
        let query_vec = standard_normal_vec(&mut rng, dim);
        let rotated_query = q.rotate(&query_vec);
        let mut scratch = QueryScratch::new();
        for centroid in &centroids {
            let codes = q.encode_set(data.iter().map(|v| v.as_slice()), centroid);
            let packed = q.pack(&codes);
            let rotated_centroid = q.rotate(centroid);
            let mut rng_a = StdRng::seed_from_u64(17);
            let mut rng_b = StdRng::seed_from_u64(17);
            let prepared =
                q.prepare_query_prerotated(&rotated_query, &rotated_centroid, &mut rng_a);
            q.prepare_query_prerotated_into(
                &rotated_query,
                &rotated_centroid,
                &mut scratch,
                &mut rng_b,
            );
            assert_eq!(scratch.query().qu(), prepared.qu());
            let mut batch_a = Vec::new();
            q.estimate_batch(&prepared, &packed, &codes, &mut batch_a);
            let mut batch_b = Vec::new();
            q.estimate_batch_with_lut(
                scratch.query(),
                scratch.lut(),
                &packed,
                &codes,
                q.config().epsilon0,
                &mut batch_b,
            );
            assert_eq!(batch_a, batch_b);
        }
    }

    #[test]
    fn estimates_track_true_distances() {
        // With D = 512 the bound is ~1.9·0.75/√511 ≈ 6% on ⟨o,q⟩; relative
        // distance errors should be well under 25% for generic Gaussian
        // data.
        let dim = 512;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let data = make_data(50, dim, 3);
        let centroid = vec![0.0f32; dim];
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let mut rng = StdRng::seed_from_u64(4);
        let query_vec = standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
        let mut rel_err_sum = 0.0f64;
        for (i, v) in data.iter().enumerate() {
            let est = q.estimate(&prepared, &codes, i);
            let exact = vecs::l2_sq(v, &query_vec);
            rel_err_sum += ((est.dist_sq - exact).abs() / exact) as f64;
        }
        let avg = rel_err_sum / data.len() as f64;
        assert!(avg < 0.15, "average relative error {avg}");
    }

    #[test]
    fn lower_bound_holds_for_the_vast_majority() {
        // The one-sided miss probability at ε₀ = 1.9 is ≈ P(N(0,1) > 1.9)
        // ≈ 2.9% per pair (Lemma B.1 with √(D−1)·X₁ ≈ N(0,1)), so over 200
        // pairs we expect ~6 violations; 15 is > 3σ above that mean.
        let dim = 128;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let data = make_data(200, dim, 5);
        let centroid = vec![0.0f32; dim];
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let mut rng = StdRng::seed_from_u64(6);
        let query_vec = standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
        let mut violations = 0;
        for (i, v) in data.iter().enumerate() {
            let est = q.estimate(&prepared, &codes, i);
            let exact = vecs::l2_sq(v, &query_vec);
            if est.lower_bound > exact {
                violations += 1;
            }
        }
        assert!(violations <= 15, "{violations} bound violations out of 200");
    }

    #[test]
    fn prerotated_query_path_matches_direct_path_statistically() {
        // The pre-rotated path quantizes the same residual, so with the
        // same RNG stream it must produce the identical query.
        let dim = 100;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let centroid: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.01).sin()).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let query_vec = standard_normal_vec(&mut rng, dim);

        let mut rng_a = StdRng::seed_from_u64(8);
        let direct = q.prepare_query(&query_vec, &centroid, &mut rng_a);

        let rotated_query = q.rotate(&query_vec);
        let rotated_centroid = q.rotate(&centroid);
        let mut rng_b = StdRng::seed_from_u64(8);
        let prerotated = q.prepare_query_prerotated(&rotated_query, &rotated_centroid, &mut rng_b);

        // Rotation is linear so the residuals agree to f32 round-off; the
        // randomized rounding sees near-identical inputs and the identical
        // RNG stream. Allow an off-by-one on a few entries due to round-off
        // at rounding boundaries.
        assert!((direct.q_dist - prerotated.q_dist).abs() < 1e-3);
        let diffs = direct
            .qu()
            .iter()
            .zip(prerotated.qu().iter())
            .filter(|(a, b)| a != b)
            .count();
        assert!(diffs <= 2, "{diffs} entries differ");
    }

    #[test]
    fn alignment_concentrates_around_0_8() {
        let dim = 256;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let data = make_data(100, dim, 9);
        let centroid = vec![0.0f32; dim];
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let mean: f64 = (0..100).map(|i| codes.factors(i).ip_oo as f64).sum::<f64>() / 100.0;
        assert!((mean - 0.8).abs() < 0.02, "mean alignment {mean}");
    }

    #[test]
    fn vector_equal_to_centroid_gets_exact_estimate() {
        let dim = 64;
        let q = Rabitq::new(dim, RabitqConfig::default());
        let centroid = vec![0.5f32; dim];
        let codes = q.encode_set(std::iter::once(centroid.as_slice()), &centroid);
        assert_eq!(codes.factors(0).norm, 0.0);
        let mut rng = StdRng::seed_from_u64(10);
        let query_vec = standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
        let est = q.estimate(&prepared, &codes, 0);
        let exact = vecs::l2_sq(&centroid, &query_vec);
        assert!((est.dist_sq - exact).abs() / exact < 1e-3);
    }

    #[test]
    fn longer_codes_reduce_error() {
        // The paper's padding trick (Section 5.1): more bits, lower error.
        let dim = 64;
        let data = make_data(80, dim, 11);
        let centroid = vec![0.0f32; dim];
        let mut avg_err = Vec::new();
        for padded in [64usize, 256] {
            let cfg = RabitqConfig {
                padded_dim: Some(padded),
                ..RabitqConfig::default()
            };
            let q = Rabitq::new(dim, cfg);
            let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
            let mut rng = StdRng::seed_from_u64(12);
            let query_vec = standard_normal_vec(&mut rng, dim);
            let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
            let mut err = 0.0f64;
            for (i, v) in data.iter().enumerate() {
                let est = q.estimate(&prepared, &codes, i);
                let exact = vecs::l2_sq(v, &query_vec);
                err += ((est.dist_sq - exact).abs() / exact) as f64;
            }
            avg_err.push(err / data.len() as f64);
        }
        assert!(
            avg_err[1] < avg_err[0],
            "256-bit codes ({}) should beat 64-bit codes ({})",
            avg_err[1],
            avg_err[0]
        );
    }

    #[test]
    fn hadamard_rotator_produces_comparable_accuracy() {
        let dim = 128;
        let cfg = RabitqConfig {
            rotator: RotatorKind::RandomizedHadamard,
            ..RabitqConfig::default()
        };
        let q = Rabitq::new(dim, cfg);
        let data = make_data(60, dim, 13);
        let centroid = vec![0.0f32; dim];
        let codes = q.encode_set(data.iter().map(|v| v.as_slice()), &centroid);
        let mut rng = StdRng::seed_from_u64(14);
        let query_vec = standard_normal_vec(&mut rng, dim);
        let prepared = q.prepare_query(&query_vec, &centroid, &mut rng);
        let mut err = 0.0f64;
        for (i, v) in data.iter().enumerate() {
            let est = q.estimate(&prepared, &codes, i);
            let exact = vecs::l2_sq(v, &query_vec);
            err += ((est.dist_sq - exact).abs() / exact) as f64;
        }
        let avg = err / data.len() as f64;
        assert!(avg < 0.35, "average relative error {avg}");
    }
}
