//! # rabitq-core — the RaBitQ quantizer
//!
//! A from-scratch implementation of *RaBitQ: Quantizing High-Dimensional
//! Vectors with a Theoretical Error Bound for Approximate Nearest Neighbor
//! Search* (Gao & Long, SIGMOD 2024).
//!
//! RaBitQ quantizes a `D`-dimensional vector into a `D`-bit string and
//! estimates squared Euclidean distances from those bits with an **unbiased**
//! estimator whose error is `O(1/√D)` with high probability — the
//! asymptotically optimal rate for `D`-bit codes. Contrast with PQ and its
//! variants, whose estimators are biased and carry no bound.
//!
//! The crate is organized along the paper's structure:
//!
//! | Module | Paper section | Content |
//! |---|---|---|
//! | [`rotation`] | 3.1.2 | Haar-orthogonal & randomized-Hadamard rotators |
//! | [`code`] | 3.1.3 | bit-string codes + precomputed factors |
//! | [`query`] | 3.3.1 | randomized `B_q`-bit query quantization |
//! | [`kernels`] | 3.3.2 | single-code bitwise AND+popcount kernel |
//! | [`fastscan`] | 3.3.2 | 32-code batch kernel (scalar/AVX2/AVX-512/NEON) |
//! | [`estimator`] | 3.2 | unbiased estimator + confidence bounds |
//! | [`quantizer`] | 3.4 | the [`Rabitq`] orchestrator (Algorithms 1–2) |
//! | [`similarity`] | 7 (footnote 8) | inner-product & cosine estimation |
//!
//! Start at [`Rabitq`].

pub mod code;
pub mod estimator;
pub mod fastscan;
pub mod hw;
pub mod kernels;
pub mod persist;
pub mod quantizer;
pub mod query;
pub mod rotation;
pub mod similarity;

pub use code::{CodeFactors, CodeSet};
pub use estimator::DistanceEstimate;
pub use fastscan::{BlockScanner, Kernel, Lut, PackedCodes};
pub use quantizer::{QueryScratch, Rabitq, RabitqConfig};
pub use query::QuantizedQuery;
pub use rotation::{default_padded_dim, Rotator, RotatorKind};
pub use similarity::{CosineEstimate, IpEstimate, IpQueryTerms};
