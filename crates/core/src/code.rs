//! Storage for RaBitQ quantization codes.
//!
//! A code is the `B`-bit sign string `x̄_b` of the rotated residual vector
//! (Section 3.1.3), stored as `B/64` little-endian `u64` words. Alongside
//! each code the index phase precomputes (Algorithm 1):
//!
//! * `norm = ‖o_r − c‖` — distance from the raw vector to its centroid;
//! * `ip_oo = ⟨ō, o⟩ = ‖P⁻¹o‖₁ / √B` — alignment between the vector and its
//!   quantized form (Eq. 30), the denominator of the estimator;
//! * `popcount` — number of 1 bits, reused by the estimator (Eq. 20).
//!
//! Codes are stored struct-of-arrays so that scans stream through the bit
//! words without dragging the factors into cache, and so that the fast-scan
//! packer can re-layout the bits independently.
//!
//! Beyond the raw factors, `push` precomputes the query-independent terms
//! the estimator needs per (query, code) pair — `1/⟨ō,o⟩`, `‖o_r − c‖²`,
//! and the `ε₀`-independent confidence half-width of Eq. 16 — so the batch
//! estimate reduces to an affine map over the kernel outputs with no
//! division or `sqrt` in the scan loop. The derived columns are never
//! persisted: [`CodeSet::read`] recomputes them, keeping the on-disk
//! format unchanged.

use crate::estimator;

/// Per-vector precomputed factors used by the distance estimator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodeFactors {
    /// `‖o_r − c‖`: distance from the raw vector to the centroid.
    pub norm: f32,
    /// `⟨ō, o⟩`: inner product between the quantized and exact unit vector.
    /// Concentrated around 0.8 (Section 3.2.1). `1.0` for zero residuals.
    pub ip_oo: f32,
    /// Number of set bits in the code.
    pub popcount: u32,
}

/// A struct-of-arrays collection of RaBitQ codes sharing one rotation.
#[derive(Clone, Debug, Default)]
pub struct CodeSet {
    padded_dim: usize,
    words_per_code: usize,
    bits: Vec<u64>,
    norms: Vec<f32>,
    ip_oos: Vec<f32>,
    popcounts: Vec<u32>,
    // Derived, query-independent estimator columns (recomputed on read).
    norms_sq: Vec<f32>,
    inv_ip_oos: Vec<f32>,
    err_bases: Vec<f32>,
}

impl CodeSet {
    /// Creates an empty set for codes of length `padded_dim` bits.
    ///
    /// # Panics
    /// Panics unless `padded_dim` is a positive multiple of 64.
    pub fn new(padded_dim: usize) -> Self {
        assert!(
            padded_dim > 0 && padded_dim.is_multiple_of(64),
            "code length must be a positive multiple of 64"
        );
        Self {
            padded_dim,
            words_per_code: padded_dim / 64,
            bits: Vec::new(),
            norms: Vec::new(),
            ip_oos: Vec::new(),
            popcounts: Vec::new(),
            norms_sq: Vec::new(),
            inv_ip_oos: Vec::new(),
            err_bases: Vec::new(),
        }
    }

    /// Creates an empty set with capacity for `n` codes.
    pub fn with_capacity(padded_dim: usize, n: usize) -> Self {
        let mut s = Self::new(padded_dim);
        s.bits.reserve(n * s.words_per_code);
        s.norms.reserve(n);
        s.ip_oos.reserve(n);
        s.popcounts.reserve(n);
        s.norms_sq.reserve(n);
        s.inv_ip_oos.reserve(n);
        s.err_bases.reserve(n);
        s
    }

    /// Number of codes stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Code length in bits (`B`).
    #[inline]
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// Number of `u64` words per code.
    #[inline]
    pub fn words_per_code(&self) -> usize {
        self.words_per_code
    }

    /// Appends a code. `bits` must hold exactly `padded_dim / 64` words.
    pub fn push(&mut self, bits: &[u64], norm: f32, ip_oo: f32) {
        assert_eq!(bits.len(), self.words_per_code, "code word count");
        let popcount: u32 = bits.iter().map(|w| w.count_ones()).sum();
        self.bits.extend_from_slice(bits);
        self.norms.push(norm);
        self.ip_oos.push(ip_oo);
        self.popcounts.push(popcount);
        self.norms_sq.push(norm * norm);
        self.inv_ip_oos.push(estimator::inv_ip_oo(ip_oo));
        self.err_bases
            .push(estimator::error_base(ip_oo, self.padded_dim));
    }

    /// The bit words of code `i`.
    #[inline]
    pub fn code_bits(&self, i: usize) -> &[u64] {
        &self.bits[i * self.words_per_code..(i + 1) * self.words_per_code]
    }

    /// The precomputed factors of code `i`.
    #[inline]
    pub fn factors(&self, i: usize) -> CodeFactors {
        CodeFactors {
            norm: self.norms[i],
            ip_oo: self.ip_oos[i],
            popcount: self.popcounts[i],
        }
    }

    /// All norms (`‖o_r − c‖` per vector).
    #[inline]
    pub fn norms(&self) -> &[f32] {
        &self.norms
    }

    /// All popcounts (set-bit count per code).
    #[inline]
    pub fn popcounts(&self) -> &[u32] {
        &self.popcounts
    }

    /// Struct-of-arrays factor columns for codes `start..start + len`, in
    /// the layout [`estimator::estimate_block`] consumes.
    #[inline]
    pub fn factor_slices(&self, start: usize, len: usize) -> estimator::FactorSlices<'_> {
        let end = start + len;
        estimator::FactorSlices {
            norms: &self.norms[start..end],
            norms_sq: &self.norms_sq[start..end],
            inv_ip_oos: &self.inv_ip_oos[start..end],
            err_bases: &self.err_bases[start..end],
            popcounts: &self.popcounts[start..end],
        }
    }

    /// Bit `d` of code `i` (dimension `d` of the sign string).
    #[inline]
    pub fn bit(&self, i: usize, d: usize) -> bool {
        debug_assert!(d < self.padded_dim);
        let w = self.code_bits(i)[d / 64];
        (w >> (d % 64)) & 1 == 1
    }

    /// Reconstructs the quantized unit vector `x̄ = (2x̄_b − 1)/√B` in the
    /// rotated basis. Used by tests and the ablation experiments; not a hot
    /// path.
    pub fn reconstruct_rotated(&self, i: usize) -> Vec<f32> {
        let inv_sqrt = 1.0 / (self.padded_dim as f32).sqrt();
        (0..self.padded_dim)
            .map(|d| if self.bit(i, d) { inv_sqrt } else { -inv_sqrt })
            .collect()
    }

    /// Serializes the set (see [`crate::persist`]).
    pub fn write<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        use crate::persist as p;
        p::write_usize(w, self.padded_dim)?;
        p::write_u64_slice(w, &self.bits)?;
        p::write_f32_slice(w, &self.norms)?;
        p::write_f32_slice(w, &self.ip_oos)?;
        p::write_u32_slice(w, &self.popcounts)
    }

    /// Deserializes a set written by [`CodeSet::write`].
    pub fn read<R: std::io::Read>(r: &mut R) -> std::io::Result<Self> {
        use crate::persist as p;
        let padded_dim = p::read_usize(r)?;
        if padded_dim == 0 || padded_dim % 64 != 0 {
            return Err(p::invalid("bad code length"));
        }
        let words_per_code = padded_dim / 64;
        let bits = p::read_u64_vec(r)?;
        let norms = p::read_f32_vec(r)?;
        let ip_oos = p::read_f32_vec(r)?;
        let popcounts = p::read_u32_vec(r)?;
        let n = norms.len();
        if bits.len() != n * words_per_code || ip_oos.len() != n || popcounts.len() != n {
            return Err(p::invalid("code set arrays disagree on length"));
        }
        // The derived estimator columns are not part of the format;
        // recompute them with the same ops `push` uses so a loaded set is
        // bit-identical to a freshly built one.
        let norms_sq = norms.iter().map(|&v| v * v).collect();
        let inv_ip_oos = ip_oos.iter().map(|&v| estimator::inv_ip_oo(v)).collect();
        let err_bases = ip_oos
            .iter()
            .map(|&v| estimator::error_base(v, padded_dim))
            .collect();
        Ok(Self {
            padded_dim,
            words_per_code,
            bits,
            norms,
            ip_oos,
            popcounts,
            norms_sq,
            inv_ip_oos,
            err_bases,
        })
    }

    /// Shannon entropy (in bits) of each bit position across the set,
    /// summed over positions — the Appendix E uniformity diagnostic. A
    /// perfectly balanced code has entropy equal to `padded_dim`.
    pub fn total_bit_entropy(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        let n = self.len() as f64;
        let mut ones = vec![0usize; self.padded_dim];
        for i in 0..self.len() {
            for (w_idx, &w) in self.code_bits(i).iter().enumerate() {
                let mut word = w;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    ones[w_idx * 64 + b] += 1;
                    word &= word - 1;
                }
            }
        }
        ones.iter()
            .map(|&c| {
                let p = c as f64 / n;
                if p <= 0.0 || p >= 1.0 {
                    0.0
                } else {
                    -(p * p.log2() + (1.0 - p) * (1.0 - p).log2())
                }
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back_round_trips() {
        let mut set = CodeSet::new(128);
        let code = [0xDEAD_BEEF_u64, 0x0F0F_0F0F_0F0F_0F0F];
        set.push(&code, 2.5, 0.8);
        assert_eq!(set.len(), 1);
        assert_eq!(set.code_bits(0), &code);
        let f = set.factors(0);
        assert_eq!(f.norm, 2.5);
        assert_eq!(f.ip_oo, 0.8);
        assert_eq!(f.popcount, code.iter().map(|w| w.count_ones()).sum::<u32>());
    }

    #[test]
    fn bit_accessor_matches_word_layout() {
        let mut set = CodeSet::new(64);
        set.push(&[0b1010], 1.0, 1.0);
        assert!(!set.bit(0, 0));
        assert!(set.bit(0, 1));
        assert!(!set.bit(0, 2));
        assert!(set.bit(0, 3));
        assert!(!set.bit(0, 63));
    }

    #[test]
    fn reconstruct_produces_unit_vector_with_matching_signs() {
        let mut set = CodeSet::new(64);
        set.push(&[u64::MAX], 1.0, 1.0);
        let v = set.reconstruct_rotated(0);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>();
        assert!((norm - 1.0).abs() < 1e-5);
        assert!(v.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn entropy_of_constant_bits_is_zero_and_balanced_is_full() {
        let mut set = CodeSet::new(64);
        set.push(&[0], 1.0, 1.0);
        set.push(&[0], 1.0, 1.0);
        assert_eq!(set.total_bit_entropy(), 0.0);

        let mut balanced = CodeSet::new(64);
        balanced.push(&[0], 1.0, 1.0);
        balanced.push(&[u64::MAX], 1.0, 1.0);
        assert!((balanced.total_bit_entropy() - 64.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_unaligned_code_length() {
        CodeSet::new(100);
    }

    #[test]
    #[should_panic(expected = "word count")]
    fn rejects_wrong_word_count_on_push() {
        let mut set = CodeSet::new(128);
        set.push(&[0u64], 1.0, 1.0);
    }
}
