//! The unbiased distance estimator and its confidence bound
//! (Sections 3.2 and 3.3, Theorem 3.2).
//!
//! Given the integer kernel output `ip_bin = ⟨x̄_b, q̄_u⟩`, the quantized
//! inner product of unit vectors is recovered by Eq. 20:
//!
//! ```text
//! ⟨x̄, q̄⟩ = 2Δ/√B·⟨x̄_b,q̄_u⟩ + 2v_l/√B·popcount(x̄_b) − Δ/√B·Σq̄_u − √B·v_l
//! ```
//!
//! then `⟨o,q⟩ ≈ ⟨x̄,q̄⟩ / ⟨ō,o⟩` (unbiased, Eq. 13) and the squared raw
//! distance follows from Eq. 2. The half-width of the confidence interval
//! on `⟨o,q⟩` is `ε₀·√((1−⟨ō,o⟩²)/(⟨ō,o⟩²·(B−1)))` (Eq. 14/16), with
//! `ε₀ = 1.9` giving near-perfect coverage in practice (Section 5.2.4).

use crate::code::CodeFactors;
use crate::query::QuantizedQuery;

/// `⟨ō,o⟩` below this is treated as degenerate (probability ~0 under the
/// random rotation); the estimator then reports maximal uncertainty rather
/// than dividing by ~0.
const MIN_IP_OO: f32 = 1e-5;

/// Output of the estimator for one (query, code) pair.
///
/// `Default` is the all-zero estimate — it exists so batch outputs can be
/// `resize`d (single touch) before being overwritten in place.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DistanceEstimate {
    /// Unbiased estimate of the squared raw distance `‖o_r − q_r‖²`.
    pub dist_sq: f32,
    /// Lower confidence bound on the squared distance (clamped to ≥ 0).
    /// Used by the re-ranking rule of Section 4: a candidate whose lower
    /// bound exceeds the current K-th best exact distance is dropped.
    pub lower_bound: f32,
    /// Upper confidence bound on the squared distance — the dual of
    /// [`DistanceEstimate::lower_bound`]: a candidate whose upper bound is
    /// below a range-query radius is *certified* inside without touching
    /// the raw vector.
    pub upper_bound: f32,
    /// Estimated inner product `⟨o, q⟩` of the unit residuals.
    pub ip_est: f32,
    /// Half-width of the confidence interval on `⟨o, q⟩`.
    pub ip_error: f32,
}

/// Per-code state the estimator needs besides the kernel output.
///
/// This mirrors [`CodeFactors`] but is kept separate so callers can stage
/// factors in scan order without touching the bit storage.
pub type Factors = CodeFactors;

/// The query-independent reciprocal alignment `1/max(⟨ō,o⟩, ε)` — the
/// estimator divides by `⟨ō,o⟩` once per (query, code) pair, so the batch
/// path precomputes the reciprocal at encode time and multiplies instead.
#[inline]
pub fn inv_ip_oo(ip_oo: f32) -> f32 {
    1.0 / ip_oo.max(MIN_IP_OO)
}

/// The `ε₀`-independent part of the Eq. 16 confidence half-width:
/// `√((1−⟨ō,o⟩²)/(⟨ō,o⟩²·(B−1)))`. Query-independent, so it is
/// precomputed per code at encode time — this removes the `sqrt` the
/// estimator used to pay per (query, code) pair.
#[inline]
pub fn error_base(ip_oo: f32, padded_dim: usize) -> f32 {
    let ip = ip_oo.max(MIN_IP_OO);
    let ratio = ((1.0 - ip * ip).max(0.0)) / (ip * ip);
    (ratio / (padded_dim as f32 - 1.0)).sqrt()
}

/// The confidence half-width on `⟨o,q⟩` for a code with alignment `ip_oo`
/// and code length `padded_dim`, at confidence parameter `epsilon0`
/// (Eq. 16). Independent of the query; `epsilon0 · error_base` exactly,
/// so a precomputed [`error_base`] reproduces this bit-for-bit.
#[inline]
pub fn ip_confidence_halfwidth(ip_oo: f32, padded_dim: usize, epsilon0: f32) -> f32 {
    epsilon0 * error_base(ip_oo, padded_dim)
}

/// Query-side coefficients of the estimator's affine map, computed once
/// per (query, code length) pair. Eq. 20 recovers `⟨x̄, q̄⟩` as
/// `a·⟨x̄_b,q̄_u⟩ + b·popcount + c`, and Eq. 2 turns `⟨o,q⟩` into a squared
/// distance through `base − cross·⟨o,q⟩` — every per-code quantity the
/// scan loop needs is one fused multiply-add away from the kernel output.
#[derive(Clone, Copy, Debug)]
pub struct QueryTerms {
    /// `2Δ/√B` — coefficient of the kernel output.
    pub a: f32,
    /// `2v_l/√B` — coefficient of the code popcount.
    pub b: f32,
    /// `−Δ/√B·Σq̄_u − √B·v_l` — the per-query constant.
    pub c: f32,
    /// `‖q_r − c‖²` — the query half of the distance identity.
    pub q_dist_sq: f32,
    /// `2‖q_r − c‖` — the cross term is `two_q_dist · norm`.
    pub two_q_dist: f32,
}

impl QueryTerms {
    /// Precomputes the coefficients for one quantized query.
    #[inline]
    pub fn new(query: &QuantizedQuery, padded_dim: usize) -> Self {
        let sqrt_b = (padded_dim as f32).sqrt();
        let inv_sqrt_b = 1.0 / sqrt_b;
        Self {
            a: 2.0 * query.delta * inv_sqrt_b,
            b: 2.0 * query.v_l * inv_sqrt_b,
            c: -(query.delta * inv_sqrt_b * query.sum_qu as f32) - sqrt_b * query.v_l,
            q_dist_sq: query.q_dist * query.q_dist,
            two_q_dist: 2.0 * query.q_dist,
        }
    }

    /// Recovers `⟨x̄, q̄⟩` from the integer kernel output (Eq. 20).
    #[inline]
    pub fn ip_quantized(&self, ip_bin: u32, popcount: u32) -> f32 {
        self.a * ip_bin as f32 + self.b * popcount as f32 + self.c
    }
}

/// Recovers `⟨x̄, q̄⟩` from the integer kernel output (Eq. 20).
#[inline]
pub fn ip_quantized(ip_bin: u32, popcount: u32, query: &QuantizedQuery, padded_dim: usize) -> f32 {
    QueryTerms::new(query, padded_dim).ip_quantized(ip_bin, popcount)
}

/// The shared per-code estimator body. Every public entry point — the
/// single-code [`estimate`] and the batch [`estimate_block`] — funnels
/// through this exact instruction sequence, which is what makes their
/// outputs bit-identical (SIMD lanes perform the same IEEE-754 ops as the
/// scalar loop).
#[inline(always)]
fn estimate_core(
    ip_xq: f32,
    inv_oo: f32,
    err_base: f32,
    norm: f32,
    norm_sq: f32,
    terms: &QueryTerms,
    epsilon0: f32,
) -> DistanceEstimate {
    let ip_est = ip_xq * inv_oo;
    let ip_error = epsilon0 * err_base;
    let cross = terms.two_q_dist * norm;
    let base = norm_sq + terms.q_dist_sq;
    DistanceEstimate {
        dist_sq: base - cross * ip_est,
        lower_bound: (base - cross * (ip_est + ip_error)).max(0.0),
        upper_bound: base - cross * (ip_est - ip_error),
        ip_est,
        ip_error,
    }
}

/// Full estimator: kernel output + per-code factors → distance estimate
/// with confidence bound.
#[inline]
pub fn estimate(
    ip_bin: u32,
    factors: Factors,
    query: &QuantizedQuery,
    padded_dim: usize,
    epsilon0: f32,
) -> DistanceEstimate {
    let terms = QueryTerms::new(query, padded_dim);
    estimate_core(
        terms.ip_quantized(ip_bin, factors.popcount),
        inv_ip_oo(factors.ip_oo),
        error_base(factors.ip_oo, padded_dim),
        factors.norm,
        factors.norm * factors.norm,
        &terms,
        epsilon0,
    )
}

/// Struct-of-arrays view of the per-code factor columns for one contiguous
/// code range, in scan order. Produced by
/// [`crate::code::CodeSet::factor_slices`].
#[derive(Clone, Copy, Debug)]
pub struct FactorSlices<'a> {
    /// `‖o_r − c‖` per code.
    pub norms: &'a [f32],
    /// `‖o_r − c‖²` per code (precomputed at encode time).
    pub norms_sq: &'a [f32],
    /// `1/max(⟨ō,o⟩, ε)` per code (precomputed; see [`inv_ip_oo`]).
    pub inv_ip_oos: &'a [f32],
    /// [`error_base`] per code (precomputed).
    pub err_bases: &'a [f32],
    /// Set-bit count per code.
    pub popcounts: &'a [u32],
}

/// Batch estimator over one block of kernel outputs: the affine map
/// `dist = base − cross·((a·ip_bin + b·pop + c)·inv_ip_oo)` applied
/// column-wise over struct-of-arrays factors — no division, no `sqrt`,
/// no per-code branching, so the loop autovectorizes. Results are
/// bit-identical to calling [`estimate`] per code.
pub fn estimate_block(
    ip_bins: &[u32],
    factors: FactorSlices<'_>,
    terms: &QueryTerms,
    epsilon0: f32,
    out: &mut [DistanceEstimate],
) {
    let n = ip_bins.len();
    assert!(
        factors.norms.len() == n
            && factors.norms_sq.len() == n
            && factors.inv_ip_oos.len() == n
            && factors.err_bases.len() == n
            && factors.popcounts.len() == n
            && out.len() == n,
        "factor columns out of sync with kernel outputs"
    );
    for i in 0..n {
        out[i] = estimate_core(
            terms.ip_quantized(ip_bins[i], factors.popcounts[i]),
            factors.inv_ip_oos[i],
            factors.err_bases[i],
            factors.norms[i],
            factors.norms_sq[i],
            terms,
            epsilon0,
        );
    }
}

/// The *biased* PQ-style alternative `⟨o,q⟩ ≈ ⟨ō,q⟩` (i.e. treating the
/// quantized vector as the data vector), provided for the Appendix F.2
/// ablation. Its bias is ≈ E[⟨ō,o⟩] ≈ 0.8.
#[inline]
pub fn estimate_biased(
    ip_bin: u32,
    factors: Factors,
    query: &QuantizedQuery,
    padded_dim: usize,
) -> DistanceEstimate {
    let ip_est = ip_quantized(ip_bin, factors.popcount, query, padded_dim);
    let cross = 2.0 * factors.norm * query.q_dist;
    let base = factors.norm * factors.norm + query.q_dist * query.q_dist;
    DistanceEstimate {
        dist_sq: base - cross * ip_est,
        lower_bound: 0.0,
        upper_bound: f32::INFINITY,
        ip_est,
        ip_error: f32::INFINITY,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ip_code_query;
    use crate::query::QuantizedQuery;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ip_quantized_matches_direct_inner_product() {
        // ⟨x̄, q̄⟩ computed through the integer identity must equal the
        // direct dot product between the reconstructed ±1/√B vector and the
        // de-quantized query entries.
        let padded = 128usize;
        let mut rng = StdRng::seed_from_u64(21);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded);
        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);

        let mut set = crate::code::CodeSet::new(padded);
        let code: Vec<u64> = (0..padded / 64).map(|_| rand::Rng::gen(&mut rng)).collect();
        set.push(&code, 1.0, 0.8);

        let ip_bin = ip_code_query(set.code_bits(0), &query);
        let via_identity = ip_quantized(ip_bin, set.factors(0).popcount, &query, padded);

        let xbar = set.reconstruct_rotated(0);
        let direct: f32 = (0..padded).map(|i| xbar[i] * query.dequantized(i)).sum();

        assert!(
            (via_identity - direct).abs() < 1e-3,
            "{via_identity} vs {direct}"
        );
    }

    #[test]
    fn error_halfwidth_matches_formula_and_shrinks_with_dimension() {
        let e0 = 1.9f32;
        let hw128 = ip_confidence_halfwidth(0.8, 128, e0);
        let manual = e0 * ((1.0 - 0.64f32) / 0.64 / 127.0).sqrt();
        assert!((hw128 - manual).abs() < 1e-6);
        let hw1024 = ip_confidence_halfwidth(0.8, 1024, e0);
        assert!(hw1024 < hw128 / 2.0, "O(1/√B): {hw128} vs {hw1024}");
    }

    #[test]
    fn degenerate_alignment_reports_huge_uncertainty_without_nan() {
        let hw = ip_confidence_halfwidth(0.0, 128, 1.9);
        assert!(hw.is_finite());
        assert!(hw > 1000.0);
    }

    #[test]
    fn zero_norm_vector_estimates_exactly_q_dist_sq() {
        let padded = 64usize;
        let mut rng = StdRng::seed_from_u64(33);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded);
        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        let f = Factors {
            norm: 0.0,
            ip_oo: 1.0,
            popcount: 0,
        };
        let est = estimate(123, f, &query, padded, 1.9);
        let want = query.q_dist * query.q_dist;
        assert!((est.dist_sq - want).abs() < 1e-4);
        assert!(est.lower_bound <= est.dist_sq);
    }

    #[test]
    fn lower_bound_never_exceeds_estimate() {
        let padded = 128usize;
        let mut rng = StdRng::seed_from_u64(44);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded);
        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        for ip_bin in [0u32, 100, 500, 1000] {
            let f = Factors {
                norm: 2.0,
                ip_oo: 0.8,
                popcount: 64,
            };
            let est = estimate(ip_bin, f, &query, padded, 1.9);
            assert!(est.lower_bound <= est.dist_sq.max(0.0) + 1e-5);
            assert!(est.lower_bound >= 0.0);
            assert!(est.upper_bound >= est.dist_sq - 1e-5);
            // Interval is symmetric around the estimate (before the ≥0
            // clamp on the lower end).
            let width_up = est.upper_bound - est.dist_sq;
            assert!(width_up >= 0.0);
        }
    }

    #[test]
    fn epsilon0_zero_collapses_bound_to_estimate() {
        let padded = 128usize;
        let mut rng = StdRng::seed_from_u64(55);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded);
        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        let f = Factors {
            norm: 1.5,
            ip_oo: 0.8,
            popcount: 60,
        };
        let est = estimate(200, f, &query, padded, 0.0);
        assert!((est.lower_bound - est.dist_sq.max(0.0)).abs() < 1e-5);
    }

    #[test]
    fn biased_estimator_scales_ip_by_alignment() {
        let padded = 128usize;
        let mut rng = StdRng::seed_from_u64(66);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded);
        let query = QuantizedQuery::from_rotated_residual(&residual, 4, &mut rng);
        let f = Factors {
            norm: 1.0,
            ip_oo: 0.8,
            popcount: 64,
        };
        let unbiased = estimate(500, f, &query, padded, 1.9);
        let biased = estimate_biased(500, f, &query, padded);
        assert!((biased.ip_est - unbiased.ip_est * 0.8).abs() < 1e-5);
    }
}
