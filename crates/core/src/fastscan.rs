//! Fast-scan batch kernel (Section 3.3.2, "implementation (batch)").
//!
//! RaBitQ reduces `⟨x̄_b, q̄_u⟩` to exactly the computation shape of PQ fast
//! scan (André et al., VLDB'15): split the `B`-bit code into `B/4` 4-bit
//! segments, precompute a 16-entry look-up table per segment (the inner
//! products between a 4-bit pattern and the corresponding 4 quantized query
//! entries), pack 32 codes into a register-transposed layout, and gather
//! LUT entries with byte shuffles.
//!
//! Unlike PQ — whose LUTs hold *quantized floats* and therefore lose
//! accuracy in the u8 conversion — RaBitQ's LUT entries are small exact
//! integers (≤ 4·(2^B_q − 1) = 60 for the default B_q = 4), so the batch
//! kernel returns **bit-identical** results to the single-code bitwise
//! kernel. That exactness is asserted by differential tests here and in the
//! integration suite.
//!
//! Two kernels share one packed layout:
//! * a portable scalar kernel (always available, used as reference);
//! * an AVX2 kernel (`_mm_shuffle_epi8`-based), selected at runtime.

use crate::code::CodeSet;
use crate::query::QuantizedQuery;

/// Number of codes per packed block.
pub const BLOCK: usize = 32;

/// Codes re-laid-out for the fast-scan kernel.
///
/// Block `b` stores, for each 4-bit segment `s`, 16 bytes where byte `j`
/// packs the segment nibble of code `32b + j` (low half) and of code
/// `32b + 16 + j` (high half). A block therefore occupies `16 · B/4 = 4B`
/// bytes — exactly the same space as the unpacked codes.
#[derive(Clone, Debug)]
pub struct PackedCodes {
    padded_dim: usize,
    n: usize,
    segments: usize,
    blocks: Vec<u8>,
}

impl PackedCodes {
    /// Packs every code of `set` into the transposed block layout. The last
    /// block is padded with all-zero codes (whose inner product is 0).
    pub fn pack(set: &CodeSet) -> Self {
        let padded_dim = set.padded_dim();
        assert!(
            padded_dim.is_multiple_of(4),
            "code length must be a multiple of 4"
        );
        let segments = padded_dim / 4;
        let n = set.len();
        // A nibble never straddles a u64 boundary because 4 | 64.
        let blocks = raw::pack_nibbles(n, segments, |i, s| {
            let bit = s * 4;
            ((set.code_bits(i)[bit / 64] >> (bit % 64)) & 0xF) as u8
        });
        Self {
            padded_dim,
            n,
            segments,
            blocks,
        }
    }

    /// Number of codes packed (excluding padding).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the pack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code length in bits.
    #[inline]
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// Number of packed 32-code blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        if self.segments == 0 {
            0
        } else {
            self.blocks.len() / (self.segments * 16)
        }
    }

    /// Computes `⟨x̄_b, q̄_u⟩` for the 32 codes of block `b` into `out`.
    /// Entries past `len() − 32b` correspond to padding codes and are 0.
    pub fn scan_block(&self, b: usize, lut: &Lut, out: &mut [u32; BLOCK]) {
        assert_eq!(lut.segments, self.segments, "LUT built for another layout");
        let base = b * self.segments * 16;
        let block = &self.blocks[base..base + self.segments * 16];
        match &lut.data {
            LutData::U8(entries) => {
                // Overflow safety for the u16 SIMD accumulators: LUT
                // entries are ≤ 4·(2^B_q − 1) ≤ 60 for B_q ≤ 4.
                raw::scan_u8(block, entries, self.segments, 60, out);
            }
            LutData::U16(entries) => raw::scan_u16(block, entries, self.segments, out),
        }
    }

    /// Computes `⟨x̄_b, q̄_u⟩` for every code into `out` (resized to `len()`).
    pub fn scan_all(&self, lut: &Lut, out: &mut Vec<u32>) {
        // Single resize, then overwrite: a reused `out` at steady state is
        // already the right length, so no element is touched twice (the
        // old clear()+resize() re-zeroed the whole buffer first).
        out.resize(self.n, 0);
        let mut buf = [0u32; BLOCK];
        for b in 0..self.n_blocks() {
            self.scan_block(b, lut, &mut buf);
            let start = b * BLOCK;
            let take = BLOCK.min(self.n - start);
            out[start..start + take].copy_from_slice(&buf[..take]);
        }
    }
}

/// Per-segment 16-entry look-up tables for one quantized query.
#[derive(Clone, Debug)]
pub struct Lut {
    segments: usize,
    data: LutData,
}

#[derive(Clone, Debug)]
enum LutData {
    /// `B_q ≤ 4`: entries fit in `u8` (≤ 60), enabling the SIMD kernel.
    U8(Vec<u8>),
    /// `B_q > 4`: entries up to 1020 need `u16`; scalar kernel only.
    U16(Vec<u16>),
}

impl Lut {
    /// An empty table shell; [`Lut::rebuild`] fills it. Exists so query
    /// scratch state can own a `Lut` whose storage is reused across probes.
    pub fn empty() -> Self {
        Self {
            segments: 0,
            data: LutData::U8(Vec::new()),
        }
    }

    /// Builds the tables from a quantized query: entry `m` of segment `s`
    /// is `Σ_{t: bit t of m set} q̄_u[4s + t]`.
    pub fn build(query: &QuantizedQuery) -> Self {
        let mut lut = Self::empty();
        lut.rebuild(query);
        lut
    }

    /// [`Lut::build`] into `self`, reusing the table storage. After the
    /// first call with a given shape and `B_q` class this performs no heap
    /// allocation; `fill_lut` overwrites every entry, so no clear is
    /// needed.
    pub fn rebuild(&mut self, query: &QuantizedQuery) {
        let segments = query.padded_dim() / 4;
        let qu = query.qu();
        self.segments = segments;
        if query.bq() <= 4 {
            if !matches!(self.data, LutData::U8(_)) {
                self.data = LutData::U8(Vec::new());
            }
            let LutData::U8(data) = &mut self.data else {
                unreachable!()
            };
            data.resize(segments * 16, 0);
            fill_lut(qu, segments, |idx, v| data[idx] = v as u8);
        } else {
            if !matches!(self.data, LutData::U16(_)) {
                self.data = LutData::U16(Vec::new());
            }
            let LutData::U16(data) = &mut self.data else {
                unreachable!()
            };
            data.resize(segments * 16, 0);
            fill_lut(qu, segments, |idx, v| data[idx] = v);
        }
    }

    /// Number of 4-dimension segments covered.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }
}

fn fill_lut(qu: &[u8], segments: usize, mut store: impl FnMut(usize, u16)) {
    for s in 0..segments {
        let vals = &qu[s * 4..s * 4 + 4];
        for m in 0u16..16 {
            let mut acc = 0u16;
            for (t, &v) in vals.iter().enumerate() {
                if (m >> t) & 1 == 1 {
                    acc += v as u16;
                }
            }
            store(s * 16 + m as usize, acc);
        }
    }
}

/// Layout-level scan primitives shared with the PQ baseline (`rabitq-pq`),
/// which uses the identical packed-nibble layout and byte-shuffle kernels —
/// mirroring the paper, where RaBitQ and PQ share one fast-scan
/// implementation.
pub mod raw {
    use super::BLOCK;

    /// Packs per-code 4-bit values into the transposed 32-code block
    /// layout. `nibble(i, s)` must return the 4-bit value of code `i` at
    /// segment `s` (only the low 4 bits are used). Returns
    /// `n_blocks · segments · 16` bytes with zero-padding codes at the tail.
    pub fn pack_nibbles(
        n: usize,
        segments: usize,
        mut nibble: impl FnMut(usize, usize) -> u8,
    ) -> Vec<u8> {
        let n_blocks = n.div_ceil(BLOCK);
        let mut blocks = vec![0u8; n_blocks * segments * 16];
        for i in 0..n {
            let base = (i / BLOCK) * segments * 16;
            let lane = i % BLOCK;
            for s in 0..segments {
                let v = nibble(i, s) & 0x0F;
                let byte = &mut blocks[base + s * 16 + (lane % 16)];
                if lane < 16 {
                    *byte |= v;
                } else {
                    *byte |= v << 4;
                }
            }
        }
        blocks
    }

    /// Scans one block against `u8` LUTs, dispatching to AVX2 when the
    /// platform supports it and `segments · max_entry` fits the u16 SIMD
    /// accumulators; otherwise the portable scalar kernel runs.
    #[inline]
    pub fn scan_u8(
        block: &[u8],
        lut: &[u8],
        segments: usize,
        max_entry: u32,
        out: &mut [u32; BLOCK],
    ) {
        if avx2_available() && segments as u64 * max_entry as u64 <= u16::MAX as u64 {
            // SAFETY: the runtime AVX2 check just passed, and the entry
            // bound guarantees the u16 accumulators cannot overflow.
            unsafe { scan_u8_avx2(block, lut, segments, out) };
        } else {
            scan_u8_scalar(block, lut, segments, out);
        }
    }

    /// Portable scalar scan against `u8` LUTs.
    pub fn scan_u8_scalar(block: &[u8], lut: &[u8], segments: usize, out: &mut [u32; BLOCK]) {
        out.fill(0);
        for s in 0..segments {
            let codes = &block[s * 16..s * 16 + 16];
            let table = &lut[s * 16..s * 16 + 16];
            for (j, &byte) in codes.iter().enumerate() {
                out[j] += table[(byte & 0x0F) as usize] as u32;
                out[j + 16] += table[(byte >> 4) as usize] as u32;
            }
        }
    }

    /// Portable scalar scan against `u16` LUTs (wide query quantization).
    pub fn scan_u16(block: &[u8], lut: &[u16], segments: usize, out: &mut [u32; BLOCK]) {
        out.fill(0);
        for s in 0..segments {
            let codes = &block[s * 16..s * 16 + 16];
            let table = &lut[s * 16..s * 16 + 16];
            for (j, &byte) in codes.iter().enumerate() {
                out[j] += table[(byte & 0x0F) as usize] as u32;
                out[j + 16] += table[(byte >> 4) as usize] as u32;
            }
        }
    }

    /// Runtime AVX2 detection, cached after the first query.
    #[inline]
    pub fn avx2_available() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            use std::sync::OnceLock;
            static AVX2: OnceLock<bool> = OnceLock::new();
            *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }

    /// AVX2 kernel: per segment, one 16-byte load of packed nibbles, two
    /// `pshufb` table lookups (low/high nibbles → codes 0–15 / 16–31), and
    /// zero-extended adds into `u16×16` accumulators.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_u8_avx2(block: &[u8], lut: &[u8], segments: usize, out: &mut [u32; BLOCK]) {
        use std::arch::x86_64::*;
        debug_assert!(block.len() >= segments * 16);
        debug_assert!(lut.len() >= segments * 16);
        let low_mask = _mm_set1_epi8(0x0F);
        let mut acc_lo = _mm256_setzero_si256(); // u16 sums for codes 0..15
        let mut acc_hi = _mm256_setzero_si256(); // u16 sums for codes 16..31
        for s in 0..segments {
            let codes = _mm_loadu_si128(block.as_ptr().add(s * 16) as *const __m128i);
            let table = _mm_loadu_si128(lut.as_ptr().add(s * 16) as *const __m128i);
            let lo_idx = _mm_and_si128(codes, low_mask);
            let hi_idx = _mm_and_si128(_mm_srli_epi16(codes, 4), low_mask);
            let lo_vals = _mm_shuffle_epi8(table, lo_idx);
            let hi_vals = _mm_shuffle_epi8(table, hi_idx);
            acc_lo = _mm256_add_epi16(acc_lo, _mm256_cvtepu8_epi16(lo_vals));
            acc_hi = _mm256_add_epi16(acc_hi, _mm256_cvtepu8_epi16(hi_vals));
        }
        let mut buf = [0u16; 16];
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, acc_lo);
        for (o, &v) in out[..16].iter_mut().zip(buf.iter()) {
            *o = v as u32;
        }
        _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, acc_hi);
        for (o, &v) in out[16..].iter_mut().zip(buf.iter()) {
            *o = v as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ip_code_query;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, padded_dim: usize, seed: u64) -> CodeSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = CodeSet::new(padded_dim);
        let words = padded_dim / 64;
        for _ in 0..n {
            let code: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            set.push(&code, 1.0, 0.8);
        }
        set
    }

    fn random_query(padded_dim: usize, bq: u8, seed: u64) -> QuantizedQuery {
        let mut rng = StdRng::seed_from_u64(seed);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded_dim);
        QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng)
    }

    #[test]
    fn packed_scan_matches_bitwise_kernel_exactly() {
        for &(n, dim) in &[
            (1usize, 64usize),
            (31, 128),
            (32, 128),
            (33, 192),
            (100, 448),
        ] {
            let set = random_set(n, dim, n as u64);
            let query = random_query(dim, 4, dim as u64);
            let packed = PackedCodes::pack(&set);
            let lut = Lut::build(&query);
            let mut got = Vec::new();
            packed.scan_all(&lut, &mut got);
            assert_eq!(got.len(), n);
            for i in 0..n {
                let want = ip_code_query(set.code_bits(i), &query);
                assert_eq!(got[i], want, "n={n} dim={dim} code {i}");
            }
        }
    }

    #[test]
    fn u16_lut_path_matches_bitwise_kernel_for_large_bq() {
        let set = random_set(40, 128, 5);
        let query = random_query(128, 7, 6);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let mut got = Vec::new();
        packed.scan_all(&lut, &mut got);
        for i in 0..40 {
            assert_eq!(got[i], ip_code_query(set.code_bits(i), &query));
        }
    }

    #[test]
    fn scalar_and_simd_paths_agree() {
        // Forces both paths over the same block and compares. On non-AVX2
        // hosts this degenerates to scalar-vs-scalar, which is still a
        // valid (if vacuous) check.
        let set = random_set(64, 256, 9);
        let query = random_query(256, 4, 10);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let mut via_dispatch = [0u32; BLOCK];
        packed.scan_block(0, &lut, &mut via_dispatch);
        let mut via_scalar = [0u32; BLOCK];
        let block = &packed.blocks[..packed.segments * 16];
        match &lut.data {
            LutData::U8(e) => raw::scan_u8_scalar(block, e, packed.segments, &mut via_scalar),
            LutData::U16(e) => raw::scan_u16(block, e, packed.segments, &mut via_scalar),
        }
        assert_eq!(via_dispatch, via_scalar);
    }

    #[test]
    fn padding_codes_scan_to_zero() {
        let set = random_set(5, 64, 11);
        let query = random_query(64, 4, 12);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let mut buf = [0u32; BLOCK];
        packed.scan_block(0, &lut, &mut buf);
        for &v in &buf[5..] {
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn empty_set_packs_and_scans() {
        let set = CodeSet::new(64);
        let packed = PackedCodes::pack(&set);
        assert_eq!(packed.len(), 0);
        assert_eq!(packed.n_blocks(), 0);
        let query = random_query(64, 4, 13);
        let lut = Lut::build(&query);
        let mut out = Vec::new();
        packed.scan_all(&lut, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn lut_entries_match_definition() {
        let query = random_query(64, 4, 14);
        let lut = Lut::build(&query);
        let qu = query.qu();
        if let LutData::U8(entries) = &lut.data {
            for s in 0..16 {
                for m in 0..16usize {
                    let want: u16 = (0..4)
                        .filter(|t| (m >> t) & 1 == 1)
                        .map(|t| qu[s * 4 + t] as u16)
                        .sum();
                    assert_eq!(entries[s * 16 + m] as u16, want);
                }
            }
        } else {
            panic!("expected u8 LUT for bq=4");
        }
    }
}
