//! Fast-scan batch kernel (Section 3.3.2, "implementation (batch)").
//!
//! RaBitQ reduces `⟨x̄_b, q̄_u⟩` to exactly the computation shape of PQ fast
//! scan (André et al., VLDB'15): split the `B`-bit code into `B/4` 4-bit
//! segments, precompute a 16-entry look-up table per segment (the inner
//! products between a 4-bit pattern and the corresponding 4 quantized query
//! entries), pack 32 codes into a register-transposed layout, and gather
//! LUT entries with byte shuffles.
//!
//! Unlike PQ — whose LUTs hold *quantized floats* and therefore lose
//! accuracy in the u8 conversion — RaBitQ's LUT entries are small exact
//! integers (≤ 4·(2^B_q − 1) = 60 for the default B_q = 4), so every batch
//! kernel returns **bit-identical** results to the single-code bitwise
//! kernel. That exactness is asserted by differential tests here and in the
//! integration suite, and it is what makes multiple ISA back ends safe: the
//! kernels sum the same integers, so there is no per-ISA drift to manage.
//!
//! Four kernels share one packed layout, selected once per process by a
//! cached dispatch (see [`raw::active_kernel`]):
//! * a portable scalar kernel (always available, the reference);
//! * an AVX2 kernel (`_mm256_shuffle_epi8`, two segments per iteration);
//! * an AVX-512BW kernel (`_mm512_shuffle_epi8`, four segments per
//!   iteration);
//! * a NEON kernel (`vqtbl1q_u8`) for aarch64 hosts.
//!
//! The environment variable `RABITQ_FORCE_KERNEL=scalar|avx2|avx512|neon`
//! overrides the automatic choice (differential tests and benches use it);
//! forcing a kernel the host cannot run panics at first use.

use crate::code::CodeSet;
use crate::query::QuantizedQuery;

pub use raw::Kernel;

/// Number of codes per packed block.
pub const BLOCK: usize = 32;

/// Maximum value of a RaBitQ `u8` LUT entry: `4·(2^B_q − 1)` with
/// `B_q ≤ 4`. The kernels' u16 accumulator overflow guard multiplies this
/// by the segment count.
pub const MAX_U8_LUT_ENTRY: u32 = 60;

/// Codes re-laid-out for the fast-scan kernel.
///
/// Block `b` stores, for each 4-bit segment `s`, 16 bytes where byte `j`
/// packs the segment nibble of code `32b + j` (low half) and of code
/// `32b + 16 + j` (high half). A block therefore occupies `16 · B/4 = 4B`
/// bytes — exactly the same space as the unpacked codes.
#[derive(Clone, Debug)]
pub struct PackedCodes {
    padded_dim: usize,
    n: usize,
    segments: usize,
    blocks: Vec<u8>,
}

impl PackedCodes {
    /// Packs every code of `set` into the transposed block layout. The last
    /// block is padded with all-zero codes (whose inner product is 0).
    pub fn pack(set: &CodeSet) -> Self {
        let padded_dim = set.padded_dim();
        assert!(
            padded_dim.is_multiple_of(4),
            "code length must be a multiple of 4"
        );
        let segments = padded_dim / 4;
        let n = set.len();
        // A nibble never straddles a u64 boundary because 4 | 64.
        let blocks = raw::pack_nibbles(n, segments, |i, s| {
            let bit = s * 4;
            ((set.code_bits(i)[bit / 64] >> (bit % 64)) & 0xF) as u8
        });
        Self {
            padded_dim,
            n,
            segments,
            blocks,
        }
    }

    /// Number of codes packed (excluding padding).
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the pack is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Code length in bits.
    #[inline]
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// Number of packed 32-code blocks.
    #[inline]
    pub fn n_blocks(&self) -> usize {
        if self.segments == 0 {
            0
        } else {
            self.blocks.len() / (self.segments * 16)
        }
    }

    /// Binds `lut` to this layout and resolves the scan kernel **once**,
    /// returning a scanner whose per-block calls go straight through a
    /// function pointer — the block loop pays no repeated feature
    /// detection or LUT-width branching.
    pub fn scanner<'a>(&'a self, lut: &'a Lut) -> BlockScanner<'a> {
        assert_eq!(lut.segments, self.segments, "LUT built for another layout");
        let kind = match &lut.data {
            LutData::U8(entries) => {
                // The rebuild invariant: LUT storage is exactly one 16-entry
                // table per segment. Kernels trust slice lengths, so an
                // oversized buffer carried over from a larger-dim query
                // would silently read stale tail tables.
                assert_eq!(
                    entries.len(),
                    self.segments * 16,
                    "LUT storage out of sync with its segment count"
                );
                let (kernel, f) = raw::select_scan_u8_tagged(self.segments, MAX_U8_LUT_ENTRY);
                ScanKind::U8 { kernel, f, entries }
            }
            LutData::U16(entries) => {
                assert_eq!(
                    entries.len(),
                    self.segments * 16,
                    "LUT storage out of sync with its segment count"
                );
                ScanKind::U16 { entries }
            }
        };
        BlockScanner { packed: self, kind }
    }

    /// Computes `⟨x̄_b, q̄_u⟩` for the 32 codes of block `b` into `out`.
    /// Entries past `len() − 32b` correspond to padding codes and are 0.
    ///
    /// One-shot convenience; loops should hoist [`PackedCodes::scanner`].
    pub fn scan_block(&self, b: usize, lut: &Lut, out: &mut [u32; BLOCK]) {
        self.scanner(lut).scan_block(b, out);
    }

    /// Computes `⟨x̄_b, q̄_u⟩` for every code into `out` (resized to `len()`).
    pub fn scan_all(&self, lut: &Lut, out: &mut Vec<u32>) {
        // Single resize, then overwrite: a reused `out` at steady state is
        // already the right length, so no element is touched twice (the
        // old clear()+resize() re-zeroed the whole buffer first).
        out.resize(self.n, 0);
        if self.n == 0 {
            return;
        }
        let scanner = self.scanner(lut);
        let mut buf = [0u32; BLOCK];
        for b in 0..self.n_blocks() {
            scanner.scan_block(b, &mut buf);
            let start = b * BLOCK;
            let take = BLOCK.min(self.n - start);
            out[start..start + take].copy_from_slice(&buf[..take]);
        }
    }
}

/// A [`PackedCodes`] + [`Lut`] pair with the kernel resolved up front.
/// Created by [`PackedCodes::scanner`]; lives for one scan pass.
pub struct BlockScanner<'a> {
    packed: &'a PackedCodes,
    kind: ScanKind<'a>,
}

enum ScanKind<'a> {
    U8 {
        kernel: Kernel,
        f: raw::ScanU8Fn,
        entries: &'a [u8],
    },
    /// `B_q > 4` LUT entries exceed `u8`; the scalar u16 kernel runs (this
    /// path is off the paper's recommended operating point).
    U16 { entries: &'a [u16] },
}

impl BlockScanner<'_> {
    /// [`PackedCodes::scan_block`] through the pre-resolved kernel.
    #[inline]
    pub fn scan_block(&self, b: usize, out: &mut [u32; BLOCK]) {
        let segments = self.packed.segments;
        let base = b * segments * 16;
        let block = &self.packed.blocks[base..base + segments * 16];
        match &self.kind {
            // SAFETY: `f` came from `select_scan_u8`, which only hands out
            // pointers to kernels the running CPU supports and applies the
            // u16 accumulator overflow guard.
            ScanKind::U8 { f, entries, .. } => unsafe { f(block, entries, segments, out) },
            ScanKind::U16 { entries } => raw::scan_u16(block, entries, segments, out),
        }
    }

    /// The kernel this scanner resolved to (`None` for the u16 LUT path,
    /// which is always scalar).
    pub fn kernel(&self) -> Option<Kernel> {
        match &self.kind {
            ScanKind::U8 { kernel, .. } => Some(*kernel),
            ScanKind::U16 { .. } => None,
        }
    }
}

/// Per-segment 16-entry look-up tables for one quantized query.
#[derive(Clone, Debug)]
pub struct Lut {
    segments: usize,
    data: LutData,
}

#[derive(Clone, Debug)]
enum LutData {
    /// `B_q ≤ 4`: entries fit in `u8` (≤ 60), enabling the SIMD kernels.
    U8(Vec<u8>),
    /// `B_q > 4`: entries up to 1020 need `u16`; scalar kernel only.
    U16(Vec<u16>),
}

impl Lut {
    /// An empty table shell; [`Lut::rebuild`] fills it. Exists so query
    /// scratch state can own a `Lut` whose storage is reused across probes.
    pub fn empty() -> Self {
        Self {
            segments: 0,
            data: LutData::U8(Vec::new()),
        }
    }

    /// Builds the tables from a quantized query: entry `m` of segment `s`
    /// is `Σ_{t: bit t of m set} q̄_u[4s + t]`.
    pub fn build(query: &QuantizedQuery) -> Self {
        let mut lut = Self::empty();
        lut.rebuild(query);
        lut
    }

    /// [`Lut::build`] into `self`, reusing the table storage. After the
    /// first call with a given shape and `B_q` class this performs no heap
    /// allocation; `fill_lut` overwrites every entry, so no clear is
    /// needed.
    ///
    /// Shrinking reuse (a smaller-dim query on a scratch built for a
    /// larger dim) truncates the table to exactly `segments · 16` entries —
    /// kernels read table extents from slice lengths, so a stale oversized
    /// tail must never survive a rebuild. The invariant is asserted here
    /// and re-checked by [`PackedCodes::scanner`].
    pub fn rebuild(&mut self, query: &QuantizedQuery) {
        let segments = query.padded_dim() / 4;
        let qu = query.qu();
        self.segments = segments;
        if query.bq() <= 4 {
            if !matches!(self.data, LutData::U8(_)) {
                self.data = LutData::U8(Vec::new());
            }
            let LutData::U8(data) = &mut self.data else {
                unreachable!()
            };
            data.resize(segments * 16, 0);
            fill_lut(qu, segments, |idx, v| data[idx] = v as u8);
            debug_assert_eq!(data.len(), segments * 16);
        } else {
            if !matches!(self.data, LutData::U16(_)) {
                self.data = LutData::U16(Vec::new());
            }
            let LutData::U16(data) = &mut self.data else {
                unreachable!()
            };
            data.resize(segments * 16, 0);
            fill_lut(qu, segments, |idx, v| data[idx] = v);
            debug_assert_eq!(data.len(), segments * 16);
        }
    }

    /// Number of 4-dimension segments covered.
    #[inline]
    pub fn segments(&self) -> usize {
        self.segments
    }
}

fn fill_lut(qu: &[u8], segments: usize, mut store: impl FnMut(usize, u16)) {
    for s in 0..segments {
        let vals = &qu[s * 4..s * 4 + 4];
        for m in 0u16..16 {
            let mut acc = 0u16;
            for (t, &v) in vals.iter().enumerate() {
                if (m >> t) & 1 == 1 {
                    acc += v as u16;
                }
            }
            store(s * 16 + m as usize, acc);
        }
    }
}

/// Layout-level scan primitives shared with the PQ baseline (`rabitq-pq`),
/// which uses the identical packed-nibble layout and byte-shuffle kernels —
/// mirroring the paper, where RaBitQ and PQ share one fast-scan
/// implementation.
pub mod raw {
    use super::BLOCK;
    use std::sync::OnceLock;

    /// A fast-scan kernel back end. Variants exist on every architecture
    /// (so tools can name them uniformly); whether one can *run* here is
    /// answered by [`supported_kernels`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum Kernel {
        /// Portable scalar reference — always available.
        Scalar,
        /// x86-64 AVX2: 256-bit `pshufb`, two segments per iteration.
        Avx2,
        /// x86-64 AVX-512BW: 512-bit `pshufb`, four segments per iteration.
        Avx512,
        /// aarch64 NEON: `vqtbl1q_u8` table lookups.
        Neon,
    }

    impl Kernel {
        /// The name accepted by `RABITQ_FORCE_KERNEL`.
        pub fn name(self) -> &'static str {
            match self {
                Kernel::Scalar => "scalar",
                Kernel::Avx2 => "avx2",
                Kernel::Avx512 => "avx512",
                Kernel::Neon => "neon",
            }
        }

        /// Inverse of [`Kernel::name`].
        pub fn from_name(s: &str) -> Option<Self> {
            match s {
                "scalar" => Some(Kernel::Scalar),
                "avx2" => Some(Kernel::Avx2),
                "avx512" => Some(Kernel::Avx512),
                "neon" => Some(Kernel::Neon),
                _ => None,
            }
        }
    }

    /// Kernels compiled into this binary, in ascending ISA-capability
    /// order (the automatic dispatch preference is [`active_kernel`]'s,
    /// which is not simply "most capable").
    pub fn compiled_kernels() -> &'static [Kernel] {
        #[cfg(target_arch = "x86_64")]
        {
            &[Kernel::Scalar, Kernel::Avx2, Kernel::Avx512]
        }
        #[cfg(target_arch = "aarch64")]
        {
            &[Kernel::Scalar, Kernel::Neon]
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            &[Kernel::Scalar]
        }
    }

    /// Whether the running CPU can execute `kernel`.
    pub fn kernel_supported(kernel: Kernel) -> bool {
        match kernel {
            Kernel::Scalar => true,
            Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Kernel::Avx512 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx512f")
                        && std::arch::is_x86_feature_detected!("avx512bw")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Kernel::Neon => {
                #[cfg(target_arch = "aarch64")]
                {
                    std::arch::is_aarch64_feature_detected!("neon")
                }
                #[cfg(not(target_arch = "aarch64"))]
                {
                    false
                }
            }
        }
    }

    /// Kernels both compiled in and runnable on this CPU, ascending
    /// ISA-capability order (always starts with [`Kernel::Scalar`]).
    pub fn supported_kernels() -> Vec<Kernel> {
        compiled_kernels()
            .iter()
            .copied()
            .filter(|&k| kernel_supported(k))
            .collect()
    }

    /// The process-wide kernel choice, resolved **once** on first use:
    /// `RABITQ_FORCE_KERNEL` if set (panicking on an unknown name or a
    /// kernel this host cannot run — a forced kernel silently degrading
    /// would defeat its testing purpose), otherwise the automatic pick.
    ///
    /// The automatic pick prefers **AVX2 over AVX-512** when both run.
    /// The 512-bit kernel wins pure-throughput microbenches
    /// (`kernel_bench` records both), but search interleaves short scan
    /// bursts with scalar/float estimator work, and on many parts each
    /// 512-bit burst downclocks the surrounding pipeline — measured here
    /// as a net end-to-end QPS loss. Hosts where AVX-512 wins end to end
    /// can force it.
    pub fn active_kernel() -> Kernel {
        static ACTIVE: OnceLock<Kernel> = OnceLock::new();
        *ACTIVE.get_or_init(|| match std::env::var("RABITQ_FORCE_KERNEL") {
            Ok(name) => {
                let k = Kernel::from_name(name.trim()).unwrap_or_else(|| {
                    panic!(
                        "RABITQ_FORCE_KERNEL={name}: unknown kernel \
                         (expected scalar|avx2|avx512|neon)"
                    )
                });
                assert!(
                    kernel_supported(k),
                    "RABITQ_FORCE_KERNEL={name}: kernel not runnable on this host \
                     (supported: {:?})",
                    supported_kernels()
                );
                k
            }
            Err(_) => {
                let supported = supported_kernels();
                if supported.contains(&Kernel::Avx2) {
                    Kernel::Avx2
                } else {
                    *supported.last().unwrap_or(&Kernel::Scalar)
                }
            }
        })
    }

    /// Signature shared by every u8-LUT block kernel.
    ///
    /// # Safety
    /// The callee may use SIMD instructions of its ISA extension; callers
    /// must only invoke pointers for kernels the running CPU supports
    /// (guaranteed when obtained via [`select_scan_u8`] or
    /// [`scan_u8_with`]). `block` and `lut` must each hold at least
    /// `segments · 16` bytes, and `segments · max_lut_entry` must fit in
    /// `u16` for the SIMD variants.
    pub type ScanU8Fn = unsafe fn(&[u8], &[u8], usize, &mut [u32; BLOCK]);

    /// `scan_u8_scalar` behind the common kernel signature.
    unsafe fn scan_u8_scalar_raw(
        block: &[u8],
        lut: &[u8],
        segments: usize,
        out: &mut [u32; BLOCK],
    ) {
        scan_u8_scalar(block, lut, segments, out);
    }

    fn kernel_fn(kernel: Kernel) -> ScanU8Fn {
        match kernel {
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx2 => scan_u8_avx2,
            #[cfg(target_arch = "x86_64")]
            Kernel::Avx512 => scan_u8_avx512,
            #[cfg(target_arch = "aarch64")]
            Kernel::Neon => scan_u8_neon,
            _ => scan_u8_scalar_raw,
        }
    }

    /// Resolves the u8-LUT scan function for a whole scan pass: the active
    /// kernel, demoted to scalar when `segments · max_entry` would
    /// overflow the SIMD kernels' u16 accumulators. Call **once per scan**,
    /// not per block — this is the dispatch point.
    #[inline]
    pub fn select_scan_u8(segments: usize, max_entry: u32) -> ScanU8Fn {
        select_for(active_kernel(), segments, max_entry).1
    }

    /// [`select_scan_u8`] plus the [`Kernel`] the pointer belongs to.
    #[inline]
    pub fn select_scan_u8_tagged(segments: usize, max_entry: u32) -> (Kernel, ScanU8Fn) {
        select_for(active_kernel(), segments, max_entry)
    }

    #[inline]
    fn select_for(kernel: Kernel, segments: usize, max_entry: u32) -> (Kernel, ScanU8Fn) {
        if kernel == Kernel::Scalar || segments as u64 * max_entry as u64 > u16::MAX as u64 {
            (Kernel::Scalar, scan_u8_scalar_raw as ScanU8Fn)
        } else {
            (kernel, kernel_fn(kernel))
        }
    }

    /// Scans one block with an explicitly chosen kernel — the entry point
    /// for differential tests and the kernel bench, bypassing the cached
    /// process-wide dispatch.
    ///
    /// # Panics
    /// Panics if the host cannot run `kernel`.
    pub fn scan_u8_with(
        kernel: Kernel,
        block: &[u8],
        lut: &[u8],
        segments: usize,
        max_entry: u32,
        out: &mut [u32; BLOCK],
    ) {
        assert!(
            kernel_supported(kernel),
            "kernel {:?} not runnable on this host",
            kernel
        );
        let (_, f) = select_for(kernel, segments, max_entry);
        // SAFETY: runtime support was just asserted and `select_for`
        // applied the u16 accumulator overflow guard.
        unsafe { f(block, lut, segments, out) }
    }

    /// Packs per-code 4-bit values into the transposed 32-code block
    /// layout. `nibble(i, s)` must return the 4-bit value of code `i` at
    /// segment `s` (only the low 4 bits are used). Returns
    /// `n_blocks · segments · 16` bytes with zero-padding codes at the tail.
    pub fn pack_nibbles(
        n: usize,
        segments: usize,
        mut nibble: impl FnMut(usize, usize) -> u8,
    ) -> Vec<u8> {
        let n_blocks = n.div_ceil(BLOCK);
        let mut blocks = vec![0u8; n_blocks * segments * 16];
        for i in 0..n {
            let base = (i / BLOCK) * segments * 16;
            let lane = i % BLOCK;
            for s in 0..segments {
                let v = nibble(i, s) & 0x0F;
                let byte = &mut blocks[base + s * 16 + (lane % 16)];
                if lane < 16 {
                    *byte |= v;
                } else {
                    *byte |= v << 4;
                }
            }
        }
        blocks
    }

    /// Scans one block against `u8` LUTs through the process-wide kernel
    /// dispatch. One-shot convenience — loops should resolve
    /// [`select_scan_u8`] once instead.
    #[inline]
    pub fn scan_u8(
        block: &[u8],
        lut: &[u8],
        segments: usize,
        max_entry: u32,
        out: &mut [u32; BLOCK],
    ) {
        let f = select_scan_u8(segments, max_entry);
        // SAFETY: `select_scan_u8` only returns runtime-supported kernels
        // with the overflow guard applied.
        unsafe { f(block, lut, segments, out) }
    }

    /// Portable scalar scan against `u8` LUTs.
    pub fn scan_u8_scalar(block: &[u8], lut: &[u8], segments: usize, out: &mut [u32; BLOCK]) {
        out.fill(0);
        for s in 0..segments {
            let codes = &block[s * 16..s * 16 + 16];
            let table = &lut[s * 16..s * 16 + 16];
            for (j, &byte) in codes.iter().enumerate() {
                out[j] += table[(byte & 0x0F) as usize] as u32;
                out[j + 16] += table[(byte >> 4) as usize] as u32;
            }
        }
    }

    /// Portable scalar scan against `u16` LUTs (wide query quantization).
    pub fn scan_u16(block: &[u8], lut: &[u16], segments: usize, out: &mut [u32; BLOCK]) {
        out.fill(0);
        for s in 0..segments {
            let codes = &block[s * 16..s * 16 + 16];
            let table = &lut[s * 16..s * 16 + 16];
            for (j, &byte) in codes.iter().enumerate() {
                out[j] += table[(byte & 0x0F) as usize] as u32;
                out[j + 16] += table[(byte >> 4) as usize] as u32;
            }
        }
    }

    /// Runtime AVX2 detection (kept for callers that predate [`Kernel`]).
    #[inline]
    pub fn avx2_available() -> bool {
        kernel_supported(Kernel::Avx2)
    }

    /// Adds one segment's LUT contributions into `out` — the scalar tail
    /// step the widened SIMD kernels use for segments beyond their stride.
    #[inline]
    fn add_segment_scalar(codes: &[u8], table: &[u8], out: &mut [u32; BLOCK]) {
        for (j, &byte) in codes.iter().enumerate().take(16) {
            out[j] += table[(byte & 0x0F) as usize] as u32;
            out[j + 16] += table[(byte >> 4) as usize] as u32;
        }
    }

    /// AVX2 kernel, two segments per iteration: a 32-byte load covers the
    /// packed nibbles of segments `2p` and `2p+1` (one per 128-bit lane),
    /// `_mm256_shuffle_epi8` gathers both tables lane-wise, and the u8
    /// values are zero-extended into four u16×16 accumulators (codes
    /// 0–7 / 8–15 / 16–23 / 24–31, with even-segment partial sums in lane
    /// 0 and odd-segment partials in lane 1). The final cross-lane add
    /// cannot overflow: the dispatch guard bounds the *total* per-code sum
    /// by `u16::MAX`, and every partial is ≤ the total.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn scan_u8_avx2(block: &[u8], lut: &[u8], segments: usize, out: &mut [u32; BLOCK]) {
        use std::arch::x86_64::*;
        debug_assert!(block.len() >= segments * 16);
        debug_assert!(lut.len() >= segments * 16);
        let low_mask = _mm256_set1_epi8(0x0F);
        let zero = _mm256_setzero_si256();
        let mut acc_ll = zero; // u16 partials, codes 0..8
        let mut acc_lh = zero; // codes 8..16
        let mut acc_hl = zero; // codes 16..24
        let mut acc_hh = zero; // codes 24..32
        let pairs = segments / 2;
        for p in 0..pairs {
            let codes = _mm256_loadu_si256(block.as_ptr().add(p * 32) as *const __m256i);
            let table = _mm256_loadu_si256(lut.as_ptr().add(p * 32) as *const __m256i);
            let lo_idx = _mm256_and_si256(codes, low_mask);
            let hi_idx = _mm256_and_si256(_mm256_srli_epi16(codes, 4), low_mask);
            let lo_vals = _mm256_shuffle_epi8(table, lo_idx);
            let hi_vals = _mm256_shuffle_epi8(table, hi_idx);
            acc_ll = _mm256_add_epi16(acc_ll, _mm256_unpacklo_epi8(lo_vals, zero));
            acc_lh = _mm256_add_epi16(acc_lh, _mm256_unpackhi_epi8(lo_vals, zero));
            acc_hl = _mm256_add_epi16(acc_hl, _mm256_unpacklo_epi8(hi_vals, zero));
            acc_hh = _mm256_add_epi16(acc_hh, _mm256_unpackhi_epi8(hi_vals, zero));
        }
        // Merge even/odd-segment lanes, widen u16 → u32, store.
        let mut fold = |acc: __m256i, at: usize| {
            let sum = _mm_add_epi16(
                _mm256_castsi256_si128(acc),
                _mm256_extracti128_si256(acc, 1),
            );
            _mm256_storeu_si256(
                out.as_mut_ptr().add(at) as *mut __m256i,
                _mm256_cvtepu16_epi32(sum),
            );
        };
        fold(acc_ll, 0);
        fold(acc_lh, 8);
        fold(acc_hl, 16);
        fold(acc_hh, 24);
        if segments % 2 == 1 {
            let s = segments - 1;
            add_segment_scalar(&block[s * 16..s * 16 + 16], &lut[s * 16..s * 16 + 16], out);
        }
    }

    /// AVX-512BW kernel, four segments per iteration: the 512-bit shuffle
    /// gathers four 16-entry tables at once (one per 128-bit lane); the
    /// same unpack trick as AVX2 yields u16 accumulators whose four lanes
    /// hold per-residue partial sums, merged once at the end. Overflow
    /// safety is the same argument as the AVX2 kernel.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn scan_u8_avx512(block: &[u8], lut: &[u8], segments: usize, out: &mut [u32; BLOCK]) {
        use std::arch::x86_64::*;
        debug_assert!(block.len() >= segments * 16);
        debug_assert!(lut.len() >= segments * 16);
        let low_mask = _mm512_set1_epi8(0x0F);
        let zero = _mm512_setzero_si512();
        let mut acc_ll = zero; // u16 partials, codes 0..8
        let mut acc_lh = zero; // codes 8..16
        let mut acc_hl = zero; // codes 16..24
        let mut acc_hh = zero; // codes 24..32
        let quads = segments / 4;
        for p in 0..quads {
            let codes = _mm512_loadu_si512(block.as_ptr().add(p * 64) as *const __m512i);
            let table = _mm512_loadu_si512(lut.as_ptr().add(p * 64) as *const __m512i);
            let lo_idx = _mm512_and_si512(codes, low_mask);
            let hi_idx = _mm512_and_si512(_mm512_srli_epi16(codes, 4), low_mask);
            let lo_vals = _mm512_shuffle_epi8(table, lo_idx);
            let hi_vals = _mm512_shuffle_epi8(table, hi_idx);
            acc_ll = _mm512_add_epi16(acc_ll, _mm512_unpacklo_epi8(lo_vals, zero));
            acc_lh = _mm512_add_epi16(acc_lh, _mm512_unpackhi_epi8(lo_vals, zero));
            acc_hl = _mm512_add_epi16(acc_hl, _mm512_unpacklo_epi8(hi_vals, zero));
            acc_hh = _mm512_add_epi16(acc_hh, _mm512_unpackhi_epi8(hi_vals, zero));
        }
        // Merge the four per-lane partials, widen u16 → u32, store.
        let mut fold = |acc: __m512i, at: usize| {
            let a = _mm512_extracti32x4_epi32(acc, 0);
            let b = _mm512_extracti32x4_epi32(acc, 1);
            let c = _mm512_extracti32x4_epi32(acc, 2);
            let d = _mm512_extracti32x4_epi32(acc, 3);
            let sum = _mm_add_epi16(_mm_add_epi16(a, b), _mm_add_epi16(c, d));
            _mm256_storeu_si256(
                out.as_mut_ptr().add(at) as *mut __m256i,
                _mm256_cvtepu16_epi32(sum),
            );
        };
        fold(acc_ll, 0);
        fold(acc_lh, 8);
        fold(acc_hl, 16);
        fold(acc_hh, 24);
        for s in quads * 4..segments {
            add_segment_scalar(&block[s * 16..s * 16 + 16], &lut[s * 16..s * 16 + 16], out);
        }
    }

    /// NEON kernel: per segment, one 16-byte load, two `vqtbl1q_u8` table
    /// lookups (low/high nibbles → codes 0–15 / 16–31), and widening adds
    /// into u16×8 accumulators. The dispatch guard bounds the per-code sum
    /// by `u16::MAX`, so the widening adds cannot wrap.
    #[cfg(target_arch = "aarch64")]
    #[target_feature(enable = "neon")]
    unsafe fn scan_u8_neon(block: &[u8], lut: &[u8], segments: usize, out: &mut [u32; BLOCK]) {
        use std::arch::aarch64::*;
        debug_assert!(block.len() >= segments * 16);
        debug_assert!(lut.len() >= segments * 16);
        let low_mask = vdupq_n_u8(0x0F);
        let mut acc_ll = vdupq_n_u16(0); // codes 0..8
        let mut acc_lh = vdupq_n_u16(0); // codes 8..16
        let mut acc_hl = vdupq_n_u16(0); // codes 16..24
        let mut acc_hh = vdupq_n_u16(0); // codes 24..32
        for s in 0..segments {
            let codes = vld1q_u8(block.as_ptr().add(s * 16));
            let table = vld1q_u8(lut.as_ptr().add(s * 16));
            let lo_idx = vandq_u8(codes, low_mask);
            let hi_idx = vshrq_n_u8::<4>(codes);
            let lo_vals = vqtbl1q_u8(table, lo_idx);
            let hi_vals = vqtbl1q_u8(table, hi_idx);
            acc_ll = vaddw_u8(acc_ll, vget_low_u8(lo_vals));
            acc_lh = vaddw_high_u8(acc_lh, lo_vals);
            acc_hl = vaddw_u8(acc_hl, vget_low_u8(hi_vals));
            acc_hh = vaddw_high_u8(acc_hh, hi_vals);
        }
        vst1q_u32(out.as_mut_ptr(), vmovl_u16(vget_low_u16(acc_ll)));
        vst1q_u32(out.as_mut_ptr().add(4), vmovl_high_u16(acc_ll));
        vst1q_u32(out.as_mut_ptr().add(8), vmovl_u16(vget_low_u16(acc_lh)));
        vst1q_u32(out.as_mut_ptr().add(12), vmovl_high_u16(acc_lh));
        vst1q_u32(out.as_mut_ptr().add(16), vmovl_u16(vget_low_u16(acc_hl)));
        vst1q_u32(out.as_mut_ptr().add(20), vmovl_high_u16(acc_hl));
        vst1q_u32(out.as_mut_ptr().add(24), vmovl_u16(vget_low_u16(acc_hh)));
        vst1q_u32(out.as_mut_ptr().add(28), vmovl_high_u16(acc_hh));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::ip_code_query;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_set(n: usize, padded_dim: usize, seed: u64) -> CodeSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut set = CodeSet::new(padded_dim);
        let words = padded_dim / 64;
        for _ in 0..n {
            let code: Vec<u64> = (0..words).map(|_| rng.gen()).collect();
            set.push(&code, 1.0, 0.8);
        }
        set
    }

    fn random_query(padded_dim: usize, bq: u8, seed: u64) -> QuantizedQuery {
        let mut rng = StdRng::seed_from_u64(seed);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded_dim);
        QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng)
    }

    #[test]
    fn packed_scan_matches_bitwise_kernel_exactly() {
        for &(n, dim) in &[
            (1usize, 64usize),
            (31, 128),
            (32, 128),
            (33, 192),
            (100, 448),
        ] {
            let set = random_set(n, dim, n as u64);
            let query = random_query(dim, 4, dim as u64);
            let packed = PackedCodes::pack(&set);
            let lut = Lut::build(&query);
            let mut got = Vec::new();
            packed.scan_all(&lut, &mut got);
            assert_eq!(got.len(), n);
            for (i, &g) in got.iter().enumerate() {
                let want = ip_code_query(set.code_bits(i), &query);
                assert_eq!(g, want, "n={n} dim={dim} code {i}");
            }
        }
    }

    #[test]
    fn u16_lut_path_matches_bitwise_kernel_for_large_bq() {
        let set = random_set(40, 128, 5);
        let query = random_query(128, 7, 6);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let mut got = Vec::new();
        packed.scan_all(&lut, &mut got);
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(g, ip_code_query(set.code_bits(i), &query));
        }
    }

    #[test]
    fn every_supported_kernel_matches_scalar() {
        // Odd segment counts exercise the widened kernels' tail handling
        // (dim 192 → 48 segments, dim 320 → 80, dim 64+4? not possible:
        // dims are multiples of 64 → segments multiple of 16, so force odd
        // tails through raw packing instead).
        for &segments in &[1usize, 2, 3, 5, 7, 16, 17, 31, 48, 240] {
            let mut rng = StdRng::seed_from_u64(segments as u64);
            let block: Vec<u8> = (0..segments * 16).map(|_| rng.gen()).collect();
            let lut: Vec<u8> = (0..segments * 16).map(|_| rng.gen_range(0..=60)).collect();
            let mut want = [0u32; BLOCK];
            raw::scan_u8_scalar(&block, &lut, segments, &mut want);
            for kernel in raw::supported_kernels() {
                let mut got = [0xFFFF_FFFFu32; BLOCK];
                raw::scan_u8_with(kernel, &block, &lut, segments, 60, &mut got);
                assert_eq!(got, want, "kernel {kernel:?} segments {segments}");
            }
        }
    }

    #[test]
    fn scanner_reports_active_kernel_and_matches_dispatch() {
        let set = random_set(64, 256, 9);
        let query = random_query(256, 4, 10);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let scanner = packed.scanner(&lut);
        assert_eq!(scanner.kernel(), Some(raw::active_kernel()));
        let mut via_scanner = [0u32; BLOCK];
        scanner.scan_block(0, &mut via_scanner);
        let mut via_scalar = [0u32; BLOCK];
        let block = &packed.blocks[..packed.segments * 16];
        match &lut.data {
            LutData::U8(e) => raw::scan_u8_scalar(block, e, packed.segments, &mut via_scalar),
            LutData::U16(e) => raw::scan_u16(block, e, packed.segments, &mut via_scalar),
        }
        assert_eq!(via_scanner, via_scalar);
    }

    #[test]
    fn forced_kernel_env_controls_dispatch_when_set() {
        // The suite may run under RABITQ_FORCE_KERNEL (CI does a full pass
        // with `scalar`); when it does, the cached dispatch must obey it.
        if let Ok(name) = std::env::var("RABITQ_FORCE_KERNEL") {
            assert_eq!(raw::active_kernel().name(), name.trim());
        } else {
            let supported = raw::supported_kernels();
            // Automatic policy: AVX2 when runnable (AVX-512 is opt-in),
            // otherwise the most capable remaining kernel.
            let expected = if supported.contains(&Kernel::Avx2) {
                Kernel::Avx2
            } else {
                *supported.last().unwrap()
            };
            assert_eq!(raw::active_kernel(), expected);
        }
    }

    #[test]
    fn lut_rebuild_shrinks_storage_to_segment_count() {
        // Reusing one scratch Lut for a smaller dim must not carry stale
        // tail tables: kernels size their reads from the slice length.
        let big = random_query(1024, 4, 31);
        let small = random_query(64, 4, 32);
        let mut lut = Lut::build(&big);
        lut.rebuild(&small);
        assert_eq!(lut.segments(), 16);
        let LutData::U8(data) = &lut.data else {
            panic!("expected u8 LUT");
        };
        assert_eq!(data.len(), 16 * 16);
        // And the shrunk LUT still scans exactly.
        let set = random_set(40, 64, 33);
        let packed = PackedCodes::pack(&set);
        let mut got = Vec::new();
        packed.scan_all(&lut, &mut got);
        for (i, &g) in got.iter().enumerate() {
            assert_eq!(g, ip_code_query(set.code_bits(i), &small));
        }
    }

    #[test]
    fn padding_codes_scan_to_zero() {
        let set = random_set(5, 64, 11);
        let query = random_query(64, 4, 12);
        let packed = PackedCodes::pack(&set);
        let lut = Lut::build(&query);
        let mut buf = [0u32; BLOCK];
        packed.scan_block(0, &lut, &mut buf);
        for &v in &buf[5..] {
            assert_eq!(v, 0);
        }
    }

    #[test]
    fn empty_set_packs_and_scans() {
        let set = CodeSet::new(64);
        let packed = PackedCodes::pack(&set);
        assert_eq!(packed.len(), 0);
        assert_eq!(packed.n_blocks(), 0);
        let query = random_query(64, 4, 13);
        let lut = Lut::build(&query);
        let mut out = Vec::new();
        packed.scan_all(&lut, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn lut_entries_match_definition() {
        let query = random_query(64, 4, 14);
        let lut = Lut::build(&query);
        let qu = query.qu();
        if let LutData::U8(entries) = &lut.data {
            for s in 0..16 {
                for m in 0..16usize {
                    let want: u16 = (0..4)
                        .filter(|t| (m >> t) & 1 == 1)
                        .map(|t| qu[s * 4 + t] as u16)
                        .sum();
                    assert_eq!(entries[s * 16 + m] as u16, want);
                }
            }
        } else {
            panic!("expected u8 LUT for bq=4");
        }
    }
}
