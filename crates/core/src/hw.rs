//! Host hardware detection shared by bench artifacts and the serving
//! layer's observability surface ( `/healthz`, `/metrics` info gauges).

/// SIMD feature levels detected on this host, in a fixed order.
///
/// The list names the ISA extensions the fastscan kernels care about, not
/// everything CPUID exposes; an empty list means the host runs the scalar
/// reference only.
pub fn cpu_features() -> Vec<&'static str> {
    let mut feats = Vec::new();
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        if is_x86_feature_detected!("avx512bw") {
            feats.push("avx512bw");
        }
        if is_x86_feature_detected!("avx512vbmi") {
            feats.push("avx512vbmi");
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        if std::arch::is_aarch64_feature_detected!("neon") {
            feats.push("neon");
        }
    }
    feats
}

/// Available parallelism (1 when the runtime can't tell).
pub fn cores() -> usize {
    std::thread::available_parallelism().map_or(1, |p| p.get())
}

/// The fastscan kernel runtime dispatch settles on for this process
/// (honours `RABITQ_FORCE_KERNEL`).
pub fn active_kernel() -> &'static str {
    crate::fastscan::raw::active_kernel().name()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastscan::raw;

    #[test]
    fn features_are_consistent_with_kernel_dispatch() {
        let feats = cpu_features();
        for k in raw::supported_kernels() {
            match k {
                raw::Kernel::Scalar => {}
                raw::Kernel::Avx2 => assert!(feats.contains(&"avx2")),
                raw::Kernel::Avx512 => {
                    assert!(feats.contains(&"avx512f") && feats.contains(&"avx512bw"))
                }
                raw::Kernel::Neon => assert!(feats.contains(&"neon")),
            }
        }
        assert!(cores() >= 1);
        assert!(!active_kernel().is_empty());
    }
}
