//! Bitwise inner-product kernel for a *single* quantization code
//! (Section 3.3.2, Eq. 21–22).
//!
//! `⟨x̄_b, q̄_u⟩` decomposes over the bits of the query entries:
//! `Σ_j 2^j · ⟨x̄_b, q̄_u^{(j)}⟩`, and each binary–binary inner product is an
//! AND followed by a popcount. This is the "implementation (single)" column
//! of Table 1 — the paper measures it ~3× faster than PQ's in-RAM LUT scan
//! at equal accuracy.

use crate::query::QuantizedQuery;

/// AND + popcount over two equal-length word slices.
#[inline]
pub fn and_popcount(a: &[u64], b: &[u64]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x & y).count_ones())
        .sum()
}

/// `⟨x̄_b, q̄_u⟩` via `B_q` AND+popcount passes over the query bit-planes.
#[inline]
pub fn ip_code_query(code_bits: &[u64], query: &QuantizedQuery) -> u32 {
    let mut acc = 0u32;
    for j in 0..query.bq() as usize {
        acc += and_popcount(code_bits, query.bitplane(j)) << j;
    }
    acc
}

/// Reference implementation: the sum of quantized query entries at
/// positions where the code bit is set. Used by tests and never on a hot
/// path.
pub fn ip_code_query_naive(code_bits: &[u64], query: &QuantizedQuery) -> u32 {
    let mut acc = 0u32;
    for (d, &v) in query.qu().iter().enumerate() {
        if (code_bits[d / 64] >> (d % 64)) & 1 == 1 {
            acc += v as u32;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_code(words: usize, rng: &mut StdRng) -> Vec<u64> {
        (0..words).map(|_| rng.gen()).collect()
    }

    fn random_query(padded_dim: usize, bq: u8, seed: u64) -> QuantizedQuery {
        let mut rng = StdRng::seed_from_u64(seed);
        let residual = rabitq_math::rng::standard_normal_vec(&mut rng, padded_dim);
        QuantizedQuery::from_rotated_residual(&residual, bq, &mut rng)
    }

    #[test]
    fn and_popcount_counts_shared_bits() {
        assert_eq!(and_popcount(&[0b1010], &[0b0110]), 1);
        assert_eq!(and_popcount(&[u64::MAX, 0], &[u64::MAX, u64::MAX]), 64);
        assert_eq!(and_popcount(&[0], &[u64::MAX]), 0);
    }

    #[test]
    fn bitwise_kernel_matches_naive_for_all_bq() {
        let mut rng = StdRng::seed_from_u64(99);
        for bq in 1..=8u8 {
            for &dim in &[64usize, 128, 448] {
                let query = random_query(dim, bq, 7 + bq as u64);
                let code = random_code(dim / 64, &mut rng);
                assert_eq!(
                    ip_code_query(&code, &query),
                    ip_code_query_naive(&code, &query),
                    "bq={bq} dim={dim}"
                );
            }
        }
    }

    #[test]
    fn all_ones_code_sums_every_entry() {
        let query = random_query(128, 4, 3);
        let code = vec![u64::MAX; 2];
        assert_eq!(ip_code_query(&code, &query), query.sum_qu);
    }

    #[test]
    fn zero_code_yields_zero() {
        let query = random_query(128, 4, 4);
        let code = vec![0u64; 2];
        assert_eq!(ip_code_query(&code, &query), 0);
    }
}
